"""Quick calibration sweep against the paper's anchor numbers."""
import sys, time
from repro.coconut import BenchmarkConfig, BenchmarkRunner

CASES = [
    # (paper anchor, config, phase)
    ("fabric SendPayment RL800 MM100 -> 801 MTPS / 0.22s", dict(system="fabric", iel="BankingApp", rate_limit=200, params={"MaxMessageCount": 100}), "SendPayment"),
    ("fabric SendPayment RL1600 MM100 -> 1285 MTPS / 6.7s, ~15% loss", dict(system="fabric", iel="BankingApp", rate_limit=400, params={"MaxMessageCount": 100}), "SendPayment"),
    ("fabric DoNothing best -> 1400-1461", dict(system="fabric", iel="DoNothing", rate_limit=400, params={"MaxMessageCount": 2000}), "DoNothing"),
    ("quorum Balance RL400 BP5 -> 365 MTPS / 12.3s, 58% received", dict(system="quorum", iel="BankingApp", rate_limit=100, params={"istanbul.blockperiod": 5.0}), "Balance"),
    ("quorum Balance RL400 BP2 -> 0 MTPS", dict(system="quorum", iel="BankingApp", rate_limit=100, params={"istanbul.blockperiod": 2.0}), "Balance"),
    ("quorum DoNothing BP5 RL1600 -> 773 MTPS / 10.3s", dict(system="quorum", iel="DoNothing", rate_limit=400, params={"istanbul.blockperiod": 5.0}), "DoNothing"),
    ("bitshares DoNothing RL1600 BI1 ops100 -> 1600 MTPS / 1.09s no loss", dict(system="bitshares", iel="DoNothing", rate_limit=400, params={"block_interval": 1.0}, ops_per_transaction=100), "DoNothing"),
    ("bitshares DoNothing 1op -> max ~590", dict(system="bitshares", iel="DoNothing", rate_limit=400, params={"block_interval": 1.0}), "DoNothing"),
    ("sawtooth CreateAccount RL200 PD1 batch100 -> 66.7 MTPS / 26.4s recv 23k/60k", dict(system="sawtooth", iel="BankingApp", rate_limit=50, params={"block_publishing_delay": 1.0}, txs_per_batch=100), "CreateAccount"),
    ("sawtooth CreateAccount RL1600 PD1 batch100 -> 14.3 MTPS / 238s", dict(system="sawtooth", iel="BankingApp", rate_limit=400, params={"block_publishing_delay": 1.0}, txs_per_batch=100), "CreateAccount"),
    ("sawtooth DoNothing batch100 -> 103 MTPS", dict(system="sawtooth", iel="DoNothing", rate_limit=50, params={"block_publishing_delay": 1.0}, txs_per_batch=100), "DoNothing"),
    ("diem Get RL200 BS2000 -> 64 MTPS / 108s recv 16.7k/60k", dict(system="diem", iel="KeyValue", rate_limit=50, params={"max_block_size": 2000}), "Get"),
    ("diem Get RL1600 BS100 -> 11.8 MTPS / 81s", dict(system="diem", iel="KeyValue", rate_limit=400, params={"max_block_size": 100}), "Get"),
    ("corda_os Set RL20 -> 4.08 MTPS / 152s recv 1439/6000", dict(system="corda_os", iel="KeyValue", rate_limit=5), "Set"),
    ("corda_os Set RL160 -> 1.04 MTPS / 227s recv 374/48000", dict(system="corda_os", iel="KeyValue", rate_limit=40), "Set"),
    ("corda_os Get -> all fail", dict(system="corda_os", iel="KeyValue", rate_limit=5), "Get"),
    ("corda_ent Set RL20 -> 12.8 MTPS / 22.8s recv 4250/6000", dict(system="corda_enterprise", iel="KeyValue", rate_limit=5), "Set"),
    ("corda_ent Set RL160 -> 13.5 MTPS / 31.6s recv 4571/48000", dict(system="corda_enterprise", iel="KeyValue", rate_limit=40), "Set"),
    ("corda_ent DoNothing -> up to 64.6 MTPS", dict(system="corda_enterprise", iel="DoNothing", rate_limit=40), "DoNothing"),
]

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
only = sys.argv[2] if len(sys.argv) > 2 else ""
runner = BenchmarkRunner()
for anchor, kwargs, phase in CASES:
    if only and only not in anchor:
        continue
    t0 = time.time()
    config = BenchmarkConfig(repetitions=1, scale=scale, seed=7, **kwargs)
    result = runner.run(config)
    p = result.phases[phase]
    rep = p.repetitions[0]
    print(f"{anchor}")
    print(f"    measured: MTPS={rep.tps:7.2f}  MFLS={rep.mean_fls:7.2f}s  D={rep.duration:6.1f}s  recv={rep.received}/{rep.expected}  [{time.time()-t0:.0f}s wall]")
