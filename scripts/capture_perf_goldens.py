"""Capture the seed-equivalence golden files for the hot-path suite.

Run from the repository root::

    PYTHONPATH=src:. python scripts/capture_perf_goldens.py

Writes one JSON file per scenario into ``tests/perf/goldens/``. The
committed goldens were captured from the pre-optimization code; rerun
this script only when a PR *intentionally* changes observable behaviour
(a new metric, a semantic fix) — never to paper over an optimization
that drifted.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from tests.perf.equivalence import CASES, run_case


def main() -> None:
    golden_dir = pathlib.Path(__file__).resolve().parent.parent / "tests" / "perf" / "goldens"
    golden_dir.mkdir(parents=True, exist_ok=True)
    for case in CASES:
        observed = run_case(case)
        path = golden_dir / f"{case['name']}.json"
        path.write_text(json.dumps(observed, sort_keys=True, indent=1) + "\n")
        trace = observed["instrumented"]["trace"]
        print(
            f"{case['name']}: {trace['span_count']} spans, "
            f"{trace['event_count']} events -> {path}"
        )


if __name__ == "__main__":
    main()
