"""Hot-path performance harness: timing, baselines, regression checks."""

from repro.perf.harness import (
    TimingResult,
    check_baseline,
    load_baseline,
    time_callable,
    write_baseline,
)

__all__ = [
    "TimingResult",
    "check_baseline",
    "load_baseline",
    "time_callable",
    "write_baseline",
]
