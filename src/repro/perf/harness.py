"""Timing harness and baseline files for the hot-path benchmarks.

The harness is deliberately tiny: time a callable with warmup rounds
followed by measured repeats and report the *minimum* — on a noisy
machine min-of-N is the closest observable to the code's true cost,
since every source of interference only ever adds time. Results are
persisted as JSON baseline files (``BENCH_*.json``) so a later run —
locally or in CI — can be checked against the committed numbers with a
generous regression threshold.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import pathlib
import platform
import time
import typing


@dataclasses.dataclass(frozen=True)
class TimingResult:
    """One benchmark target's measurement."""

    name: str
    #: Best (minimum) seconds per call across the measured repeats.
    best: float
    #: Mean seconds per call across the measured repeats.
    mean: float
    #: Per-repeat seconds-per-call samples, in measurement order.
    samples: typing.Tuple[float, ...]
    #: Inner loop iterations per repeat (best/mean are already per-call).
    loops: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "best": self.best,
            "mean": self.mean,
            "samples": list(self.samples),
            "loops": self.loops,
        }


def time_callable(
    fn: typing.Callable[[], object],
    name: str = "",
    repeats: int = 5,
    warmup: int = 1,
    loops: int = 1,
) -> TimingResult:
    """Time ``fn`` with ``warmup`` discarded rounds then ``repeats`` rounds.

    Each round calls ``fn`` ``loops`` times; samples are per-call. The
    callable owns its setup — pass a closure that rebuilds fresh state
    per call if the work is not idempotent.

    The cyclic garbage collector is disabled for the duration of the
    warmup and measurement loops (and restored afterwards, even if the
    callable raises): a collection landing inside one repeat would
    charge an unrelated pause to that sample, which min-of-N cannot
    filter when the callable allocates enough to trigger GC every round.
    """
    if repeats < 1:
        raise ValueError(f"need at least one repeat, got {repeats}")
    if loops < 1:
        raise ValueError(f"need at least one loop per repeat, got {loops}")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for __ in range(warmup * loops):
            fn()
        counter = time.perf_counter
        samples = []
        for __ in range(repeats):
            start = counter()
            for __ in range(loops):
                fn()
            samples.append((counter() - start) / loops)
    finally:
        if gc_was_enabled:
            gc.enable()
    return TimingResult(
        name=name or getattr(fn, "__name__", "anonymous"),
        best=min(samples),
        mean=sum(samples) / len(samples),
        samples=tuple(samples),
        loops=loops,
    )


# ----------------------------------------------------------------------
# Baseline files


def write_baseline(
    path: typing.Union[str, pathlib.Path],
    results: typing.Sequence[TimingResult],
    notes: typing.Optional[dict] = None,
) -> dict:
    """Write a ``BENCH_*.json`` baseline; returns the written document."""
    document = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "results": {result.name: result.to_dict() for result in results},
    }
    if notes:
        document["notes"] = notes
    pathlib.Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def load_baseline(path: typing.Union[str, pathlib.Path]) -> dict:
    """Read a baseline document written by :func:`write_baseline`."""
    return json.loads(pathlib.Path(path).read_text())


def check_baseline(
    baseline: dict,
    results: typing.Sequence[TimingResult],
    threshold: float = 3.0,
) -> typing.List[str]:
    """Compare fresh results against a baseline document.

    Returns a list of human-readable regression messages; empty means
    every measured target stayed within ``threshold`` times its
    committed best. The threshold is deliberately generous — baselines
    are captured on one machine and checked on another, so only
    order-of-magnitude regressions (an optimization silently reverted)
    should trip it.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    recorded = baseline.get("results", {})
    problems = []
    for result in results:
        entry = recorded.get(result.name)
        if entry is None:
            problems.append(f"{result.name}: not present in baseline")
            continue
        limit = entry["best"] * threshold
        if result.best > limit:
            problems.append(
                f"{result.name}: best {result.best:.6f}s exceeds "
                f"{threshold:g}x baseline {entry['best']:.6f}s"
            )
    return problems
