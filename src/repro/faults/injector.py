"""Executing a fault plan on the simulation clock.

The :class:`FaultInjector` schedules every action of a
:class:`~repro.faults.plan.FaultPlan` relative to an epoch (the phase
start) and fires them against a running
:class:`~repro.chains.base.SystemModel`. All of its randomness — today
only the ``"random"`` target — comes from the dedicated ``"faults"``
RNG stream, so a run without a plan never touches the stream and stays
byte-identical to a run of a build without this subsystem.

Targets resolve when the action fires, not when the plan is written:
``"leader"`` asks the live system who coordinates consensus at that
instant, and ``restart("leader")`` brings back the most recently
crashed endpoint (the one the matching crash resolved).
"""

from __future__ import annotations

import re
import typing

from repro.faults.plan import FaultAction, FaultPlan

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chains.base import SystemModel
    from repro.sim.kernel import Simulator

#: Bare node-index target form, e.g. ``"n2"`` for the third node.
_NODE_INDEX = re.compile(r"^n(\d+)$")


class FaultInjector:
    """Schedules and fires one plan's actions against one system."""

    def __init__(self, sim: "Simulator", system: "SystemModel", plan: FaultPlan) -> None:
        self.sim = sim
        self.system = system
        self.plan = plan
        self.rng = sim.rng.stream("faults")
        #: Chronological log of fired actions (dicts, JSON-ready).
        self.executed: typing.List[typing.Dict[str, object]] = []
        #: Endpoints currently down, most recent last (restart("leader")
        #: pops from the tail).
        self.crashed: typing.List[str] = []
        self.epoch: float = 0.0
        self._installed = False

    def install(self, epoch: typing.Optional[float] = None) -> None:
        """Schedule every action at ``epoch + action.at`` sim seconds.

        Marks the system as running under fault injection, which arms
        the defensive paths (e.g. Corda's flow-reply timeouts) that stay
        cold in healthy runs.
        """
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        if not self.plan:
            return
        self.epoch = self.sim.now if epoch is None else epoch
        self.system.enter_fault_mode()
        for action in self.plan:
            fire_at = self.epoch + action.at
            self.sim.schedule(
                max(0.0, fire_at - self.sim.now), lambda a=action: self._fire(a)
            )

    def fault_window(self) -> typing.Optional[typing.Tuple[float, float]]:
        """The plan's fault window in absolute sim time."""
        window = self.plan.fault_window()
        if window is None:
            return None
        return self.epoch + window[0], self.epoch + window[1]

    # ------------------------------------------------------------------
    # Target resolution

    def _resolve(self, target: str) -> typing.Optional[str]:
        """An endpoint id for ``target``, or ``None`` when unresolvable
        (no current leader, index out of range)."""
        if target == "leader":
            return self.system.leader_id()
        if target == "random":
            return self.rng.choice(self.system.node_ids)
        match = _NODE_INDEX.match(target)
        if match is not None and target not in self.system.nodes:
            index = int(match.group(1))
            if index >= len(self.system.node_ids):
                return None
            return self.system.node_ids[index]
        return target

    # ------------------------------------------------------------------
    # Firing

    def _fire(self, action: FaultAction) -> None:
        handler = getattr(self, f"_do_{action.kind}")
        handler(action)

    def _record(self, action: FaultAction, **detail: object) -> None:
        entry: typing.Dict[str, object] = {"t": self.sim.now, "kind": action.kind}
        entry.update(detail)
        self.executed.append(entry)
        tracer = self.sim.tracer
        if tracer.enabled and tracer.wants("faults"):
            tracer.event(f"fault.{action.kind}", category="faults", **detail)

    def _do_crash(self, action: FaultAction) -> None:
        assert action.target is not None
        target = self._resolve(action.target)
        if target is None or target in self.crashed:
            self._record(action, target=target, skipped=True)
            return
        self.system.crash_node(target)
        self.crashed.append(target)
        self._record(action, target=target)

    def _do_restart(self, action: FaultAction) -> None:
        assert action.target is not None
        if action.target == "leader":
            # The leader role has moved on since the crash; bring back
            # whichever endpoint went down most recently.
            target = self.crashed[-1] if self.crashed else None
        else:
            target = self._resolve(action.target)
        if target is None or target not in self.crashed:
            self._record(action, target=target, skipped=True)
            return
        self.crashed.remove(target)
        self.system.restart_node(target)
        self._record(action, target=target)

    def _do_isolate(self, action: FaultAction) -> None:
        assert action.target is not None
        target = self._resolve(action.target)
        if target is None:
            self._record(action, target=target, skipped=True)
            return
        self.system.network.partitions.isolate(target)
        self._record(action, target=target)

    def _do_heal(self, action: FaultAction) -> None:
        assert action.target is not None
        target = self._resolve(action.target)
        if target is None:
            self._record(action, target=target, skipped=True)
            return
        self.system.network.partitions.heal_endpoint(target)
        self._record(action, target=target)

    def _do_partition(self, action: FaultAction) -> None:
        group_a = [t for t in (self._resolve(m) for m in action.group_a) if t is not None]
        group_b = [t for t in (self._resolve(m) for m in action.group_b) if t is not None]
        self.system.network.partitions.partition(group_a, group_b)
        self._record(action, group_a=group_a, group_b=group_b)

    def _do_heal_all(self, action: FaultAction) -> None:
        self.system.network.partitions.heal_all()
        self._record(action)

    def _do_loss_burst(self, action: FaultAction) -> None:
        partitions = self.system.network.partitions
        if action.group_a and action.group_b:
            a = self._resolve(action.group_a[0])
            b = self._resolve(action.group_b[0])
            if a is None or b is None:
                self._record(action, skipped=True)
                return
            partitions.set_loss(a, b, action.probability)
            self.sim.schedule(action.duration, lambda: partitions.clear_loss(a, b))
            self._record(action, between=[a, b], probability=action.probability)
        else:
            previous = partitions.drop_probability
            partitions.drop_probability = action.probability
            self.sim.schedule(
                action.duration,
                lambda: setattr(partitions, "drop_probability", previous),
            )
            self._record(action, probability=action.probability)

    def _do_latency_surge(self, action: FaultAction) -> None:
        network = self.system.network
        extra = action.extra_ms / 1000.0
        network.extra_latency += extra

        def subside() -> None:
            network.extra_latency = max(0.0, network.extra_latency - extra)

        self.sim.schedule(action.duration, subside)
        self._record(action, extra_ms=action.extra_ms)
