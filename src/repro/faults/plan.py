"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of timed :class:`FaultAction`
entries — crash/restart an endpoint, isolate it, split the network,
impair links — that a :class:`~repro.faults.injector.FaultInjector`
executes on the simulation clock. Action times are offsets in seconds
from the instant the plan is installed (the benchmark phase start), so
one plan applies unchanged to every phase, repetition and system.

Targets are resolved late, when the action fires, which is what makes
trigger-style actions possible: ``"leader"`` asks the system model who
is coordinating consensus *right now* (Raft leader, PBFT primary, IBFT
proposer, DPoS slot witness, Corda notary), ``"random"`` draws a node
from the injector's dedicated RNG stream, and ``"n<i>"`` picks the
i-th node of the deployment without knowing the system's name prefix.

Plans serialise to/from JSON (``{"actions": [...]}``) for the
``coconut run --faults plan.json`` CLI path.
"""

from __future__ import annotations

import dataclasses
import json
import typing

#: Every action kind a plan may contain.
ACTION_KINDS: typing.Tuple[str, ...] = (
    "crash",
    "restart",
    "isolate",
    "heal",
    "partition",
    "heal_all",
    "loss_burst",
    "latency_surge",
)

#: Kinds that require a single endpoint target.
_TARGETED_KINDS = ("crash", "restart", "isolate", "heal")


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """One timed fault event.

    ``at`` is seconds after plan installation. ``target`` is an endpoint
    id, ``"n<i>"`` (deployment node index), ``"leader"`` (resolved at
    fire time) or ``"random"`` (drawn from the fault RNG stream).
    """

    kind: str
    at: float
    target: typing.Optional[str] = None
    group_a: typing.Tuple[str, ...] = ()
    group_b: typing.Tuple[str, ...] = ()
    probability: float = 0.0
    duration: float = 0.0
    extra_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown fault action kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"action time must be >= 0, got {self.at}")
        if self.kind in _TARGETED_KINDS and not self.target:
            raise ValueError(f"{self.kind} requires a target")
        if self.kind == "partition" and (not self.group_a or not self.group_b):
            raise ValueError("partition requires two non-empty groups")
        if self.kind == "loss_burst":
            if not 0.0 < self.probability <= 1.0:
                raise ValueError(
                    f"loss_burst probability must be in (0, 1], got {self.probability}"
                )
            if self.duration <= 0:
                raise ValueError(f"loss_burst duration must be > 0, got {self.duration}")
        if self.kind == "latency_surge":
            if self.extra_ms <= 0:
                raise ValueError(f"latency_surge extra_ms must be > 0, got {self.extra_ms}")
            if self.duration <= 0:
                raise ValueError(
                    f"latency_surge duration must be > 0, got {self.duration}"
                )

    @property
    def end_at(self) -> float:
        """When the action's effect ends (equals ``at`` for instant ones)."""
        return self.at + self.duration

    def to_dict(self) -> typing.Dict[str, object]:
        """A JSON-ready dict holding only the meaningful fields."""
        data: typing.Dict[str, object] = {"kind": self.kind, "at": self.at}
        if self.target is not None:
            data["target"] = self.target
        if self.group_a:
            data["group_a"] = list(self.group_a)
        if self.group_b:
            data["group_b"] = list(self.group_b)
        if self.probability:
            data["probability"] = self.probability
        if self.duration:
            data["duration"] = self.duration
        if self.extra_ms:
            data["extra_ms"] = self.extra_ms
        return data

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "FaultAction":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault action fields: {sorted(unknown)}")
        kwargs = dict(data)
        for group in ("group_a", "group_b"):
            if group in kwargs:
                kwargs[group] = tuple(typing.cast(typing.Iterable[str], kwargs[group]))
        return cls(**typing.cast(typing.Dict[str, typing.Any], kwargs))


class FaultPlan:
    """An ordered set of fault actions, built fluently or from JSON."""

    def __init__(self, actions: typing.Iterable[FaultAction] = ()) -> None:
        self.actions: typing.List[FaultAction] = list(actions)

    # -- fluent builders (all return self for chaining) ----------------

    def _add(self, action: FaultAction) -> "FaultPlan":
        self.actions.append(action)
        return self

    def crash(self, target: str, at: float) -> "FaultPlan":
        """Crash one endpoint at ``at`` seconds."""
        return self._add(FaultAction(kind="crash", at=at, target=target))

    def restart(self, target: str, at: float) -> "FaultPlan":
        """Restart an endpoint; ``"leader"`` restarts the most recently
        crashed endpoint (the crash may have resolved "leader" itself)."""
        return self._add(FaultAction(kind="restart", at=at, target=target))

    def kill_leader(self, at: float) -> "FaultPlan":
        """Crash whichever endpoint is coordinating consensus at ``at``."""
        return self._add(FaultAction(kind="crash", at=at, target="leader"))

    def isolate(self, target: str, at: float) -> "FaultPlan":
        """Cut one endpoint off the network (process keeps running)."""
        return self._add(FaultAction(kind="isolate", at=at, target=target))

    def heal(self, target: str, at: float) -> "FaultPlan":
        """Reconnect a previously isolated endpoint."""
        return self._add(FaultAction(kind="heal", at=at, target=target))

    def partition(
        self,
        group_a: typing.Iterable[str],
        group_b: typing.Iterable[str],
        at: float,
    ) -> "FaultPlan":
        """Split the network into two groups at ``at``."""
        return self._add(
            FaultAction(
                kind="partition", at=at, group_a=tuple(group_a), group_b=tuple(group_b)
            )
        )

    def heal_all(self, at: float) -> "FaultPlan":
        """Remove every partition and isolation at ``at``."""
        return self._add(FaultAction(kind="heal_all", at=at))

    def loss_burst(
        self,
        probability: float,
        duration: float,
        at: float,
        between: typing.Optional[typing.Tuple[str, str]] = None,
    ) -> "FaultPlan":
        """Drop messages with ``probability`` for ``duration`` seconds —
        network-wide, or on one bidirectional path when ``between`` is
        given."""
        a, b = between if between is not None else (None, None)
        return self._add(
            FaultAction(
                kind="loss_burst",
                at=at,
                probability=probability,
                duration=duration,
                group_a=(a,) if a else (),
                group_b=(b,) if b else (),
            )
        )

    def latency_surge(self, extra_ms: float, duration: float, at: float) -> "FaultPlan":
        """Add ``extra_ms`` milliseconds to every delivery for ``duration``."""
        return self._add(
            FaultAction(kind="latency_surge", at=at, extra_ms=extra_ms, duration=duration)
        )

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self.actions)

    def __bool__(self) -> bool:
        return bool(self.actions)

    def __iter__(self) -> typing.Iterator[FaultAction]:
        # Stable order: by fire time, ties in insertion order.
        return iter(sorted(self.actions, key=lambda a: a.at))

    def fault_window(self) -> typing.Optional[typing.Tuple[float, float]]:
        """The (first action, last effect end) offsets, or ``None``."""
        if not self.actions:
            return None
        start = min(action.at for action in self.actions)
        end = max(action.end_at for action in self.actions)
        return start, end

    # -- (de)serialisation ----------------------------------------------

    def to_json(self) -> str:
        return json.dumps({"actions": [action.to_dict() for action in self]}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict) or "actions" not in data:
            raise ValueError('fault plan JSON must be {"actions": [...]}')
        actions = data["actions"]
        if not isinstance(actions, list):
            raise ValueError('"actions" must be a list')
        return cls(FaultAction.from_dict(entry) for entry in actions)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.actions)} actions>"
