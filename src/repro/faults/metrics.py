"""Resilience metrics derived from client-side payload records.

The COCONUT client already timestamps every payload (start on submit,
end on the all-nodes finality confirmation). Bucketing those
confirmations into a throughput timeline around the fault window yields
the quantities a resilience experiment reports:

* **baseline** — confirmations/second before the first fault action,
* **dip depth** — how far the worst in-window bucket falls below it,
* **time to recover** — how long after the last fault effect ends until
  throughput is back within a tolerance of the baseline,
* **committed / lost in window** — payloads confirmed during the fault
  window vs payloads submitted during it that never confirmed.

Everything here is pure arithmetic over simulated timestamps, so two
runs with the same seed and plan produce identical reports.
"""

from __future__ import annotations

import dataclasses
import math
import typing

#: Fraction of the pre-fault baseline that counts as "recovered".
RECOVERY_TOLERANCE = 0.5


@dataclasses.dataclass
class ResilienceReport:
    """What happened to throughput around one fault window."""

    fault_start: float
    fault_end: float
    bucket_width: float
    #: Confirmations/second per bucket, from phase start to phase end.
    timeline: typing.List[float]
    #: Absolute time of the first bucket's left edge.
    timeline_start: float
    baseline_tps: float
    dip_tps: float
    #: 0.0 (no dip) .. 1.0 (full outage); 0.0 when there is no baseline.
    dip_depth: float
    #: Seconds from fault end to sustained recovery; None = not recovered.
    time_to_recover: typing.Optional[float]
    sent_in_window: int
    committed_in_window: int
    lost_in_window: int

    @property
    def recovered(self) -> bool:
        """Whether throughput returned after the fault window."""
        return self.time_to_recover is not None

    @classmethod
    def from_records(
        cls,
        records: typing.Iterable[object],
        *,
        fault_start: float,
        fault_end: float,
        phase_start: float,
        phase_end: float,
        bucket_width: float = 1.0,
        tolerance: float = RECOVERY_TOLERANCE,
    ) -> "ResilienceReport":
        """Build a report from client ``PayloadRecord``-shaped objects.

        Records need ``start_time``, ``end_time`` and ``received``.
        Times are absolute sim times; the fault window must lie inside
        the phase window.
        """
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        if phase_end <= phase_start:
            raise ValueError("phase_end must be after phase_start")
        records = list(records)
        span = phase_end - phase_start
        bucket_count = max(1, int(math.ceil(span / bucket_width)))
        counts = [0] * bucket_count
        sent_in_window = committed_in_window = lost_in_window = 0
        pre_fault_commits = 0
        for record in records:
            start = typing.cast(float, getattr(record, "start_time"))
            end = typing.cast(typing.Optional[float], getattr(record, "end_time"))
            received = bool(getattr(record, "received"))
            in_window = fault_start <= start <= fault_end
            if in_window:
                sent_in_window += 1
                if not received:
                    lost_in_window += 1
            if not received or end is None:
                continue
            if fault_start <= end <= fault_end:
                committed_in_window += 1
            if end < fault_start:
                pre_fault_commits += 1
            index = int((end - phase_start) / bucket_width)
            if 0 <= index < bucket_count:
                counts[index] += 1
        timeline = [count / bucket_width for count in counts]
        baseline_window = max(0.0, fault_start - phase_start)
        baseline_tps = pre_fault_commits / baseline_window if baseline_window > 0 else 0.0
        # Worst bucket whose span intersects the fault window.
        first_fault_bucket = max(0, int((fault_start - phase_start) / bucket_width))
        last_fault_bucket = min(
            bucket_count - 1, int((fault_end - phase_start) / bucket_width)
        )
        if first_fault_bucket <= last_fault_bucket:
            dip_tps = min(timeline[first_fault_bucket : last_fault_bucket + 1])
        else:
            dip_tps = baseline_tps
        dip_depth = 0.0
        if baseline_tps > 0:
            dip_depth = max(0.0, 1.0 - dip_tps / baseline_tps)
        time_to_recover: typing.Optional[float] = None
        if baseline_tps > 0:
            threshold = tolerance * baseline_tps
            first_post_bucket = int(math.ceil((fault_end - phase_start) / bucket_width))
            for index in range(max(0, first_post_bucket), bucket_count):
                if timeline[index] >= threshold:
                    bucket_end = phase_start + (index + 1) * bucket_width
                    time_to_recover = max(0.0, bucket_end - fault_end)
                    break
        return cls(
            fault_start=fault_start,
            fault_end=fault_end,
            bucket_width=bucket_width,
            timeline=timeline,
            timeline_start=phase_start,
            baseline_tps=baseline_tps,
            dip_tps=dip_tps,
            dip_depth=dip_depth,
            time_to_recover=time_to_recover,
            sent_in_window=sent_in_window,
            committed_in_window=committed_in_window,
            lost_in_window=lost_in_window,
        )

    def to_dict(self) -> typing.Dict[str, object]:
        """A JSON-ready dict (stored on the phase metrics)."""
        return {
            "fault_start": self.fault_start,
            "fault_end": self.fault_end,
            "bucket_width": self.bucket_width,
            "baseline_tps": self.baseline_tps,
            "dip_tps": self.dip_tps,
            "dip_depth": self.dip_depth,
            "time_to_recover": self.time_to_recover,
            "recovered": self.recovered,
            "sent_in_window": self.sent_in_window,
            "committed_in_window": self.committed_in_window,
            "lost_in_window": self.lost_in_window,
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "ResilienceReport":
        """Rebuild a report from :meth:`to_dict` output.

        The bucket timeline is not serialised (it scales with the phase
        window); a reconstructed report carries an empty timeline but
        every scalar the resilience tables render.
        """
        return cls(
            fault_start=typing.cast(float, data["fault_start"]),
            fault_end=typing.cast(float, data["fault_end"]),
            bucket_width=typing.cast(float, data["bucket_width"]),
            timeline=list(typing.cast(typing.List[float], data.get("timeline", []))),
            timeline_start=typing.cast(float, data.get("timeline_start", 0.0)),
            baseline_tps=typing.cast(float, data["baseline_tps"]),
            dip_tps=typing.cast(float, data["dip_tps"]),
            dip_depth=typing.cast(float, data["dip_depth"]),
            time_to_recover=typing.cast(
                typing.Optional[float], data.get("time_to_recover")
            ),
            sent_in_window=typing.cast(int, data["sent_in_window"]),
            committed_in_window=typing.cast(int, data["committed_in_window"]),
            lost_in_window=typing.cast(int, data["lost_in_window"]),
        )

    def render(self) -> str:
        """A short human-readable summary."""
        recover = (
            f"{self.time_to_recover:.1f}s" if self.time_to_recover is not None else "never"
        )
        return (
            f"fault window [{self.fault_start:.1f}s, {self.fault_end:.1f}s]: "
            f"baseline {self.baseline_tps:.2f} tps, dip {self.dip_tps:.2f} tps "
            f"({self.dip_depth:.0%} deep), recovered {recover}; "
            f"in-window sent={self.sent_in_window} "
            f"committed={self.committed_in_window} lost={self.lost_in_window}"
        )
