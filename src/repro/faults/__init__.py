"""Declarative fault injection for the simulated deployments.

``repro.faults`` turns a JSON-serialisable :class:`FaultPlan` (timed
crash/restart/partition/loss/latency actions) into scheduled events a
:class:`FaultInjector` fires against a running system model, and
distils the client-side effect into a :class:`ResilienceReport`
(baseline vs dip throughput, time to recover, committed vs lost in the
fault window). Fault-free runs never construct an injector, draw from
its RNG stream or arm any defensive code path, so they stay
byte-identical with the subsystem present.
"""

from repro.faults.injector import FaultInjector
from repro.faults.metrics import ResilienceReport
from repro.faults.plan import ACTION_KINDS, FaultAction, FaultPlan

__all__ = [
    "ACTION_KINDS",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "ResilienceReport",
]
