"""Versioned key-value world state with MVCC validation.

Fabric's execute-order-validate pipeline simulates transactions against a
snapshot, records a read/write set, orders the transaction and only then
validates that every read version is still current (Section 5.4: stale
transactions are *still appended to the chain*, flagged invalid, and never
reach the world state). Order-execute systems (Quorum, Diem, Sawtooth,
BitShares) use the same store but apply writes directly at execution time.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass
class ReadWriteSet:
    """The reads (with observed versions) and writes of one simulation."""

    reads: typing.Dict[str, int] = dataclasses.field(default_factory=dict)
    writes: typing.Dict[str, object] = dataclasses.field(default_factory=dict)
    deletes: typing.Set[str] = dataclasses.field(default_factory=set)

    def record_read(self, key: str, version: int) -> None:
        """Remember that ``key`` was read at ``version``."""
        if key not in self.reads:
            self.reads[key] = version

    def record_write(self, key: str, value: object) -> None:
        """Remember a pending write."""
        self.writes[key] = value
        self.deletes.discard(key)

    def record_delete(self, key: str) -> None:
        """Remember a pending delete."""
        self.deletes.add(key)
        self.writes.pop(key, None)

    def conflicts_with(self, other: "ReadWriteSet") -> bool:
        """Write-write or read-write overlap with another set."""
        my_writes = set(self.writes) | self.deletes
        their_writes = set(other.writes) | other.deletes
        if my_writes & their_writes:
            return True
        if set(self.reads) & their_writes:
            return True
        if set(other.reads) & my_writes:
            return True
        return False


#: Version number reported for keys that do not exist.
MISSING_VERSION = 0


class WorldState:
    """A key-value store where every key carries a monotonic version."""

    def __init__(self) -> None:
        self._data: typing.Dict[str, typing.Tuple[object, int]] = {}
        self.commit_count = 0
        self.invalidated_count = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> typing.Optional[object]:
        """Current value of ``key`` (``None`` if absent)."""
        entry = self._data.get(key)
        return entry[0] if entry else None

    def version(self, key: str) -> int:
        """Current version of ``key`` (:data:`MISSING_VERSION` if absent)."""
        entry = self._data.get(key)
        return entry[1] if entry else MISSING_VERSION

    def get_versioned(self, key: str) -> typing.Tuple[typing.Optional[object], int]:
        """``(value, version)`` for ``key``."""
        entry = self._data.get(key)
        return entry if entry else (None, MISSING_VERSION)

    def set(self, key: str, value: object) -> int:
        """Write directly (order-execute path); returns the new version."""
        new_version = self.version(key) + 1
        self._data[key] = (value, new_version)
        return new_version

    def delete(self, key: str) -> None:
        """Remove ``key`` if present."""
        self._data.pop(key, None)

    def keys(self) -> typing.Iterator[str]:
        """Iterate all keys (Corda's vault-scan path iterates these)."""
        return iter(self._data)

    def validate(self, rwset: ReadWriteSet) -> bool:
        """MVCC check: every read version must still be current."""
        return all(self.version(key) == version for key, version in rwset.reads.items())

    def apply(self, rwset: ReadWriteSet) -> bool:
        """Validate then apply a read/write set (validate phase).

        Returns ``True`` when applied; on stale reads nothing is written
        and ``False`` is returned (the transaction is marked invalid but,
        as in Fabric, remains on the chain).
        """
        if not self.validate(rwset):
            self.invalidated_count += 1
            return False
        for key, value in rwset.writes.items():
            self.set(key, value)
        for key in rwset.deletes:
            self.delete(key)
        self.commit_count += 1
        return True

    def snapshot_versions(self) -> typing.Dict[str, int]:
        """A copy of every key's version (test helper)."""
        return {key: version for key, (__, version) in self._data.items()}
