"""Append-only hash-linked chains."""

from __future__ import annotations

import typing

from repro.crypto.hashing import GENESIS_HASH
from repro.storage.block import Block


class ChainValidationError(Exception):
    """A block violated the chain's linkage or ordering invariants."""


class Chain:
    """One node's copy of the block chain.

    Appends are validated: heights must be consecutive, parent hashes must
    match, Merkle roots must verify. This is each node model's persistent
    ledger; the paper's "transaction persisted in all nodes" condition is a
    condition over all replicas' chains.
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._blocks: typing.List[Block] = []
        self._by_hash: typing.Dict[str, Block] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def height(self) -> int:
        """Height of the head block (-1 for an empty chain)."""
        return len(self._blocks) - 1

    @property
    def head(self) -> typing.Optional[Block]:
        """The most recent block, or ``None``."""
        return self._blocks[-1] if self._blocks else None

    @property
    def head_hash(self) -> str:
        """Hash of the head block (genesis sentinel when empty)."""
        return self._blocks[-1].block_hash if self._blocks else GENESIS_HASH

    def append(self, block: Block, verify_merkle: bool = True) -> None:
        """Validate linkage and append ``block``.

        Height, parent-hash linkage and block-hash uniqueness are always
        checked. The Merkle root is verified by default — a block whose
        transaction list was swapped behind an intact header would
        otherwise append silently — but costs a hash per transaction, so
        callers appending blocks they just sealed themselves (the node
        commit path) pass ``verify_merkle=False``. A failed append
        leaves the chain unmodified.
        """
        expected_height = len(self._blocks)
        if block.height != expected_height:
            raise ChainValidationError(
                f"{self.owner}: expected height {expected_height}, got {block.height}"
            )
        if block.header.parent_hash != self.head_hash:
            raise ChainValidationError(
                f"{self.owner}: parent hash mismatch at height {block.height}"
            )
        if block.block_hash in self._by_hash:
            raise ChainValidationError(
                f"{self.owner}: duplicate block hash at height {block.height}"
            )
        if verify_merkle and not block.verify_merkle_root():
            raise ChainValidationError(
                f"{self.owner}: bad merkle root at height {block.height}"
            )
        self._blocks.append(block)
        self._by_hash[block.block_hash] = block

    def block_at(self, height: int) -> Block:
        """The block at ``height``."""
        return self._blocks[height]

    def block_by_hash(self, block_hash: str) -> typing.Optional[Block]:
        """Look a block up by its hash."""
        return self._by_hash.get(block_hash)

    def blocks(self) -> typing.Iterator[Block]:
        """Iterate blocks from genesis to head."""
        return iter(self._blocks)

    def total_transactions(self) -> int:
        """Number of transactions across all blocks."""
        return sum(len(block.transactions) for block in self._blocks)

    def total_payloads(self) -> int:
        """Number of payloads across all blocks."""
        return sum(block.payload_count for block in self._blocks)

    def validate(self) -> None:
        """Re-check the whole chain's linkage (tamper-evidence check)."""
        parent = GENESIS_HASH
        for height, block in enumerate(self._blocks):
            if block.height != height:
                raise ChainValidationError(f"height gap at {height}")
            if block.header.parent_hash != parent:
                raise ChainValidationError(f"broken linkage at height {height}")
            if not block.verify_merkle_root():
                raise ChainValidationError(f"bad merkle root at height {height}")
            parent = block.block_hash

    def same_prefix(self, other: "Chain") -> bool:
        """Whether the shorter chain is a prefix of the longer (consistency)."""
        for mine, theirs in zip(self._blocks, other._blocks):
            if mine.block_hash != theirs.block_hash:
                return False
        return True
