"""Commit receipts delivered to clients.

The COCONUT client's end-to-end measurement (paper Fig. 2) ends when it
receives the confirmation that a transaction is persisted on *all* nodes.
A :class:`Receipt` is that confirmation: one per payload, carrying the
commit status and the time the last replica persisted it.
"""

from __future__ import annotations

import dataclasses
import enum
import typing


class TxStatus(enum.Enum):
    """Terminal status of a payload as observed by the client."""

    #: Persisted on all nodes; the success path.
    COMMITTED = "committed"
    #: Executed but failed validation (e.g. Fabric MVCC conflict); on chain
    #: but not in world state.
    INVALIDATED = "invalidated"
    #: Rejected before ordering (queue full, notary double-spend, ...).
    REJECTED = "rejected"
    #: The atomic unit containing it failed, discarding the payload.
    DISCARDED = "discarded"

    @property
    def is_success(self) -> bool:
        """Whether the client counts this as a received transaction.

        The paper counts every transaction appended to the chain for
        Fabric, including invalidated ones (Section 5.4) — so INVALIDATED
        counts as received.
        """
        return self in (TxStatus.COMMITTED, TxStatus.INVALIDATED)


@dataclasses.dataclass(frozen=True)
class Receipt:
    """The finalization notification for one payload."""

    payload_id: str
    tx_id: str
    status: TxStatus
    block_height: typing.Optional[int]
    commit_time: float
    detail: str = ""

    @property
    def is_success(self) -> bool:
        """Whether this receipt confirms a received transaction."""
        return self.status.is_success
