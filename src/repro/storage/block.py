"""Blocks and block headers.

Every block-based system model (BitShares, Fabric, Quorum, Sawtooth, Diem)
produces these blocks; Corda is block-free and bypasses this module. A
block commits to its transactions through a Merkle root and to its
predecessor through the parent hash, so chains are tamper evident.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.crypto.hashing import hash_object
from repro.crypto.merkle import MerkleTree
from repro.storage.transaction import Transaction


@dataclasses.dataclass(frozen=True)
class BlockHeader:
    """The hashed part of a block."""

    height: int
    parent_hash: str
    merkle_root: str
    proposer: str
    timestamp: float
    tx_count: int

    def canonical_tuple(self) -> tuple:
        """Stable tuple for content hashing."""
        return (
            self.height,
            self.parent_hash,
            self.merkle_root,
            self.proposer,
            self.timestamp,
            self.tx_count,
        )


class Block:
    """A sealed block: header plus transaction list."""

    __slots__ = ("header", "transactions", "block_hash", "_merkle_ok")

    def __init__(self, header: BlockHeader, transactions: typing.Sequence[Transaction]) -> None:
        if header.tx_count != len(transactions):
            raise ValueError(
                f"header tx_count {header.tx_count} != {len(transactions)} transactions"
            )
        self.header = header
        self.transactions = tuple(transactions)
        self.block_hash = hash_object(header)
        self._merkle_ok: typing.Optional[bool] = None

    @classmethod
    def seal(
        cls,
        height: int,
        parent_hash: str,
        transactions: typing.Sequence[Transaction],
        proposer: str,
        timestamp: float,
    ) -> "Block":
        """Build a block, computing the Merkle root over ``transactions``."""
        merkle_root = MerkleTree(transactions).root
        header = BlockHeader(
            height=height,
            parent_hash=parent_hash,
            merkle_root=merkle_root,
            proposer=proposer,
            timestamp=timestamp,
            tx_count=len(transactions),
        )
        return cls(header, transactions)

    @property
    def height(self) -> int:
        """The block's position in the chain."""
        return self.header.height

    @property
    def is_empty(self) -> bool:
        """Whether the block carries no transactions."""
        return not self.transactions

    @property
    def payload_count(self) -> int:
        """Total payloads across the block's transactions."""
        return sum(len(tx.payloads) for tx in self.transactions)

    @property
    def size_bytes(self) -> int:
        """Wire size: transactions plus a header envelope."""
        return 512 + sum(tx.size_bytes for tx in self.transactions)

    def verify_merkle_root(self) -> bool:
        """Recompute the Merkle root and compare with the header.

        The verdict is memoized: header and transaction tuple are fixed
        at construction, so the re-verification every replica's append
        and every strict ``--check`` chain pass performs collapses to
        one tree build per block object.
        """
        verdict = self._merkle_ok
        if verdict is None:
            verdict = self._merkle_ok = (
                MerkleTree(self.transactions).root == self.header.merkle_root
            )
        return verdict

    def __repr__(self) -> str:
        return (
            f"Block(height={self.height}, txs={len(self.transactions)}, "
            f"hash={self.block_hash[:12]})"
        )
