"""Ledger storage substrate.

Defines the data model shared by all seven system models: payloads (the
client-side accounting unit), transactions and batches
(:mod:`repro.storage.transaction`), hash-linked blocks and chains
(:mod:`repro.storage.block`, :mod:`repro.storage.chain`), the versioned
key-value world state with MVCC validation used by Fabric-style
execute-order-validate (:mod:`repro.storage.state`), the UTXO store used by
Corda (:mod:`repro.storage.utxo`) and commit receipts
(:mod:`repro.storage.receipts`).
"""

from repro.storage.block import Block, BlockHeader
from repro.storage.chain import Chain, ChainValidationError
from repro.storage.receipts import Receipt, TxStatus
from repro.storage.state import ReadWriteSet, WorldState
from repro.storage.transaction import Batch, Payload, Transaction
from repro.storage.utxo import DoubleSpendError, StateRef, UTXOStore, UTXOState

__all__ = [
    "Batch",
    "Block",
    "BlockHeader",
    "Chain",
    "ChainValidationError",
    "DoubleSpendError",
    "Payload",
    "ReadWriteSet",
    "Receipt",
    "StateRef",
    "Transaction",
    "TxStatus",
    "UTXOState",
    "UTXOStore",
    "WorldState",
]
