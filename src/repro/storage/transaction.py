"""Payloads, transactions and batches.

The paper's accounting unit is the *payload*: "the maximum number of
payloads, wrapped into transactions and batches, to be sent by each
COCONUT client per second" (Section 4.4). A payload is one IEL function
invocation as seen by the client; the blockchain access layer wraps
payloads into the system's transaction structure:

* most systems — one payload per transaction;
* BitShares — 1..100 *operations* (payloads) per atomic transaction;
* Sawtooth — 1..100 transactions per atomic *batch*.

BitShares' MTPS calculation counts each operation as a transaction
(Section 4.5), which falls out naturally from counting payloads.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import typing

from repro.crypto.hashing import hash_object

_payload_counter = itertools.count(1)
_tx_counter = itertools.count(1)
_batch_counter = itertools.count(1)


def reset_id_counters() -> None:
    """Restart every global id sequence (deterministic ids for tests).

    Covers payload/transaction/batch ids here plus the signature key
    serials, UTXO state ids and consensus proposal ids — any globally
    counted identifier that can surface in results or traces, so a
    fixed-seed run reproduces byte-identically regardless of what ran
    earlier in the process.
    """
    global _payload_counter, _tx_counter, _batch_counter
    _payload_counter = itertools.count(1)
    _tx_counter = itertools.count(1)
    _batch_counter = itertools.count(1)
    # Late imports: these modules must not become import-time
    # dependencies of the transaction module (chains imports storage).
    from repro.chains.base import reset_proposal_counter
    from repro.crypto.signatures import reset_key_counter
    from repro.storage.utxo import reset_state_counter

    reset_key_counter()
    reset_proposal_counter()
    reset_state_counter()


@dataclasses.dataclass(frozen=True)
class Payload:
    """One IEL function invocation submitted by a client."""

    payload_id: str
    client_id: str
    iel: str
    function: str
    args: typing.Tuple[typing.Tuple[str, object], ...]
    size_bytes: int = 128

    @classmethod
    def create(
        cls,
        client_id: str,
        iel: str,
        function: str,
        args: typing.Optional[dict] = None,
        size_bytes: int = 128,
    ) -> "Payload":
        """Build a payload with a fresh globally unique id."""
        return cls(
            payload_id=f"p{next(_payload_counter)}",
            client_id=client_id,
            iel=iel,
            function=function,
            args=tuple(sorted((args or {}).items())),
            size_bytes=size_bytes,
        )

    def arg(self, name: str, default: object = None) -> object:
        """Look up one named argument."""
        for key, value in self.args:
            if key == name:
                return value
        return default

    def canonical_tuple(self) -> tuple:
        """Stable tuple for content hashing."""
        return (self.payload_id, self.client_id, self.iel, self.function, self.args)

    @functools.cached_property
    def content_hash(self) -> str:
        """Canonical digest, computed once (the dataclass is frozen)."""
        return hash_object(self)


@dataclasses.dataclass(frozen=True)
class Transaction:
    """An atomic unit ordered by consensus.

    ``payloads`` has length 1 for single-operation systems and up to 100
    for BitShares multi-operation transactions. Atomicity: if any payload
    fails during execution, the whole transaction is discarded.
    """

    tx_id: str
    payloads: typing.Tuple[Payload, ...]
    submitter: str
    kind: str = "generic"

    @classmethod
    def wrap(cls, payloads: typing.Sequence[Payload], submitter: str, kind: str = "generic") -> "Transaction":
        """Wrap payloads into a transaction with a fresh id."""
        if not payloads:
            raise ValueError("a transaction needs at least one payload")
        return cls(
            tx_id=f"tx{next(_tx_counter)}",
            payloads=tuple(payloads),
            submitter=submitter,
            kind=kind,
        )

    @property
    def size_bytes(self) -> int:
        """Wire size: payload bytes plus a fixed envelope."""
        return 96 + sum(p.size_bytes for p in self.payloads)

    def canonical_tuple(self) -> tuple:
        """Stable tuple for content hashing."""
        return (self.tx_id, self.submitter, self.kind, tuple(p.canonical_tuple() for p in self.payloads))

    @functools.cached_property
    def content_hash(self) -> str:
        """Canonical digest, computed once per transaction.

        Every replica's Merkle verification and the strict checker's
        full-chain pass hash the same Transaction objects; memoizing the
        digest collapses that to one encoding per transaction ever.
        """
        return hash_object(self)


@dataclasses.dataclass(frozen=True)
class Batch:
    """Sawtooth's atomic batch of transactions.

    If one transaction in the batch fails, the whole batch is rejected and
    none of it reaches a block (Section 5.6).
    """

    batch_id: str
    transactions: typing.Tuple[Transaction, ...]
    submitter: str

    @classmethod
    def wrap(cls, transactions: typing.Sequence[Transaction], submitter: str) -> "Batch":
        """Wrap transactions into a batch with a fresh id."""
        if not transactions:
            raise ValueError("a batch needs at least one transaction")
        return cls(
            batch_id=f"b{next(_batch_counter)}",
            transactions=tuple(transactions),
            submitter=submitter,
        )

    @property
    def size_bytes(self) -> int:
        """Wire size: transaction bytes plus a fixed envelope."""
        return 64 + sum(tx.size_bytes for tx in self.transactions)

    @property
    def payload_count(self) -> int:
        """Total payloads across all member transactions."""
        return sum(len(tx.payloads) for tx in self.transactions)

    def canonical_tuple(self) -> tuple:
        """Stable tuple for content hashing."""
        return (self.batch_id, self.submitter, tuple(tx.canonical_tuple() for tx in self.transactions))

    @functools.cached_property
    def content_hash(self) -> str:
        """Canonical digest, computed once (the dataclass is frozen)."""
        return hash_object(self)
