"""UTXO state store for the Corda models.

Corda has no blocks: a transaction consumes input *states* and creates
output states; the notary's only job is refusing transactions whose inputs
were already consumed (Section 2). :class:`UTXOStore` implements exactly
that — unconsumed state tracking with atomic consume-and-create.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

_state_counter = itertools.count(1)


def reset_state_counter() -> None:
    """Restart the state-id sequence (deterministic ids for tests)."""
    global _state_counter
    _state_counter = itertools.count(1)


class DoubleSpendError(Exception):
    """An input state was already consumed (notary rejection)."""

    def __init__(self, refs: typing.Sequence["StateRef"]) -> None:
        super().__init__(f"states already consumed: {[str(r) for r in refs]}")
        self.refs = list(refs)


@dataclasses.dataclass(frozen=True)
class StateRef:
    """A reference to one output state of one transaction."""

    tx_id: str
    index: int

    def __str__(self) -> str:
        return f"{self.tx_id}:{self.index}"


@dataclasses.dataclass(frozen=True)
class UTXOState:
    """An on-ledger state object (a vault entry)."""

    ref: StateRef
    contract: str
    data: typing.Tuple[typing.Tuple[str, object], ...]
    participants: typing.Tuple[str, ...]

    @classmethod
    def create(
        cls,
        tx_id: str,
        index: int,
        contract: str,
        data: dict,
        participants: typing.Sequence[str],
    ) -> "UTXOState":
        """Build a state for output ``index`` of ``tx_id``."""
        return cls(
            ref=StateRef(tx_id=tx_id, index=index),
            contract=contract,
            data=tuple(sorted(data.items())),
            participants=tuple(participants),
        )

    def field(self, name: str, default: object = None) -> object:
        """Look up one data field."""
        for key, value in self.data:
            if key == name:
                return value
        return default


class UTXOStore:
    """Tracks unconsumed states — a node's vault, or the notary's spent set."""

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._unconsumed: typing.Dict[StateRef, UTXOState] = {}
        self._consumed: typing.Set[StateRef] = set()

    def __len__(self) -> int:
        return len(self._unconsumed)

    def __contains__(self, ref: StateRef) -> bool:
        return ref in self._unconsumed

    def add(self, state: UTXOState) -> None:
        """Record a newly created output state."""
        if state.ref in self._unconsumed or state.ref in self._consumed:
            raise ValueError(f"duplicate state ref {state.ref}")
        self._unconsumed[state.ref] = state

    def is_consumed(self, ref: StateRef) -> bool:
        """Whether ``ref`` was spent already."""
        return ref in self._consumed

    def get(self, ref: StateRef) -> typing.Optional[UTXOState]:
        """The unconsumed state at ``ref``, or ``None``."""
        return self._unconsumed.get(ref)

    def consume_and_create(
        self,
        inputs: typing.Sequence[StateRef],
        outputs: typing.Sequence[UTXOState],
    ) -> None:
        """Atomically spend ``inputs`` and add ``outputs``.

        Raises :class:`DoubleSpendError` (before any mutation) when an
        input is already consumed or unknown — the notary check.
        """
        conflicting = [ref for ref in inputs if ref not in self._unconsumed]
        if conflicting:
            raise DoubleSpendError(conflicting)
        for ref in inputs:
            self._consumed.add(ref)
            del self._unconsumed[ref]
        for state in outputs:
            self.add(state)

    def scan(self, predicate: typing.Callable[[UTXOState], bool]) -> typing.List[UTXOState]:
        """Linear scan of unconsumed states — Corda OS's slow read path.

        The cost of iterating the whole vault per query is what makes the
        Corda OS KeyValue-Get benchmark collapse in the paper; the Corda
        node model charges time proportional to ``len(self)`` when using
        this method.
        """
        return [state for state in self._unconsumed.values() if predicate(state)]

    def unconsumed_states(self) -> typing.List[UTXOState]:
        """All unconsumed states (insertion order)."""
        return list(self._unconsumed.values())


def next_state_index() -> int:
    """A process-wide monotonically increasing index for synthetic states."""
    return next(_state_counter)
