"""Content hashing over a canonical encoding.

Blocks, transactions and states are plain Python structures; hashing them
requires a stable byte encoding. We use a small canonical encoder (sorted
dict keys, explicit type tags) feeding SHA-256, so equal values always hash
equal and different values collide only with SHA-256 probability.
"""

from __future__ import annotations

import hashlib
import typing

#: The parent-hash of the first block in every chain.
GENESIS_HASH = "0" * 64


def _encode(value: object, out: typing.List[bytes]) -> None:
    """Append a canonical, type-tagged encoding of ``value`` to ``out``."""
    if value is None:
        out.append(b"n")
    elif isinstance(value, bool):
        out.append(b"b1" if value else b"b0")
    elif isinstance(value, int):
        out.append(b"i" + str(value).encode("ascii") + b";")
    elif isinstance(value, float):
        out.append(b"f" + repr(value).encode("ascii") + b";")
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s" + str(len(data)).encode("ascii") + b":")
        out.append(data)
    elif isinstance(value, bytes):
        out.append(b"y" + str(len(value)).encode("ascii") + b":")
        out.append(value)
    elif isinstance(value, (list, tuple)):
        out.append(b"l" + str(len(value)).encode("ascii") + b":")
        for item in value:
            _encode(item, out)
        out.append(b";")
    elif isinstance(value, dict):
        out.append(b"d" + str(len(value)).encode("ascii") + b":")
        for key in sorted(value, key=repr):
            _encode(key, out)
            _encode(value[key], out)
        out.append(b";")
    elif hasattr(value, "canonical_tuple"):
        # Domain objects expose a canonical_tuple() for hashing.
        out.append(b"o")
        _encode(value.canonical_tuple(), out)
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}")


def canonical_bytes(value: object) -> bytes:
    """Return the canonical byte encoding of ``value``."""
    out: typing.List[bytes] = []
    _encode(value, out)
    return b"".join(out)


def hash_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def hash_object(value: object) -> str:
    """SHA-256 hex digest of the canonical encoding of ``value``."""
    return hash_bytes(canonical_bytes(value))


def leaf_hash(value: object) -> str:
    """:func:`hash_object`, served from the value's cached digest when it
    has one.

    Immutable domain objects (payloads, transactions, batches) memoize
    their digest as ``content_hash``; chain re-validation and Merkle
    construction go through here so each object is canonically encoded
    at most once per process instead of once per validation pass.
    """
    cached = getattr(value, "content_hash", None)
    return cached if cached is not None else hash_object(value)
