"""Cryptographic substrate.

Real SHA-256 content hashing and Merkle trees (tamper evidence is checked
in tests), plus simulated signatures: signing and verification produce
structurally verifiable tokens while their *cost* comes from a configurable
time model, since the paper's performance effects (e.g. Corda OS signing
every transaction on every node, serially) are about signing time, not
about the maths.
"""

from repro.crypto.hashing import hash_bytes, hash_object, GENESIS_HASH
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import KeyPair, Signature, SignatureError, Signer

__all__ = [
    "GENESIS_HASH",
    "KeyPair",
    "MerkleTree",
    "Signature",
    "SignatureError",
    "Signer",
    "hash_bytes",
    "hash_object",
]
