"""Merkle trees over transaction lists.

Block headers commit to their transactions through a Merkle root; clients
could verify inclusion proofs without the full block. The tree duplicates
the last node on odd levels (Bitcoin-style), so any list length works.
"""

from __future__ import annotations

import typing

from repro.crypto.hashing import hash_bytes, leaf_hash


class MerkleTree:
    """A static Merkle tree built from a list of hashable leaves."""

    def __init__(self, leaves: typing.Sequence[object]) -> None:
        # leaf_hash serves domain objects' memoized digests, so the
        # trees built per replica/validation share each leaf's encoding.
        self.leaf_hashes = [leaf_hash(leaf) for leaf in leaves]
        self._levels = self._build(self.leaf_hashes)

    @staticmethod
    def _pair_hash(left: str, right: str) -> str:
        return hash_bytes((left + right).encode("ascii"))

    @classmethod
    def _build(cls, leaf_hashes: typing.List[str]) -> typing.List[typing.List[str]]:
        if not leaf_hashes:
            return [[hash_bytes(b"empty-merkle-tree")]]
        levels = [list(leaf_hashes)]
        while len(levels[-1]) > 1:
            current = levels[-1]
            if len(current) % 2 == 1:
                current = current + [current[-1]]
            parents = [
                cls._pair_hash(current[i], current[i + 1]) for i in range(0, len(current), 2)
            ]
            levels.append(parents)
        return levels

    @property
    def root(self) -> str:
        """The Merkle root hash."""
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self.leaf_hashes)

    def proof(self, index: int) -> typing.List[typing.Tuple[str, str]]:
        """Inclusion proof for leaf ``index`` as (sibling_hash, side) pairs.

        ``side`` is ``"left"`` when the sibling is the left operand of the
        pair hash.
        """
        if not 0 <= index < len(self.leaf_hashes):
            raise IndexError(f"leaf index {index} out of range")
        path = []
        position = index
        for level in self._levels[:-1]:
            nodes = level if len(level) % 2 == 0 else level + [level[-1]]
            if position % 2 == 0:
                path.append((nodes[position + 1], "right"))
            else:
                path.append((nodes[position - 1], "left"))
            position //= 2
        return path

    @classmethod
    def verify_proof(
        cls,
        leaf: object,
        proof: typing.Sequence[typing.Tuple[str, str]],
        root: str,
    ) -> bool:
        """Check an inclusion proof against a known root."""
        current = leaf_hash(leaf)
        for sibling, side in proof:
            if side == "left":
                current = cls._pair_hash(sibling, current)
            else:
                current = cls._pair_hash(current, sibling)
        return current == root
