"""Simulated digital signatures with a cost model.

A :class:`Signer` produces :class:`Signature` tokens binding a key to a
message digest; verification checks the binding structurally. Actual
elliptic-curve maths is replaced by an HMAC-style hash — what matters for
the reproduction is the *time* signing and verifying take inside the node
models, which the per-system profiles configure.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools

from repro.crypto.hashing import hash_object

_key_counter = itertools.count(1)


def reset_key_counter() -> None:
    """Restart the key-serial sequence (deterministic ids for tests)."""
    global _key_counter
    _key_counter = itertools.count(1)


class SignatureError(Exception):
    """A signature failed verification."""


@dataclasses.dataclass(frozen=True)
class KeyPair:
    """An identity's signing key material."""

    owner: str
    secret: str
    public: str

    @classmethod
    def generate(cls, owner: str) -> "KeyPair":
        """Deterministically derive a key pair for ``owner``."""
        serial = next(_key_counter)
        secret = hashlib.sha256(f"secret:{owner}:{serial}".encode("utf-8")).hexdigest()
        public = hashlib.sha256(f"public:{secret}".encode("utf-8")).hexdigest()
        return cls(owner=owner, secret=secret, public=public)


@dataclasses.dataclass(frozen=True)
class Signature:
    """A signature over a message digest by one key."""

    signer: str
    public_key: str
    digest: str
    token: str


class Signer:
    """Signs and verifies messages for one identity."""

    def __init__(self, keypair: KeyPair) -> None:
        self.keypair = keypair

    @staticmethod
    def _token(secret: str, digest: str) -> str:
        return hashlib.sha256(f"{secret}:{digest}".encode("ascii")).hexdigest()

    def sign(self, message: object) -> Signature:
        """Sign the canonical digest of ``message``."""
        digest = hash_object(message)
        return Signature(
            signer=self.keypair.owner,
            public_key=self.keypair.public,
            digest=digest,
            token=self._token(self.keypair.secret, digest),
        )

    @staticmethod
    def verify(signature: Signature, message: object, keypair: KeyPair) -> bool:
        """Check ``signature`` covers ``message`` and was made by ``keypair``.

        Verification recomputes the token from the (known, simulated)
        secret; a production system would use the public key, but the
        structural guarantee — wrong message or wrong signer fails — is
        identical.
        """
        if signature.public_key != keypair.public:
            return False
        digest = hash_object(message)
        if digest != signature.digest:
            return False
        return signature.token == Signer._token(keypair.secret, digest)

    @staticmethod
    def require_valid(signature: Signature, message: object, keypair: KeyPair) -> None:
        """Raise :class:`SignatureError` unless the signature verifies."""
        if not Signer.verify(signature, message, keypair):
            raise SignatureError(
                f"invalid signature by {signature.signer!r} over digest {signature.digest[:12]}"
            )


def quorum_size(n: int, kind: str = "bft") -> int:
    """Votes required for consensus over ``n`` replicas.

    ``bft`` gives the PBFT/IBFT/DiemBFT quorum — ceil((n+f+1)/2), which
    equals the textbook 2f+1 when n = 3f+1; ``crash`` gives Raft's
    simple majority.
    """
    if n < 1:
        raise ValueError(f"need at least one replica, got {n}")
    if kind == "bft":
        f = (n - 1) // 3
        # ceil((n + f + 1) / 2): any two quorums intersect in >= f+1
        # replicas, i.e. at least one correct one, for any n (not just
        # n = 3f + 1).
        return (n + f + 2) // 2
    if kind == "crash":
        return n // 2 + 1
    raise ValueError(f"unknown quorum kind {kind!r}")


def max_faulty(n: int, kind: str = "bft") -> int:
    """Maximum tolerated faulty replicas for ``n`` replicas."""
    if n < 1:
        raise ValueError(f"need at least one replica, got {n}")
    if kind == "bft":
        return (n - 1) // 3
    if kind == "crash":
        return (n - 1) // 2
    raise ValueError(f"unknown quorum kind {kind!r}")
