"""Generator-based simulation processes.

A process wraps a Python generator. The generator yields events (or other
processes, which are themselves events); the process resumes with the
event's value when it fires, or with the event's exception thrown at the
yield point when it fails. A process is itself an :class:`Event` that fires
with the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Process(Event):
    """Drives a generator through the simulation.

    Yield an :class:`Event` to wait for it. The generator's ``return``
    value becomes the process's event value. Unhandled exceptions fail the
    process event, propagating to any process waiting on it.
    """

    __slots__ = ("_generator", "_waiting_on", "_suspended", "_pending_wake")

    def __init__(self, sim: "Simulator", generator: typing.Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: typing.Optional[Event] = None
        self._suspended = False
        self._pending_wake: typing.Optional[typing.Tuple[object, typing.Optional[BaseException]]] = None
        sim.schedule(0.0, lambda: self._step(None, None))

    @property
    def is_alive(self) -> bool:
        """Whether the generator is still running."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a finished process is a no-op, matching the common
        DES convention (the interrupter usually races completion).
        """
        if self.triggered:
            return
        self._waiting_on = None
        self.sim.schedule(0.0, lambda: self._step(None, Interrupt(cause)))

    def kill(self) -> None:
        """Terminate the process immediately, without running its body.

        Unlike :meth:`interrupt`, the generator gets no chance to handle
        anything — it is closed (``finally`` blocks still run) and the
        process event succeeds with ``None`` so waiters are released.
        Killing a finished process is a no-op.
        """
        if self.triggered:
            return
        self._waiting_on = None
        self._pending_wake = None
        self._suspended = False
        self._generator.close()
        self.succeed(None)

    def suspend(self) -> None:
        """Freeze the process: wakeups are buffered, not delivered.

        The process stays parked at its current yield point. If its wait
        target fires while suspended, the wakeup is held and replayed on
        :meth:`resume` — the process observes a longer wait, not a lost
        event. Suspending a finished process is a no-op.
        """
        if self.triggered:
            return
        self._suspended = True

    def resume(self) -> None:
        """Unfreeze a suspended process, replaying any buffered wakeup."""
        if not self._suspended:
            return
        self._suspended = False
        if self._pending_wake is not None:
            value, exception = self._pending_wake
            self._pending_wake = None
            self.sim.schedule(0.0, lambda: self._step(value, exception))

    def _step(self, value: object, exception: typing.Optional[BaseException]) -> None:
        if self.triggered:
            return
        if self._suspended:
            self._pending_wake = (value, exception)
            return
        self._waiting_on = None
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - must fail the event
            self.fail(error)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process {self._name!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        # Stale wakeups occur when an interrupt replaced the wait target.
        if self._waiting_on is not event:
            return
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.exception)
