"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.
Events are created untriggered, accumulate callbacks while pending and run
every callback exactly once when triggered. :class:`Timeout` is an event
that the kernel triggers after a fixed simulated delay. :class:`AnyOf` and
:class:`AllOf` are condition events composing several child events.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

# Sentinel distinguishing "no value yet" from a legitimate None value.
_PENDING = object()


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot triggerable occurrence in simulated time.

    Processes wait on events by yielding them; arbitrary code can subscribe
    with :meth:`add_callback`. An event is either *pending*, *succeeded*
    (carrying a value) or *failed* (carrying an exception).
    """

    __slots__ = ("sim", "_callbacks", "_value", "_exception", "_name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self._callbacks: list = []
        self._value: object = _PENDING
        self._exception: typing.Optional[BaseException] = None
        self._name = name

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired (successfully or not)."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully."""
        return self._value is not _PENDING and self._exception is None

    @property
    def value(self) -> object:
        """The value the event fired with.

        Raises the event's exception for failed events and
        :class:`SimulationError` for pending ones.
        """
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    @property
    def exception(self) -> typing.Optional[BaseException]:
        """The exception of a failed event, or ``None``."""
        return self._exception

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event already fired, the callback runs on the next kernel
        step (never synchronously), preserving deterministic ordering.
        """
        if self.triggered:
            self.sim.schedule(0.0, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: object = None) -> "Event":
        """Fire the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._flush()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception.

        Waiting processes receive the exception at their yield point.
        """
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._flush()
        return self

    def _flush(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, lambda cb=callback: cb(self))

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self.ok else "failed"
        label = self._name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event triggered by the kernel after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"Timeout({delay})")
        self.delay = delay
        sim.schedule(delay, lambda: self.succeed(value))


class _Condition(Event):
    """Common machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event]) -> None:
        super().__init__(sim, name=self.__class__.__name__)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            sim.schedule(0.0, lambda: self.succeed({}))
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {e: e.value for e in self.events if e.ok}


class AnyOf(_Condition):
    """Fires when the first child event fires.

    The value is a dict of the triggered children's values. A failing child
    fails the condition.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)
            return
        self.succeed(self._results())


class AllOf(_Condition):
    """Fires once every child event has fired.

    The value is a dict mapping each child to its value. The first failing
    child fails the condition immediately.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._results())
