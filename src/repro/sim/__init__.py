"""Deterministic discrete-event simulation kernel.

This package provides the simulation substrate used by every other part of
the reproduction: a priority-queue event loop (:class:`~repro.sim.kernel.Simulator`),
generator-based processes (:class:`~repro.sim.process.Process`), triggerable
events and timeouts (:mod:`repro.sim.events`), FIFO stores and capacity
resources (:mod:`repro.sim.stores`, :mod:`repro.sim.resources`) and seeded
random-number streams (:mod:`repro.sim.rng`).

The kernel is written from scratch (no simpy dependency) and is fully
deterministic: two runs with the same seed produce identical event orders.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.kernel import Simulator, TimerHandle
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.sim.rng import RngRegistry
from repro.sim.stores import Store, StoreFullError

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "Simulator",
    "Store",
    "StoreFullError",
    "Timeout",
    "TimerHandle",
]
