"""The simulation event loop.

:class:`Simulator` owns simulated time and a priority queue of scheduled
callbacks. Everything else in the package — events, processes, stores,
network links — ultimately reduces to ``schedule(delay, fn)`` calls against
one Simulator instance.
"""

from __future__ import annotations

import heapq
import math
import typing

from repro.invariants.checker import NOOP_CHECKER
from repro.sim.events import Event, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.trace.tracer import NOOP_TRACER

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.invariants.checker import InvariantChecker
    from repro.trace.tracer import Tracer


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in seconds, starting at 0. Callbacks scheduled for the
    same instant run in schedule order (FIFO), which keeps runs fully
    deterministic for a fixed seed.

    Every simulator carries a tracer (:data:`NOOP_TRACER` unless
    :meth:`set_tracer` installs a live one); instrumented components read
    it via ``sim.tracer`` so a disabled trace layer costs one attribute
    check per hook.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue: list = []
        self._sequence = 0
        self._running = False
        self.rng = RngRegistry(seed)
        self.tracer = NOOP_TRACER
        self.checker = NOOP_CHECKER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def set_tracer(self, tracer: "Tracer") -> None:
        """Install a tracer and bind its clock to this simulator."""
        self.tracer = tracer
        tracer.bind_clock(lambda: self._now)

    def set_checker(self, checker: "InvariantChecker") -> None:
        """Install an invariant checker observing this simulator's run."""
        self.checker = checker

    def schedule(self, delay: float, callback: typing.Callable[..., None], *args: object) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds.

        Extra positional arguments ride on the queue entry, so hot-path
        callers (the network's per-message delivery) can schedule a
        bound method plus its operands instead of allocating a closure
        per event.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, callback, args))

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a :class:`Timeout` firing after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def run(self, until: typing.Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the simulated time at which execution stopped. When
        ``until`` is given, time is advanced to exactly ``until`` even if
        the queue drained earlier, mirroring wall-clock benchmark windows.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # Hot loop. The queue and heappop live in locals, the time bound
        # folds the None check into one float compare, and the tracer
        # branch is hoisted out of the loop entirely (a tracer installed
        # mid-run takes effect on the next run() call, which is the only
        # way tracers are ever installed).
        bound = math.inf if until is None else until
        queue = self._queue
        pop = heapq.heappop
        try:
            if self.tracer.enabled:
                while queue:
                    entry = queue[0]
                    if entry[0] > bound:
                        break
                    pop(queue)
                    self._now = entry[0]
                    self._traced_dispatch(entry[2], entry[3])
            else:
                while queue:
                    entry = queue[0]
                    if entry[0] > bound:
                        break
                    pop(queue)
                    self._now = entry[0]
                    if entry[3]:
                        entry[2](*entry[3])
                    else:
                        entry[2]()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _traced_dispatch(self, callback: typing.Callable[..., None],
                         args: tuple = ()) -> None:
        """One dispatch with instrumentation: queue-depth gauge, dispatch
        counter and (when configured) a per-callback span whose ``wall_us``
        attribute carries the host-clock cost of the callback."""
        tracer = self.tracer
        tracer.metrics.gauge("sim.queue_depth", system="sim").set(len(self._queue))
        tracer.metrics.counter("sim.dispatches", system="sim").inc()
        if tracer.config.dispatch_spans and tracer.wants("sim"):
            name = getattr(callback, "__qualname__", None) or type(callback).__name__
            with tracer.span("dispatch", category="sim", fn=name):
                callback(*args)
        elif args:
            callback(*args)
        else:
            callback()

    def run_until_complete(self, process: Process, limit: float = 1e9) -> object:
        """Run until ``process`` finishes and return its value.

        ``limit`` bounds the run to guard against livelock in tests.
        Dispatch goes through the same instrumented path as :meth:`run`
        (dispatch counters and spans stay accurate) under the same
        re-entrancy guard, and an over-limit event is peeked before it
        is popped, so it stays queued for a later :meth:`run`.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        traced = self.tracer.enabled
        try:
            while not process.triggered:
                if not queue:
                    raise SimulationError(f"deadlock: {process!r} never completed")
                entry = queue[0]
                if entry[0] > limit:
                    raise SimulationError(
                        f"exceeded time limit {limit} waiting for {process!r}"
                    )
                pop(queue)
                self._now = entry[0]
                if traced:
                    self._traced_dispatch(entry[2], entry[3])
                elif entry[3]:
                    entry[2](*entry[3])
                else:
                    entry[2]()
        finally:
            self._running = False
        return process.value

    def pending_events(self) -> int:
        """Number of callbacks still queued (diagnostic)."""
        return len(self._queue)
