"""The simulation event loop.

:class:`Simulator` owns simulated time and a priority queue of scheduled
callbacks. Everything else in the package — events, processes, stores,
network links — ultimately reduces to ``schedule(delay, fn)`` calls against
one Simulator instance.
"""

from __future__ import annotations

import heapq
import math
import typing

from repro.invariants.checker import NOOP_CHECKER
from repro.sim.events import Event, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.trace.tracer import NOOP_TRACER

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.invariants.checker import InvariantChecker
    from repro.trace.tracer import Tracer


class TimerHandle:
    """A cancellable timer returned by :meth:`Simulator.schedule_cancellable`.

    Cancellation is O(1): the queue entry is tombstoned in place (its
    callback slot set to ``None``) and the dispatch loop pops-and-skips
    dead entries instead of dispatching a fire-and-check no-op. The entry
    keeps its ``(time, sequence)`` heap position, so sequence numbering,
    RNG draws and the order of live events are untouched — a run with
    cancellations stays byte-identical to one where the stale timers
    fired as no-ops.
    """

    __slots__ = ("_entry", "_callback", "_fired")

    def __init__(self, callback: typing.Callable[..., None]) -> None:
        self._callback = callback
        self._fired = False
        self._entry: list = []

    @property
    def active(self) -> bool:
        """Whether the timer is still pending (not fired, not cancelled)."""
        return not self._fired and self._entry[2] is not None

    def cancel(self) -> bool:
        """Tombstone the timer. Returns ``False`` if it already fired or
        was already cancelled (both are safe no-ops)."""
        if self._fired:
            return False
        entry = self._entry
        if entry[2] is None:
            return False
        entry[2] = None
        entry[3] = ()  # drop callback/argument refs promptly
        return True

    def _run(self, *args: object) -> None:
        self._fired = True
        self._callback(*args)


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in seconds, starting at 0. Callbacks scheduled for the
    same instant run in schedule order (FIFO), which keeps runs fully
    deterministic for a fixed seed.

    Every simulator carries a tracer (:data:`NOOP_TRACER` unless
    :meth:`set_tracer` installs a live one); instrumented components read
    it via ``sim.tracer`` so a disabled trace layer costs one attribute
    check per hook.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue: list = []
        self._sequence = 0
        self._running = False
        self.rng = RngRegistry(seed)
        self.tracer = NOOP_TRACER
        self.checker = NOOP_CHECKER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def set_tracer(self, tracer: "Tracer") -> None:
        """Install a tracer and bind its clock to this simulator."""
        self.tracer = tracer
        tracer.bind_clock(lambda: self._now)

    def set_checker(self, checker: "InvariantChecker") -> None:
        """Install an invariant checker observing this simulator's run."""
        self.checker = checker

    def schedule(self, delay: float, callback: typing.Callable[..., None], *args: object) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds.

        Extra positional arguments ride on the queue entry, so hot-path
        callers (the network's per-message delivery) can schedule a
        bound method plus its operands instead of allocating a closure
        per event. Entries are 4-slot lists (not tuples) so cancellable
        timers can be tombstoned in place; heap order only ever compares
        the (time, sequence) prefix, and sequence is unique.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, [self._now + delay, self._sequence, callback, args])

    def schedule_cancellable(
        self, delay: float, callback: typing.Callable[..., None], *args: object
    ) -> TimerHandle:
        """Like :meth:`schedule`, but returns a :class:`TimerHandle`.

        The handle's :meth:`~TimerHandle.cancel` tombstones the queue
        entry in O(1); the dispatch loop skips dead entries when they
        surface instead of dispatching them. Consensus engines use this
        for progress/view-change timers that are re-armed far more often
        than they fire.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        handle = TimerHandle(callback)
        entry = [self._now + delay, self._sequence, handle._run, args]
        handle._entry = entry
        heapq.heappush(self._queue, entry)
        return handle

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a :class:`Timeout` firing after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def run(self, until: typing.Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the simulated time at which execution stopped. When
        ``until`` is given, time is advanced to exactly ``until`` even if
        the queue drained earlier, mirroring wall-clock benchmark windows.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # Hot loop. The queue and heappop live in locals, the time bound
        # folds the None check into one float compare, and the tracer
        # branch is hoisted out of the loop entirely (a tracer installed
        # mid-run takes effect on the next run() call, which is the only
        # way tracers are ever installed).
        bound = math.inf if until is None else until
        queue = self._queue
        pop = heapq.heappop
        try:
            if self.tracer.enabled:
                while queue:
                    entry = queue[0]
                    if entry[0] > bound:
                        break
                    pop(queue)
                    self._now = entry[0]
                    if entry[2] is None:
                        # Tombstoned (cancelled) timer: skip the dispatch
                        # but keep the per-pop instrumentation identical
                        # to what the fire-and-check no-op produced, so
                        # metric snapshots stay byte-identical.
                        metrics = self.tracer.metrics
                        metrics.gauge("sim.queue_depth", system="sim").set(len(queue))
                        metrics.counter("sim.dispatches", system="sim").inc()
                        continue
                    self._traced_dispatch(entry[2], entry[3])
            else:
                while queue:
                    entry = queue[0]
                    if entry[0] > bound:
                        break
                    pop(queue)
                    self._now = entry[0]
                    callback = entry[2]
                    if callback is None:
                        continue  # tombstoned (cancelled) timer
                    if entry[3]:
                        callback(*entry[3])
                    else:
                        callback()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _traced_dispatch(self, callback: typing.Callable[..., None],
                         args: tuple = ()) -> None:
        """One dispatch with instrumentation: queue-depth gauge, dispatch
        counter and (when configured) a per-callback span whose ``wall_us``
        attribute carries the host-clock cost of the callback."""
        tracer = self.tracer
        tracer.metrics.gauge("sim.queue_depth", system="sim").set(len(self._queue))
        tracer.metrics.counter("sim.dispatches", system="sim").inc()
        if tracer.config.dispatch_spans and tracer.wants("sim"):
            name = getattr(callback, "__qualname__", None) or type(callback).__name__
            with tracer.span("dispatch", category="sim", fn=name):
                callback(*args)
        elif args:
            callback(*args)
        else:
            callback()

    def run_until_complete(self, process: Process, limit: float = 1e9) -> object:
        """Run until ``process`` finishes and return its value.

        ``limit`` bounds the run to guard against livelock in tests.
        Dispatch goes through the same instrumented path as :meth:`run`
        (dispatch counters and spans stay accurate) under the same
        re-entrancy guard, and an over-limit event is peeked before it
        is popped, so it stays queued for a later :meth:`run`.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        traced = self.tracer.enabled
        try:
            while not process.triggered:
                if not queue:
                    raise SimulationError(f"deadlock: {process!r} never completed")
                entry = queue[0]
                if entry[0] > limit:
                    raise SimulationError(
                        f"exceeded time limit {limit} waiting for {process!r}"
                    )
                pop(queue)
                self._now = entry[0]
                callback = entry[2]
                if callback is None:
                    # Tombstoned (cancelled) timer: skip, mirroring the
                    # per-pop instrumentation when traced (see run()).
                    if traced:
                        metrics = self.tracer.metrics
                        metrics.gauge("sim.queue_depth", system="sim").set(len(queue))
                        metrics.counter("sim.dispatches", system="sim").inc()
                    continue
                if traced:
                    self._traced_dispatch(callback, entry[3])
                elif entry[3]:
                    callback(*entry[3])
                else:
                    callback()
        finally:
            self._running = False
        return process.value

    def pending_events(self) -> int:
        """Number of entries still queued (diagnostic).

        Cancelled-but-unpopped timers count, exactly as their
        fire-and-check no-op predecessors did.
        """
        return len(self._queue)
