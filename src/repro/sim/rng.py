"""Seeded random-number streams.

Every stochastic component (each network link, each client thread, each
consensus engine) draws from its own named stream derived from one master
seed. Adding a component therefore never perturbs the draws of existing
components, which keeps repetition-to-repetition comparisons meaningful.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a hash of ``(master_seed, name)``, so streams
        are independent and stable across runs.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def reseed(self, master_seed: int) -> None:
        """Reset the registry with a new master seed, dropping all streams."""
        self.master_seed = master_seed
        self._streams.clear()
