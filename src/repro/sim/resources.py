"""Counted resources (semaphores) for modelling bounded concurrency.

Corda's flow-worker thread pools, notary signing slots and client workload
threads are all bounded concurrency: at most ``capacity`` holders at a
time, FIFO admission for waiters.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Resource:
    """A semaphore with ``capacity`` slots and FIFO waiters."""

    def __init__(self, sim: "Simulator", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: collections.deque = collections.deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request a slot; the returned event fires once it is granted."""
        event = Event(self.sim, name=f"acquire:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot, admitting the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1

    def use(self, process_body: typing.Generator) -> typing.Generator:
        """Run ``process_body`` while holding a slot (generator helper).

        Usage inside a process::

            yield from pool.use(self._handle(tx))
        """
        yield self.acquire()
        try:
            result = yield from process_body
        finally:
            self.release()
        return result
