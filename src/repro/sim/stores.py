"""FIFO stores with optional capacity bounds.

A :class:`Store` is the queueing primitive used throughout the node models:
transaction pools, pending-batch queues, client event inboxes. Putting and
getting return events, so processes block naturally when the store is full
or empty. ``try_put`` provides the non-blocking admission-control path that
Sawtooth's backpressure queue needs (reject instead of wait).
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class StoreFullError(Exception):
    """Raised by :meth:`Store.try_put` callers that treat rejection as an error."""


class Store:
    """A FIFO buffer of items with an optional capacity.

    ``capacity=None`` means unbounded. Waiting getters are served strictly
    in arrival order; waiting putters likewise.
    """

    def __init__(self, sim: "Simulator", capacity: typing.Optional[int] = None, name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: collections.deque = collections.deque()
        self._getters: collections.deque = collections.deque()
        self._putters: collections.deque = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        """Whether a new item would exceed capacity right now."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: object) -> Event:
        """Insert ``item``, returning an event that fires once it is stored."""
        event = Event(self.sim, name=f"put:{self.name}")
        if self.is_full:
            self._putters.append((event, item))
        else:
            self._insert(item)
            event.succeed(item)
        return event

    def try_put(self, item: object) -> bool:
        """Insert ``item`` only if there is room; return whether it was stored."""
        if self.is_full:
            return False
        self._insert(item)
        return True

    def get(self) -> Event:
        """Remove the oldest item, returning an event firing with it."""
        event = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> typing.Tuple[bool, object]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._admit_waiting_putter()
        return True, item

    def drain(self, limit: typing.Optional[int] = None) -> list:
        """Remove and return up to ``limit`` items (all, if ``None``).

        Block-cutting uses this: take whatever is queued, up to the block
        size, without blocking.
        """
        count = len(self._items) if limit is None else min(limit, len(self._items))
        taken = [self._items.popleft() for __ in range(count)]
        for __ in range(count):
            if not self._admit_waiting_putter():
                break
        return taken

    def peek_all(self) -> list:
        """A snapshot of queued items, oldest first (diagnostic)."""
        return list(self._items)

    def _insert(self, item: object) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def _admit_waiting_putter(self) -> bool:
        if not self._putters or self.is_full:
            return False
        event, item = self._putters.popleft()
        self._insert(item)
        event.succeed(item)
        return True
