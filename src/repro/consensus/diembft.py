"""DiemBFT — Diem's consensus engine (chained HotStuff).

Rounds advance through quorum certificates (QCs) or timeouts (the paper's
citation [13], DiemBFT v4). The leader of round ``r`` proposes a block
extending the highest QC it knows; validators vote by sending their vote
to the leader of round ``r + 1``, which assembles a QC from a BFT quorum
of votes and proposes the next block. A block commits under the
DiemBFT v4 two-chain rule: once a certified child with a contiguous
round sits on top of it.

Validators that see no progress broadcast timeout votes; a quorum of
timeouts advances the round, rotating the leader.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.consensus.base import Decision, EngineContext, ReplicaEngine
from repro.crypto.signatures import quorum_size

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import TimerHandle


@dataclasses.dataclass
class _BlockInfo:
    """A proposed block in the (chain-shaped) block tree."""

    round: int
    parent_round: int
    proposal: object
    proposer: str
    certified: bool = False


class DiemBftEngine(ReplicaEngine):
    """One DiemBFT validator."""

    message_kinds = (
        "diem/proposal",
        "diem/vote",
        "diem/timeout",
        "diem/sync_request",
        "diem/sync_response",
    )

    def __init__(
        self,
        context: EngineContext,
        proposal_factory: typing.Optional[typing.Callable[[int], object]] = None,
        round_interval: float = 0.25,
        round_timeout: float = 5.0,
    ) -> None:
        super().__init__(context)
        self.proposal_factory = proposal_factory
        self.round_interval = round_interval
        self.round_timeout = round_timeout
        self.current_round = 0
        self.highest_qc_round = -1
        self._blocks: typing.Dict[int, _BlockInfo] = {}
        self._votes: typing.Dict[int, typing.Set[str]] = {}
        self._timeout_votes: typing.Dict[int, typing.Set[str]] = {}
        self._committed_through = -1  # highest committed round
        self._commit_sequence = 0
        #: Handle of the pending round timer; rounds advance far more
        #: often than they time out, so re-arming cancels in O(1).
        self._round_timer: typing.Optional["TimerHandle"] = None
        self._voted_rounds: typing.Set[int] = set()
        self._stopped = False
        self._proposal_pending = False
        self._sync_requested: typing.Set[int] = set()
        self._pending_commit_target = -1

    # ------------------------------------------------------------------
    # Roles and lifecycle

    def leader_for(self, round_number: int) -> str:
        """The rotating leader of a round."""
        return self.context.peers[round_number % self.context.n]

    @property
    def is_leader(self) -> bool:
        """Whether this validator leads the current round."""
        return self.replica_id == self.leader_for(self.current_round) and not self._stopped

    def start(self) -> None:
        """Kick off round 0."""
        self._trace_round_begin(0)
        self._arm_round_timer()
        if self.is_leader:
            self._schedule_proposal()

    def _trace_round_begin(self, round_number: int) -> None:
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.begin(
                ("diem.round", self.replica_id, round_number),
                "diem.round", category="consensus", node=self.replica_id,
                round=round_number, leader=self.leader_for(round_number),
            )

    def stop(self) -> None:
        """Crash this validator."""
        self._stopped = True

    def recover(self) -> None:
        """Restart after a crash."""
        self._stopped = False
        self._arm_round_timer()

    # ------------------------------------------------------------------
    # Proposing

    def _schedule_proposal(self) -> None:
        if self._proposal_pending:
            return
        self._proposal_pending = True
        self.context.after(self.round_interval, self._propose, self.current_round)

    def _propose(self, round_number: int) -> None:
        self._proposal_pending = False
        if self._stopped or round_number != self.current_round or not self.is_leader:
            return
        if round_number in self._blocks:
            return  # already proposed for this round
        proposal = self.proposal_factory(round_number) if self.proposal_factory else None
        info = _BlockInfo(
            round=round_number,
            parent_round=self.highest_qc_round,
            proposal=proposal,
            proposer=self.replica_id,
        )
        self._blocks[round_number] = info
        self.context.broadcast(
            "diem/proposal",
            {
                "round": round_number,
                "parent_round": info.parent_round,
                "qc_round": self.highest_qc_round,
                "proposal": proposal,
            },
            size_bytes=getattr(proposal, "size_bytes", 512),
        )
        self._vote(round_number)

    # ------------------------------------------------------------------
    # Message handling

    def on_message(self, kind: str, sender: str, payload: object) -> None:
        if self._stopped:
            return
        message = typing.cast(dict, payload)
        if kind == "diem/proposal":
            self._on_proposal(sender, message)
        elif kind == "diem/vote":
            self._on_vote(sender, message)
        elif kind == "diem/timeout":
            self._on_timeout_vote(sender, message)
        elif kind == "diem/sync_request":
            self._on_sync_request(sender, message)
        elif kind == "diem/sync_response":
            self._on_sync_response(sender, message)

    def _on_proposal(self, sender: str, message: dict) -> None:
        round_number = message["round"]
        if sender != self.leader_for(round_number):
            return
        self._learn_qc(message["qc_round"])
        if message["parent_round"] < self._committed_through:
            # Voting safety: never vote for a proposal that extends a
            # block below the committed prefix (a leader with a stale QC
            # — e.g. freshly recovered — must not fork committed
            # history). The round times out and rotates past it.
            return
        if round_number < self.current_round or round_number in self._blocks:
            return
        self._blocks[round_number] = _BlockInfo(
            round=round_number,
            parent_round=message["parent_round"],
            proposal=message["proposal"],
            proposer=sender,
        )
        if round_number > self.current_round:
            self._enter_round(round_number)  # round sync via proposal
        self._vote(round_number)

    def _vote(self, round_number: int) -> None:
        if round_number in self._voted_rounds:
            return
        self._voted_rounds.add(round_number)
        next_leader = self.leader_for(round_number + 1)
        if next_leader == self.replica_id:
            self._collect_vote(self.replica_id, round_number)
        else:
            self.context.send(next_leader, "diem/vote", {"round": round_number})

    def _on_vote(self, sender: str, message: dict) -> None:
        self._collect_vote(sender, message["round"])

    def _collect_vote(self, voter: str, round_number: int) -> None:
        votes = self._votes.setdefault(round_number, set())
        votes.add(voter)
        if len(votes) >= quorum_size(self.context.n, "bft"):
            checker = self.context.checker
            if checker.enabled:
                checker.on_qc(
                    type(self).__name__, round_number, len(votes), self.context.n
                )
            self._learn_qc(round_number)
            if round_number + 1 > self.current_round:
                self._enter_round(round_number + 1)
            if self.is_leader:
                self._schedule_proposal()

    def _learn_qc(self, qc_round: int) -> None:
        if qc_round < 0 or qc_round <= self.highest_qc_round:
            self._try_commit(qc_round)
            return
        self.highest_qc_round = qc_round
        if qc_round in self._blocks:
            self._blocks[qc_round].certified = True
        self._try_commit(qc_round)

    def _try_commit(self, qc_round: int) -> None:
        """Two-chain commit (DiemBFT v4): a block commits once a certified
        child with a *contiguous* round sits on top of it."""
        if qc_round < 1:
            return
        tip = self._blocks.get(qc_round)
        if tip is None:
            return
        tip.certified = True
        if tip.parent_round != qc_round - 1:
            return  # a round was skipped between parent and child
        if tip.parent_round not in self._blocks:
            return
        self._commit_through(tip.parent_round)

    def _commit_through(self, round_number: int) -> None:
        # Commit every uncommitted ancestor along the parent chain, oldest
        # first, so decisions come out in order. A hole in the chain
        # (blocks missed while crashed) triggers state sync instead of
        # skipping — skipping would diverge this replica's sequence.
        chain = []
        cursor = round_number
        while cursor > self._committed_through:
            info = self._blocks.get(cursor)
            if info is None:
                self._pending_commit_target = max(self._pending_commit_target, round_number)
                self._request_sync(cursor)
                return
            chain.append(info)
            cursor = info.parent_round
        for info in reversed(chain):
            self._committed_through = info.round
            evidence = None
            if self.context.checker.enabled:
                evidence = {"kind": "qc", "round": info.round}
            self._record_decision(
                Decision(
                    sequence=self._commit_sequence,
                    proposal=info.proposal,
                    proposer=info.proposer,
                    decided_at=self.context.now,
                ),
                evidence,
            )
            self._commit_sequence += 1

    # ------------------------------------------------------------------
    # State sync

    def _request_sync(self, missing_round: int) -> None:
        if missing_round in self._sync_requested:
            return
        self._sync_requested.add(missing_round)
        self.context.broadcast("diem/sync_request", {"round": missing_round})

    def _on_sync_request(self, sender: str, message: dict) -> None:
        info = self._blocks.get(message["round"])
        if info is None:
            return
        self.context.send(
            sender,
            "diem/sync_response",
            {
                "round": info.round,
                "parent_round": info.parent_round,
                "proposal": info.proposal,
                "proposer": info.proposer,
            },
            size_bytes=getattr(info.proposal, "size_bytes", 512),
        )

    def _on_sync_response(self, sender: str, message: dict) -> None:
        round_number = message["round"]
        if round_number not in self._blocks:
            self._blocks[round_number] = _BlockInfo(
                round=round_number,
                parent_round=message["parent_round"],
                proposal=message["proposal"],
                proposer=message["proposer"],
                certified=True,  # synced blocks sit on the committed chain
            )
        self._sync_requested.discard(round_number)
        if self._pending_commit_target > self._committed_through:
            self._commit_through(self._pending_commit_target)

    # ------------------------------------------------------------------
    # Pacemaker

    def _enter_round(self, round_number: int) -> None:
        if round_number <= self.current_round:
            return
        tracer = self.context.tracer
        if tracer.enabled:
            # One span per round this replica occupied; a round that was
            # never entered here (skipped during sync) has no span.
            tracer.end(("diem.round", self.replica_id, self.current_round))
        self.current_round = round_number
        self._trace_round_begin(round_number)
        self._arm_round_timer()
        if self.is_leader:
            self._schedule_proposal()

    def _arm_round_timer(self) -> None:
        timer = self._round_timer
        if timer is not None:
            timer.cancel()
        self._round_timer = self.context.after_cancellable(
            self.round_timeout, self._on_round_timeout
        )

    def _on_round_timeout(self) -> None:
        if self._stopped:
            return
        round_number = self.current_round
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.event(
                "diem.round_timeout", category="consensus",
                node=self.replica_id, round=round_number,
            )
        self._timeout_votes.setdefault(round_number, set()).add(self.replica_id)
        self.context.broadcast("diem/timeout", {"round": round_number})
        self._check_timeout_quorum(round_number)
        self._arm_round_timer()

    def _on_timeout_vote(self, sender: str, message: dict) -> None:
        round_number = message["round"]
        self._timeout_votes.setdefault(round_number, set()).add(sender)
        self._check_timeout_quorum(round_number)

    def _check_timeout_quorum(self, round_number: int) -> None:
        votes = self._timeout_votes.get(round_number, set())
        if len(votes) >= quorum_size(self.context.n, "bft") and round_number >= self.current_round:
            self._enter_round(round_number + 1)
