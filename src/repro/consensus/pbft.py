"""Practical Byzantine Fault Tolerance — Sawtooth's consensus engine.

Castro & Liskov's three-phase protocol (the paper's citation [20]): a
stable primary assigns sequence numbers and broadcasts pre-prepare;
replicas broadcast prepare; once a replica holds a BFT quorum of prepares
it broadcasts commit; once it holds a BFT quorum of commits the slot is
committed and executed in sequence order. Replicas that see no progress
vote for a view change; the new primary re-drives undecided slots.

Sawtooth paces proposals with ``block_publishing_delay``, which the node
layer implements by calling :meth:`PbftEngine.maybe_propose` on a timer.
"""

from __future__ import annotations

import typing

from repro.consensus.base import Decision, EngineContext, ReplicaEngine
from repro.crypto.signatures import quorum_size

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import TimerHandle


class _Slot:
    """Per-sequence voting state."""

    __slots__ = ("proposal", "proposer", "digest", "prepares", "commits", "sent_prepare",
                 "sent_commit", "committed")

    def __init__(self) -> None:
        self.proposal: object = None
        self.proposer: str = ""
        self.digest: str = ""
        self.prepares: typing.Set[str] = set()
        self.commits: typing.Set[str] = set()
        self.sent_prepare = False
        self.sent_commit = False
        self.committed = False


def proposal_digest(proposal: object) -> str:
    """The short identifier protocol messages vote on."""
    digest = getattr(proposal, "proposal_id", None)
    if digest is None:
        digest = getattr(proposal, "block_hash", None)
    if digest is None:
        digest = repr(proposal)
    return str(digest)


class PbftEngine(ReplicaEngine):
    """One PBFT replica."""

    message_kinds = (
        "pbft/pre_prepare",
        "pbft/prepare",
        "pbft/commit",
        "pbft/view_change",
        "pbft/new_view",
        "pbft/sync_request",
        "pbft/sync_response",
    )

    def __init__(
        self,
        context: EngineContext,
        proposal_factory: typing.Optional[typing.Callable[[int], object]] = None,
        progress_timeout: float = 4.0,
        max_in_flight: int = 8,
    ) -> None:
        super().__init__(context)
        self.proposal_factory = proposal_factory
        self.progress_timeout = progress_timeout
        self.max_in_flight = max_in_flight
        self.view = 0
        self.next_sequence = 0  # next seq this primary will assign
        self.executed_through = -1  # highest sequence delivered in order
        self._slots: typing.Dict[int, _Slot] = {}
        #: Executed decisions in sequence order, kept to answer peers'
        #: sync requests after they recover from a crash.
        self._decided_log: typing.List[typing.Tuple[object, str]] = []
        self._view_change_votes: typing.Dict[int, typing.Set[str]] = {}
        #: Handle of the pending progress timer; re-arming cancels the
        #: previous one in O(1) instead of leaving a fire-and-check
        #: no-op behind in the event queue.
        self._progress_timer: typing.Optional["TimerHandle"] = None
        self._timer_active = False
        self._external_pending = False
        self._stopped = False
        self._last_gap_sync_at: typing.Optional[float] = None

    # ------------------------------------------------------------------
    # Roles

    @property
    def primary_id(self) -> str:
        """The stable primary of the current view."""
        return self.context.peers[self.view % self.context.n]

    @property
    def is_primary(self) -> bool:
        """Whether this replica leads the current view."""
        return self.replica_id == self.primary_id and not self._stopped

    def stop(self) -> None:
        """Crash this replica."""
        self._stopped = True

    def recover(self) -> None:
        """Restart after a crash: rejoin and pull missed decisions.

        PBFT replicas crash with their voting state intact up to
        ``executed_through`` (the decided log is durable); everything the
        group executed while this replica was down is fetched from peers
        via ``pbft/sync_request`` and replayed in sequence order.
        """
        self._stopped = False
        self.context.broadcast(
            "pbft/sync_request", {"from_seq": self.executed_through + 1}
        )
        if self._has_pending_work():
            self._arm_progress_timer()

    # ------------------------------------------------------------------
    # Proposing

    def maybe_propose(self) -> bool:
        """If primary and a proposal is available, start a new slot.

        Returns whether a proposal was made. The node layer calls this on
        its block-publishing timer.
        """
        if not self.is_primary or self.proposal_factory is None:
            return False
        if self.next_sequence - self.executed_through > self.max_in_flight:
            return False  # bounded pipeline, as sawtooth-pbft enforces
        proposal = self.proposal_factory(self.next_sequence)
        if proposal is None:
            return False
        self.submit_proposal(proposal)
        return True

    def submit_proposal(self, proposal: object) -> None:
        """Primary path: assign a sequence and broadcast pre-prepare."""
        if not self.is_primary:
            return
        sequence = self.next_sequence
        self.next_sequence += 1
        digest = proposal_digest(proposal)
        slot = self._slot(sequence)
        slot.proposal = proposal
        slot.proposer = self.replica_id
        slot.digest = digest
        size = getattr(proposal, "size_bytes", 512)
        self._trace_phase_begin("prepare", sequence)
        self.context.broadcast(
            "pbft/pre_prepare",
            {"view": self.view, "seq": sequence, "proposal": proposal, "digest": digest},
            size_bytes=size,
        )
        # The primary counts as pre-prepared and prepared for its own slot.
        slot.prepares.add(self.replica_id)
        slot.sent_prepare = True
        self._arm_progress_timer()

    # ------------------------------------------------------------------
    # Message handling

    def on_message(self, kind: str, sender: str, payload: object) -> None:
        if self._stopped:
            return
        message = typing.cast(dict, payload)
        if kind == "pbft/pre_prepare":
            self._on_pre_prepare(sender, message)
        elif kind == "pbft/prepare":
            self._on_prepare(sender, message)
        elif kind == "pbft/commit":
            self._on_commit(sender, message)
        elif kind == "pbft/view_change":
            self._on_view_change(sender, message)
        elif kind == "pbft/new_view":
            self._on_new_view(sender, message)
        elif kind == "pbft/sync_request":
            self._on_sync_request(sender, message)
        elif kind == "pbft/sync_response":
            self._on_sync_response(sender, message)

    def _slot(self, sequence: int) -> _Slot:
        if sequence not in self._slots:
            self._slots[sequence] = _Slot()
        return self._slots[sequence]

    # ------------------------------------------------------------------
    # Tracing: one span per protocol phase per slot on this replica
    # (pre-prepare -> prepared, prepared -> committed).

    def _trace_phase_begin(self, phase: str, sequence: int) -> None:
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.begin(
                ("pbft", phase, self.replica_id, sequence),
                f"pbft.{phase}", category="consensus", node=self.replica_id,
                seq=sequence, view=self.view,
            )

    def _trace_phase_end(self, phase: str, sequence: int) -> None:
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.end(("pbft", phase, self.replica_id, sequence))

    def _maybe_request_gap_sync(self, sender: str, sequence: int) -> None:
        """Pull decisions a partition made us miss.

        ``recover()`` only syncs after a crash; a replica that was merely
        cut off never crashes, so when traffic arrives for a slot far
        beyond anything it can execute — and the next slot it needs has
        no pre-prepare — the decisions in between were missed on the
        wire and must be fetched. The far-beyond threshold is the
        primary's own pipeline bound: within ``max_in_flight`` a missing
        pre-prepare can still be ordinary message reordering.
        """
        if not self.recovery_mode:
            return
        next_needed = self.executed_through + 1
        if sequence <= next_needed + self.max_in_flight:
            return
        slot = self._slots.get(next_needed)
        if slot is not None and slot.proposal is not None:
            return  # the pipeline is intact, just deep
        now = self.context.now
        if self._last_gap_sync_at is not None and (
            now - self._last_gap_sync_at < self.progress_timeout
        ):
            return
        self._last_gap_sync_at = now
        self.context.send(sender, "pbft/sync_request", {"from_seq": next_needed})

    def _on_pre_prepare(self, sender: str, message: dict) -> None:
        self._maybe_request_gap_sync(sender, message["seq"])
        if message["view"] != self.view or sender != self.primary_id:
            return
        sequence = message["seq"]
        slot = self._slot(sequence)
        if slot.proposal is not None and slot.digest != message["digest"]:
            return  # conflicting pre-prepare from an equivocating primary
        slot.proposal = message["proposal"]
        slot.proposer = sender
        slot.digest = message["digest"]
        self._trace_phase_begin("prepare", sequence)
        slot.prepares.add(self.replica_id)
        slot.prepares.add(sender)  # pre-prepare doubles as the primary's prepare
        if not slot.sent_prepare:
            slot.sent_prepare = True
            self.context.broadcast(
                "pbft/prepare",
                {"view": self.view, "seq": sequence, "digest": slot.digest},
            )
        # In recovery mode, arm — but never reset — the progress timer:
        # a post-heal primary that keeps pre-preparing blocks which
        # never execute must not be able to postpone the view change
        # forever. The watermark check in the timeout tells real
        # progress from mere traffic.
        if not (self.recovery_mode and self._timer_active):
            self._arm_progress_timer()
        self._check_prepared(sequence)

    def _on_prepare(self, sender: str, message: dict) -> None:
        if message["view"] != self.view:
            return
        slot = self._slot(message["seq"])
        if slot.digest and message["digest"] != slot.digest:
            return
        slot.prepares.add(sender)
        self._check_prepared(message["seq"])

    def _check_prepared(self, sequence: int) -> None:
        slot = self._slot(sequence)
        if slot.sent_commit or slot.proposal is None:
            return
        if len(slot.prepares) >= quorum_size(self.context.n, "bft"):
            slot.sent_commit = True
            slot.commits.add(self.replica_id)
            self._trace_phase_end("prepare", sequence)
            self._trace_phase_begin("commit", sequence)
            self.context.broadcast(
                "pbft/commit",
                {"view": self.view, "seq": sequence, "digest": slot.digest},
            )
            self._check_committed(sequence)

    def _on_commit(self, sender: str, message: dict) -> None:
        self._maybe_request_gap_sync(sender, message["seq"])
        slot = self._slot(message["seq"])
        if slot.digest and message["digest"] != slot.digest:
            return
        slot.commits.add(sender)
        self._check_committed(message["seq"])

    def _check_committed(self, sequence: int) -> None:
        slot = self._slot(sequence)
        if slot.committed or slot.proposal is None or not slot.sent_commit:
            return
        if len(slot.commits) >= quorum_size(self.context.n, "bft"):
            slot.committed = True
            self._trace_phase_end("commit", sequence)
            self._execute_in_order()

    def _execute_in_order(self) -> None:
        while True:
            next_sequence = self.executed_through + 1
            slot = self._slots.get(next_sequence)
            if slot is None or not slot.committed:
                break
            self.executed_through = next_sequence
            self._external_pending = False
            self._decided_log.append((slot.proposal, slot.proposer))
            evidence = None
            if self.context.checker.enabled:
                evidence = {"kind": "bft-votes", "votes": len(slot.commits)}
            self._record_decision(
                Decision(
                    sequence=next_sequence,
                    proposal=slot.proposal,
                    proposer=slot.proposer,
                    decided_at=self.context.now,
                ),
                evidence,
            )
            self.next_sequence = max(self.next_sequence, next_sequence + 1)

    # ------------------------------------------------------------------
    # View change

    def note_pending_work(self) -> None:
        """Tell the engine the node has work waiting to be ordered.

        Backups use this to detect a dead or silent primary: if pending
        work exists and no slot commits within ``progress_timeout``, they
        vote for a view change even though no pre-prepare ever arrived.
        """
        self._external_pending = True
        if not self._timer_active:
            self._arm_progress_timer()

    def _arm_progress_timer(self) -> None:
        timer = self._progress_timer
        if timer is not None:
            timer.cancel()
        self._timer_active = True
        self._progress_timer = self.context.after_cancellable(
            self.progress_timeout, self._on_progress_timeout, self.executed_through
        )

    def _on_progress_timeout(self, watermark: int) -> None:
        if self._stopped:
            # Crashed with the timer live: like the pre-handle code, the
            # armed flag stays set until recover() re-arms.
            return
        self._timer_active = False
        if self.executed_through > watermark:
            if self._has_pending_work():
                self._arm_progress_timer()
            return  # progress was made
        if not self._has_pending_work():
            return
        target = self.view + 1
        self._vote_view_change(target, rebroadcast=self.recovery_mode)
        if self.recovery_mode and self.view < target:
            # The view change found no quorum yet — e.g. the votes were
            # lost to a partition. Keep the timer running so the vote is
            # periodically re-broadcast; without this a heal finds every
            # replica already voted and permanently silent.
            self._arm_progress_timer()

    def _has_pending_work(self) -> bool:
        if self._external_pending:
            return True
        return any(
            seq > self.executed_through and slot.proposal is not None and not slot.committed
            for seq, slot in self._slots.items()
        )

    def _vote_view_change(self, new_view: int, rebroadcast: bool = False) -> None:
        votes = self._view_change_votes.setdefault(new_view, set())
        if self.replica_id in votes and not rebroadcast:
            return
        votes.add(self.replica_id)
        self.context.broadcast("pbft/view_change", {"new_view": new_view})
        self._maybe_enter_view(new_view)

    def _on_view_change(self, sender: str, message: dict) -> None:
        new_view = message["new_view"]
        if new_view <= self.view:
            return
        votes = self._view_change_votes.setdefault(new_view, set())
        votes.add(sender)
        # Join the view change once f+1 replicas demand it.
        f_plus_one = (self.context.n - 1) // 3 + 1
        if len(votes) >= f_plus_one:
            self._vote_view_change(new_view)
        self._maybe_enter_view(new_view)

    def _maybe_enter_view(self, new_view: int) -> None:
        votes = self._view_change_votes.get(new_view, set())
        if new_view <= self.view or len(votes) < quorum_size(self.context.n, "bft"):
            return
        self.view = new_view
        self.next_sequence = self.executed_through + 1
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.event(
                "pbft.view_change", category="consensus", node=self.replica_id,
                view=new_view,
            )
        # Undecided slots above the watermark are abandoned; the node
        # layer still holds their transactions and will re-propose.
        for sequence in list(self._slots):
            if sequence > self.executed_through and not self._slots[sequence].committed:
                del self._slots[sequence]
        if self.is_primary:
            self.context.broadcast("pbft/new_view", {"view": new_view})
        self._arm_progress_timer()

    def _on_new_view(self, sender: str, message: dict) -> None:
        if message["view"] > self.view:
            # Catch up with a view change we missed.
            self._view_change_votes.setdefault(message["view"], set()).add(sender)
            self.view = message["view"]
            self.next_sequence = self.executed_through + 1

    # ------------------------------------------------------------------
    # Crash-recovery sync

    def _on_sync_request(self, sender: str, message: dict) -> None:
        from_seq = message["from_seq"]
        entries = self._decided_log[from_seq:]
        self.context.send(
            sender,
            "pbft/sync_response",
            {"from_seq": from_seq, "entries": entries, "view": self.view},
            size_bytes=256 + 512 * len(entries),
        )

    def _on_sync_response(self, sender: str, message: dict) -> None:
        for offset, (proposal, proposer) in enumerate(message["entries"]):
            sequence = message["from_seq"] + offset
            if sequence != self.executed_through + 1:
                continue  # duplicate response, already replayed
            self.executed_through = sequence
            self.next_sequence = max(self.next_sequence, sequence + 1)
            self._decided_log.append((proposal, proposer))
            evidence = {"kind": "sync"} if self.context.checker.enabled else None
            self._record_decision(
                Decision(
                    sequence=sequence,
                    proposal=proposal,
                    proposer=proposer,
                    decided_at=self.context.now,
                ),
                evidence,
            )
        if message["view"] > self.view:
            self.view = message["view"]
            self.next_sequence = self.executed_through + 1
        # Slots committed locally above the synced watermark may now be
        # executable (e.g. commits that raced the crash).
        self._execute_in_order()
