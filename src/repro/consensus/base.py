"""Shared machinery for consensus engine replicas.

Every engine is instantiated once per replica and talks to its peers
through an :class:`EngineContext`, which hides the node plumbing: sending
and broadcasting protocol messages, timers, RNG, and the upcall that
delivers a :class:`Decision` to the hosting node. Engines agree on opaque
*proposals* (the node layer passes block-shaped payloads) identified by a
monotonically increasing sequence number.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import random

    from repro.sim.events import Event
    from repro.sim.kernel import Simulator, TimerHandle


@dataclasses.dataclass(frozen=True)
class Decision:
    """One agreed slot in the total order."""

    sequence: int
    proposal: object
    proposer: str
    decided_at: float


class EngineContext:
    """The interface an engine replica uses to reach the outside world.

    The hosting node constructs one context per engine replica, wiring
    ``send_fn`` to the network, ``decide_fn`` to its commit path and
    ``timer_fn`` to the simulator.
    """

    def __init__(
        self,
        sim: "Simulator",
        replica_id: str,
        peers: typing.Sequence[str],
        send_fn: typing.Callable[[str, str, object, int], None],
        decide_fn: typing.Callable[[Decision], None],
        rng: "random.Random",
        broadcast_fn: typing.Optional[typing.Callable[[str, object, int], None]] = None,
    ) -> None:
        self.sim = sim
        self.replica_id = replica_id
        self.peers = list(peers)  # includes replica_id, stable order
        self._send_fn = send_fn
        self._decide_fn = decide_fn
        #: The whole-group fan-out. Hosting nodes wire this to
        #: ``Network.broadcast`` so a logical broadcast takes the
        #: zero-allocation shared-wire-record path; absent that, fall
        #: back to one ``send_fn`` call per peer (identical semantics).
        self._broadcast_fn = broadcast_fn or self._loop_broadcast
        self.rng = rng
        if replica_id not in self.peers:
            raise ValueError(f"replica {replica_id!r} missing from peer list {self.peers}")

    @property
    def n(self) -> int:
        """Replica-group size."""
        return len(self.peers)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    @property
    def tracer(self):
        """The hosting simulator's tracer (NOOP unless one is installed)."""
        return self.sim.tracer

    @property
    def checker(self):
        """The hosting simulator's invariant checker (NOOP by default)."""
        return self.sim.checker

    def index_of(self, replica_id: str) -> int:
        """Stable index of a replica in the group."""
        return self.peers.index(replica_id)

    def send(self, dst: str, kind: str, payload: object, size_bytes: int = 256) -> None:
        """Send a protocol message to one peer."""
        self._send_fn(dst, kind, payload, size_bytes)

    def broadcast(self, kind: str, payload: object, size_bytes: int = 256) -> None:
        """Send a protocol message to every *other* peer."""
        self._broadcast_fn(kind, payload, size_bytes)

    def _loop_broadcast(self, kind: str, payload: object, size_bytes: int) -> None:
        """Fallback fan-out: one send per peer, in peer-list order."""
        for peer in self.peers:
            if peer != self.replica_id:
                self._send_fn(peer, kind, payload, size_bytes)

    def decide(self, decision: Decision) -> None:
        """Deliver a decided slot to the hosting node."""
        self._decide_fn(decision)

    def after(
        self, delay: float, callback: typing.Callable[..., None], *args: object
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        self.sim.schedule(delay, callback, *args)

    def after_cancellable(
        self, delay: float, callback: typing.Callable[..., None], *args: object
    ) -> "TimerHandle":
        """Like :meth:`after`, but returns a cancellable
        :class:`~repro.sim.kernel.TimerHandle` — engines use this for
        progress timers that are re-armed far more often than they fire."""
        return self.sim.schedule_cancellable(delay, callback, *args)

    def timeout(self, delay: float) -> "Event":
        """A timeout event (for generator-style engine processes)."""
        return self.sim.timeout(delay)


class ReplicaEngine:
    """Base class for consensus engine replicas.

    Subclasses implement :meth:`start`, :meth:`on_message` and the
    protocol itself; the hosting node calls :meth:`submit_proposal` when
    it has a block ready (leader-based engines queue it until this
    replica leads).
    """

    #: Message kinds handled by this engine (informational).
    message_kinds: typing.Tuple[str, ...] = ()

    def __init__(self, context: EngineContext) -> None:
        self.context = context
        self.decided_count = 0
        #: Arms the engine's partition-recovery aids (vote re-broadcast,
        #: gap sync, non-resetting progress timers). Off by default:
        #: those aids change message and timer schedules, and fault-free
        #: benchmark runs must stay byte-identical to a build without
        #: the faults subsystem. The fault injector arms it at install.
        self.recovery_mode = False

    def enable_recovery(self) -> None:
        """Arm the partition/crash recovery aids (fault runs only)."""
        self.recovery_mode = True

    @property
    def replica_id(self) -> str:
        """This replica's id."""
        return self.context.replica_id

    @property
    def stopped(self) -> bool:
        """Whether the replica is currently crashed."""
        return bool(getattr(self, "_stopped", False))

    def start(self) -> None:
        """Begin protocol operation (timers, first view)."""

    def stop(self) -> None:
        """Cease protocol operation (crash simulation)."""
        self._stopped = True

    def recover(self) -> None:
        """Resume protocol operation after :meth:`stop`.

        Subclasses re-arm their timers and run their catch-up path
        (sync requests, re-election) on top of this.
        """
        self._stopped = False

    # ------------------------------------------------------------------
    # Fault-injection lifecycle. The faults subsystem only calls these
    # two; engines whose crash/recovery handling needs more than
    # stop()/recover() (e.g. flushing volatile state) override them.

    def on_crash(self) -> None:
        """The hosting node crashed: cease operation, drop volatile state."""
        self.stop()

    def on_restart(self) -> None:
        """The hosting node restarted: rejoin and catch up with the group."""
        self.recover()

    def on_message(self, kind: str, sender: str, payload: object) -> None:
        """Handle a protocol message from a peer."""
        raise NotImplementedError

    def submit_proposal(self, proposal: object) -> None:
        """Offer a proposal (a block) for ordering."""
        raise NotImplementedError

    def _record_decision(
        self, decision: Decision, evidence: typing.Optional[typing.Dict[str, object]] = None
    ) -> None:
        self.decided_count += 1
        tracer = self.context.tracer
        if tracer.enabled and tracer.wants("consensus"):
            tracer.event(
                "decision", category="consensus", node=self.replica_id,
                engine=type(self).__name__, seq=decision.sequence,
                proposer=decision.proposer,
            )
            tracer.metrics.counter("consensus.decisions", node=self.replica_id).inc()
        checker = self.context.checker
        if checker.enabled:
            checker.on_decision(
                self.replica_id, type(self).__name__, decision,
                evidence or {}, self.context.n,
            )
        self.context.decide(decision)
