"""Delegated Proof of Stake — BitShares' consensus engine.

A fixed witness schedule (the paper's citation [28]): time is divided
into slots of ``block_interval`` seconds; the witness assigned to a slot
produces, signs and broadcasts the block for that slot, and every node
applies it on receipt. A new round starts whenever a block is finalized
(Section 2), which with a static witness set reduces to round-robin slot
assignment. Witnesses that are down simply miss their slot — no votes,
no view changes — which is why BitShares' throughput stays flat as the
network grows (Section 5.8.2): block production cost never depends on
the number of nodes.
"""

from __future__ import annotations

import typing

from repro.consensus.base import Decision, EngineContext, ReplicaEngine


class DposEngine(ReplicaEngine):
    """One BitShares node; a producer when it appears in the witness list."""

    message_kinds = ("dpos/block", "dpos/sync_request", "dpos/sync_blocks")

    def __init__(
        self,
        context: EngineContext,
        witnesses: typing.Sequence[str],
        block_interval: float = 5.0,
        proposal_factory: typing.Optional[typing.Callable[[int], object]] = None,
    ) -> None:
        super().__init__(context)
        if not witnesses:
            raise ValueError("DPoS requires at least one witness")
        unknown = [w for w in witnesses if w not in context.peers]
        if unknown:
            raise ValueError(f"witnesses not in peer group: {unknown}")
        if block_interval <= 0:
            raise ValueError(f"block_interval must be positive, got {block_interval}")
        self.witnesses = list(witnesses)
        self.block_interval = block_interval
        self.proposal_factory = proposal_factory
        self.height = 0  # next height to apply
        self.produced_blocks = 0
        self.missed_slots = 0
        self._future_blocks: typing.Dict[int, typing.Tuple[object, str]] = {}
        self._applied_log: typing.List[typing.Tuple[object, str]] = []
        self._stopped = False

    # ------------------------------------------------------------------
    # Schedule

    def witness_for_slot(self, slot: int) -> str:
        """The witness assigned to ``slot``."""
        return self.witnesses[slot % len(self.witnesses)]

    def slot_time(self, slot: int) -> float:
        """The wall-clock start of ``slot``."""
        return (slot + 1) * self.block_interval

    @property
    def is_witness(self) -> bool:
        """Whether this node is in the witness set."""
        return self.replica_id in self.witnesses

    def start(self) -> None:
        """Producers arm their slot timers."""
        if self.is_witness:
            self._schedule_slot(0)

    def stop(self) -> None:
        """Crash this node (a producer then misses its slots)."""
        self._stopped = True

    def recover(self) -> None:
        """Restart after a crash: sync missed blocks, then resume slots."""
        self._stopped = False
        peer = next((p for p in self.context.peers if p != self.replica_id), None)
        if peer is not None:
            self.context.send(peer, "dpos/sync_request", {"from_height": self.height})
        if self.is_witness:
            next_slot = int(self.context.now / self.block_interval) + 1
            self._schedule_slot(next_slot)

    def _schedule_slot(self, slot: int) -> None:
        delay = max(0.0, self.slot_time(slot) - self.context.now)
        self.context.after(delay, self._on_slot, slot)

    def _on_slot(self, slot: int) -> None:
        if self._stopped:
            return
        self._schedule_slot(slot + 1)
        if self.witness_for_slot(slot) != self.replica_id:
            return
        proposal = self.proposal_factory(slot) if self.proposal_factory else None
        tracer = self.context.tracer
        if tracer.enabled:
            # The slot interval is fixed by the schedule, so the span's
            # bounds are both known at production time.
            tracer.record_span(
                "dpos.slot", category="consensus", node=self.replica_id,
                start=self.context.now, end=self.slot_time(slot + 1),
                slot=slot, height=self.height, produced=proposal is not None,
            )
        if proposal is None:
            self.missed_slots += 1
            return
        height = self.height
        self.produced_blocks += 1
        self.context.broadcast(
            "dpos/block",
            {"height": height, "slot": slot, "proposal": proposal},
            size_bytes=getattr(proposal, "size_bytes", 512),
        )
        self._apply(height, proposal, self.replica_id, slot=slot)

    # ------------------------------------------------------------------
    # Message handling

    def on_message(self, kind: str, sender: str, payload: object) -> None:
        if self._stopped:
            return
        message = typing.cast(dict, payload)
        if kind == "dpos/sync_request":
            blocks = self._applied_log[message["from_height"]:]
            self.context.send(
                sender,
                "dpos/sync_blocks",
                {"from_height": message["from_height"], "blocks": blocks},
            )
            return
        if kind == "dpos/sync_blocks":
            for offset, (proposal, proposer) in enumerate(message["blocks"]):
                height = message["from_height"] + offset
                if height == self.height:
                    self._apply(height, proposal, proposer)
            return
        if kind != "dpos/block":
            return
        if self.witness_for_slot(message["slot"]) != sender:
            return  # not that witness's slot; reject the forgery
        height = message["height"]
        if height < self.height:
            return  # already applied
        if height > self.height:
            # Out-of-order delivery; hold until the gap fills.
            self._future_blocks[height] = (message["proposal"], sender)
            return
        self._apply(height, message["proposal"], sender, slot=message["slot"])

    def _apply(
        self,
        height: int,
        proposal: object,
        proposer: str,
        slot: typing.Optional[int] = None,
    ) -> None:
        self.height = height + 1
        self._applied_log.append((proposal, proposer))
        evidence = None
        if self.context.checker.enabled:
            if slot is not None:
                # The schedule travels with the evidence so the oracle can
                # check slot adherence and cross-replica consistency.
                evidence = {
                    "kind": "dpos-slot", "slot": slot,
                    "witnesses": tuple(self.witnesses),
                }
            else:
                # Sync replay / buffered out-of-order blocks: the producer
                # already recorded the slot-backed decision.
                evidence = {"kind": "sync"}
        self._record_decision(
            Decision(
                sequence=height,
                proposal=proposal,
                proposer=proposer,
                decided_at=self.context.now,
            ),
            evidence,
        )
        while self.height in self._future_blocks:
            proposal, proposer = self._future_blocks.pop(self.height)
            self._apply(self.height, proposal, proposer)
            break
