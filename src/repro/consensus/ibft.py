"""Istanbul BFT — Quorum's consensus engine.

IBFT (the paper's citation [44], Moniz 2020) decides one height at a
time. Each height runs in rounds: the proposer of round ``r`` for height
``h`` is ``validators[(h + r) mod n]``; a round goes pre-prepare →
prepare → commit with BFT quorums, and a stalled round is abandoned
through round-change votes, rotating the proposer.

Quorum paces proposals with ``istanbul.blockperiod``: the node layer
calls :meth:`IbftEngine.maybe_propose` on that timer, and the proposer
inserts whatever block the node's transaction pool yields — possibly an
empty block, which is exactly what the paper observes during the
blockperiod <= 2 s liveness failure (Section 5.5).
"""

from __future__ import annotations

import typing

from repro.consensus.base import Decision, EngineContext, ReplicaEngine
from repro.consensus.pbft import proposal_digest
from repro.crypto.signatures import quorum_size

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import TimerHandle


class IbftEngine(ReplicaEngine):
    """One IBFT validator."""

    message_kinds = (
        "ibft/pre_prepare",
        "ibft/prepare",
        "ibft/commit",
        "ibft/round_change",
        "ibft/sync_request",
        "ibft/sync_response",
    )

    def __init__(
        self,
        context: EngineContext,
        proposal_factory: typing.Optional[typing.Callable[[int], object]] = None,
        round_timeout: float = 10.0,
    ) -> None:
        super().__init__(context)
        self.proposal_factory = proposal_factory
        self.round_timeout = round_timeout
        self.height = 0
        self.round = 0
        self.proposal: object = None
        self.digest = ""
        self.proposer: str = ""
        self._prepares: typing.Set[str] = set()
        self._commits: typing.Set[str] = set()
        self._sent_prepare = False
        self._sent_commit = False
        self._round_change_votes: typing.Dict[typing.Tuple[int, int], typing.Set[str]] = {}
        #: Handle of the pending round timer; re-arming cancels the
        #: previous one instead of leaving a stale no-op in the queue.
        self._round_timer: typing.Optional["TimerHandle"] = None
        self._stopped = False
        #: Decided (proposal, proposer) per height, answering sync
        #: requests from validators recovering from a crash.
        self._decided_log: typing.List[typing.Tuple[object, str]] = []
        self._sync_requested_through = -1
        self._last_sync_request_at: typing.Optional[float] = None

    # ------------------------------------------------------------------
    # Roles

    def proposer_for(self, height: int, round_number: int) -> str:
        """The rotating proposer for a (height, round) pair."""
        return self.context.peers[(height + round_number) % self.context.n]

    @property
    def is_proposer(self) -> bool:
        """Whether this validator proposes the current round."""
        return self.replica_id == self.proposer_for(self.height, self.round) and not self._stopped

    def stop(self) -> None:
        """Crash this validator."""
        self._stopped = True

    def recover(self) -> None:
        """Restart after a crash: re-arm the round timer and catch up.

        IBFT is height-sequential, so a restarted validator first pulls
        the heights the group decided while it was down; until those
        arrive it simply drops in-round traffic for heights it has not
        reached (and re-requests sync when it sees one).
        """
        self._stopped = False
        self._arm_round_timer()
        self._sync_requested_through = self.height
        self._last_sync_request_at = self.context.now
        self.context.broadcast("ibft/sync_request", {"from_height": self.height})

    def start(self) -> None:
        """Arm the first round timer."""
        self._arm_round_timer()

    # ------------------------------------------------------------------
    # Proposing

    def maybe_propose(self) -> bool:
        """Blockperiod tick: propose for the current height if proposer.

        Returns whether a proposal was broadcast.
        """
        if self._stopped or not self.is_proposer or self.proposal is not None:
            return False
        if self.proposal_factory is None:
            return False
        proposal = self.proposal_factory(self.height)
        if proposal is None:
            return False
        self.submit_proposal(proposal)
        return True

    def submit_proposal(self, proposal: object) -> None:
        """Broadcast pre-prepare for the current (height, round)."""
        if not self.is_proposer or self.proposal is not None:
            return
        self._accept_proposal(proposal, self.replica_id)
        self.context.broadcast(
            "ibft/pre_prepare",
            {
                "height": self.height,
                "round": self.round,
                "proposal": proposal,
                "digest": self.digest,
            },
            size_bytes=getattr(proposal, "size_bytes", 512),
        )
        self._send_prepare()

    def _accept_proposal(self, proposal: object, proposer: str) -> None:
        self.proposal = proposal
        self.digest = proposal_digest(proposal)
        self.proposer = proposer
        tracer = self.context.tracer
        if tracer.enabled:
            # Pre-prepare -> commit (or round change) for this height/round.
            tracer.begin(
                ("ibft", self.replica_id, self.height, self.round),
                "ibft.round", category="consensus", node=self.replica_id,
                height=self.height, round=self.round, proposer=proposer,
            )

    # ------------------------------------------------------------------
    # Message handling

    def on_message(self, kind: str, sender: str, payload: object) -> None:
        if self._stopped:
            return
        message = typing.cast(dict, payload)
        if kind == "ibft/sync_request":
            self._on_sync_request(sender, message)
            return
        if kind == "ibft/sync_response":
            self._on_sync_response(sender, message)
            return
        if kind == "ibft/round_change":
            self._on_round_change(sender, message)
            return
        if message["height"] > self.height:
            # A peer is ahead — we missed decisions (crash recovery race).
            self._request_sync(sender)
            return
        if message["height"] != self.height or message["round"] != self.round:
            return  # stale or future round; IBFT is height-sequential
        if kind == "ibft/pre_prepare":
            self._on_pre_prepare(sender, message)
        elif kind == "ibft/prepare":
            self._on_prepare(sender, message)
        elif kind == "ibft/commit":
            self._on_commit(sender, message)

    def _on_pre_prepare(self, sender: str, message: dict) -> None:
        if sender != self.proposer_for(self.height, self.round):
            return
        if self.proposal is not None:
            return
        self._accept_proposal(message["proposal"], sender)
        self._send_prepare()

    def _send_prepare(self) -> None:
        if self._sent_prepare:
            return
        self._sent_prepare = True
        self._prepares.add(self.replica_id)
        self.context.broadcast(
            "ibft/prepare",
            {"height": self.height, "round": self.round, "digest": self.digest},
        )
        self._check_prepared()

    def _on_prepare(self, sender: str, message: dict) -> None:
        if self.digest and message["digest"] != self.digest:
            return
        self._prepares.add(sender)
        self._check_prepared()

    def _check_prepared(self) -> None:
        if self._sent_commit or self.proposal is None:
            return
        if len(self._prepares) >= quorum_size(self.context.n, "bft"):
            self._sent_commit = True
            self._commits.add(self.replica_id)
            self.context.broadcast(
                "ibft/commit",
                {"height": self.height, "round": self.round, "digest": self.digest},
            )
            self._check_committed()

    def _on_commit(self, sender: str, message: dict) -> None:
        if self.digest and message["digest"] != self.digest:
            return
        self._commits.add(sender)
        self._check_committed()

    def _check_committed(self) -> None:
        if self.proposal is None or not self._sent_commit:
            return
        if len(self._commits) < quorum_size(self.context.n, "bft"):
            return
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.end(("ibft", self.replica_id, self.height, self.round), decided=True)
        decision = Decision(
            sequence=self.height,
            proposal=self.proposal,
            proposer=self.proposer,
            decided_at=self.context.now,
        )
        # Captured before _enter_height resets the round's commit set.
        evidence = None
        if self.context.checker.enabled:
            evidence = {"kind": "bft-votes", "votes": len(self._commits)}
        self._decided_log.append((self.proposal, self.proposer))
        self._enter_height(self.height + 1)
        self._record_decision(decision, evidence)

    def _enter_height(self, height: int) -> None:
        self.height = height
        self.round = 0
        self._reset_round_state()
        self._arm_round_timer()

    def _reset_round_state(self) -> None:
        self.proposal = None
        self.digest = ""
        self.proposer = ""
        self._prepares = set()
        self._commits = set()
        self._sent_prepare = False
        self._sent_commit = False

    # ------------------------------------------------------------------
    # Round change

    def _arm_round_timer(self) -> None:
        timer = self._round_timer
        if timer is not None:
            timer.cancel()
        # Exponential backoff per round, as go-ethereum's IBFT does.
        delay = self.round_timeout * (2 ** min(self.round, 6))
        self._round_timer = self.context.after_cancellable(delay, self._on_round_timeout)

    def _on_round_timeout(self) -> None:
        if self._stopped:
            return
        target = self.round + 1
        self._vote_round_change(self.height, target, rebroadcast=self.recovery_mode)
        if self.recovery_mode and self.round < target:
            # The round change found no quorum yet — e.g. the votes were
            # lost to a partition. Keep the timer running so the vote is
            # periodically re-broadcast; without this a heal finds every
            # validator already voted and permanently silent.
            self._arm_round_timer()

    def _vote_round_change(
        self, height: int, new_round: int, rebroadcast: bool = False
    ) -> None:
        votes = self._round_change_votes.setdefault((height, new_round), set())
        if self.replica_id in votes and not rebroadcast:
            return
        votes.add(self.replica_id)
        self.context.broadcast("ibft/round_change", {"height": height, "round": new_round})
        self._maybe_enter_round(height, new_round)

    def _on_round_change(self, sender: str, message: dict) -> None:
        height, new_round = message["height"], message["round"]
        if height != self.height or new_round <= self.round:
            return
        votes = self._round_change_votes.setdefault((height, new_round), set())
        votes.add(sender)
        f_plus_one = (self.context.n - 1) // 3 + 1
        if len(votes) >= f_plus_one:
            self._vote_round_change(height, new_round)
        self._maybe_enter_round(height, new_round)

    def _maybe_enter_round(self, height: int, new_round: int) -> None:
        if height != self.height or new_round <= self.round:
            return
        votes = self._round_change_votes.get((height, new_round), set())
        if len(votes) < quorum_size(self.context.n, "bft"):
            return
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.end(("ibft", self.replica_id, self.height, self.round), decided=False)
            tracer.event(
                "ibft.round_change", category="consensus", node=self.replica_id,
                height=height, round=new_round,
            )
        self.round = new_round
        self._reset_round_state()
        self._arm_round_timer()

    # ------------------------------------------------------------------
    # Crash-recovery sync

    def _request_sync(self, sender: str) -> None:
        now = self.context.now
        if self.height <= self._sync_requested_through:
            # A request for this height is already outstanding. In
            # recovery mode, retry after a round-timeout of silence: the
            # first request can race ahead of any peer actually deciding
            # this height (restart just as the group stalls on us), and
            # responders with nothing to offer stay silent.
            if not self.recovery_mode:
                return
            if self._last_sync_request_at is not None and (
                now - self._last_sync_request_at < self.round_timeout
            ):
                return
        self._sync_requested_through = self.height
        self._last_sync_request_at = now
        self.context.send(sender, "ibft/sync_request", {"from_height": self.height})

    def _on_sync_request(self, sender: str, message: dict) -> None:
        from_height = message["from_height"]
        entries = self._decided_log[from_height:]
        if not entries:
            return
        self.context.send(
            sender,
            "ibft/sync_response",
            {"from_height": from_height, "entries": entries},
            size_bytes=256 + 512 * len(entries),
        )

    def _on_sync_response(self, sender: str, message: dict) -> None:
        for offset, (proposal, proposer) in enumerate(message["entries"]):
            height = message["from_height"] + offset
            if height != self.height:
                continue  # duplicate response, already replayed
            decision = Decision(
                sequence=height,
                proposal=proposal,
                proposer=proposer,
                decided_at=self.context.now,
            )
            evidence = {"kind": "sync"} if self.context.checker.enabled else None
            self._decided_log.append((proposal, proposer))
            self._enter_height(height + 1)
            self._record_decision(decision, evidence)
