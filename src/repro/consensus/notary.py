"""The Corda notary uniqueness service.

Corda has no blocks and no global ordering; the only consensus component
is the notary, which checks that a transaction's input states have not
been consumed before and signs it (Section 2). The notary is a bounded
service: requests queue for one of ``workers`` signing slots and each
request costs ``service_time`` seconds — Corda OS notaries process
serially (one worker), Corda Enterprise in parallel.
"""

from __future__ import annotations

import typing

from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.storage.utxo import StateRef


class NotaryService:
    """A (cluster of) notary nodes sharing one spent-state set."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "notary",
        workers: int = 1,
        service_time: float = 0.01,
    ) -> None:
        if service_time < 0:
            raise ValueError(f"negative service_time: {service_time}")
        self.sim = sim
        self.name = name
        self.service_time = service_time
        self.pool = Resource(sim, capacity=workers, name=f"{name}-workers")
        self._spent: typing.Set[StateRef] = set()
        self.accepted = 0
        self.rejected = 0
        self._stopped = False

    @property
    def stopped(self) -> bool:
        """Whether the notary is currently crashed."""
        return self._stopped

    def on_crash(self) -> None:
        """Crash the notary: requests already queued are abandoned.

        The spent-state set is durable (it is the notary's whole point),
        so a restarted notary keeps rejecting double-spends seen before
        the crash.
        """
        self._stopped = True

    def on_restart(self) -> None:
        """Bring the notary back; new requests are served normally."""
        self._stopped = False

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a signing slot."""
        return self.pool.queued

    def is_spent(self, ref: StateRef) -> bool:
        """Whether a state reference was already consumed."""
        return ref in self._spent

    def notarise(self, tx_id: str, inputs: typing.Sequence[StateRef]) -> Process:
        """Submit a notarisation request.

        Returns a process whose value is ``(ok, conflicting_refs)``. The
        check-and-mark is atomic: either all inputs are marked spent, or
        none are and the conflicting refs are reported.
        """
        return self.sim.spawn(self._notarise(tx_id, list(inputs)), name=f"notarise:{tx_id}")

    def _notarise(self, tx_id: str, inputs: typing.List[StateRef]) -> typing.Generator:
        tracer = self.sim.tracer
        if tracer.enabled:
            # Queueing + signing: this span is where Corda's bottleneck
            # (one serial worker on Corda OS) becomes visible.
            tracer.begin(
                ("notary", self.name, tx_id), "notary.request",
                category="consensus", node=self.name,
                tx=tx_id, queued=self.pool.queued,
            )
            tracer.metrics.gauge("notary.queue_depth", node=self.name).set(self.pool.queued)
        yield self.pool.acquire()
        try:
            if self.service_time > 0:
                yield self.sim.timeout(self.service_time)
            conflicting = [ref for ref in inputs if ref in self._spent]
            if conflicting:
                self.rejected += 1
                if tracer.enabled:
                    tracer.end(("notary", self.name, tx_id), ok=False)
                return False, conflicting
            self._spent.update(inputs)
            self.accepted += 1
            if tracer.enabled:
                tracer.end(("notary", self.name, tx_id), ok=True)
            return True, []
        finally:
            self.pool.release()
