"""Kafka-backed ordering — Fabric's pre-Raft ordering service.

Section 5.4 compares the two: with Kafka, Fabric loses *no* transactions
at RL=1600 but runs slower, because every envelope takes a round trip
through an external broker cluster before any orderer sees it in order.
The paper attributes Raft's lost transactions and "malfunctioning
orderers" to Raft's relative immaturity, which the Raft-path model
expresses as event-delivery overload; the Kafka path trades that for
per-envelope broker latency.

The model: a single logical broker endpoint (the Kafka cluster) with a
publish queue. Producers (orderers) publish envelopes; the broker
assigns offsets at a bounded throughput and fans each committed offset
back to every orderer, which then cut blocks deterministically from the
totally ordered stream.
"""

from __future__ import annotations

import typing

from repro.sim.kernel import Simulator
from repro.sim.stores import Store


class KafkaBroker:
    """The ordering backbone: a totally ordered, replicated log.

    Not an :class:`~repro.net.network.Endpoint` subclass by itself —
    the hosting system wires it to the network; this class holds the
    offset log and the service model.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "kafka",
        publish_latency: float = 0.030,
        per_message_cost: float = 0.0005,
    ) -> None:
        if publish_latency < 0 or per_message_cost < 0:
            raise ValueError("Kafka service times must be non-negative")
        self.sim = sim
        self.name = name
        self.publish_latency = publish_latency
        self.per_message_cost = per_message_cost
        self._queue: Store = Store(sim, name=f"{name}-publish")
        self._log: typing.List[object] = []
        self._subscribers: typing.List[typing.Callable[[int, object], None]] = []
        self.sim.spawn(self._commit_loop(), name=f"{name}-committer")

    @property
    def next_offset(self) -> int:
        """The offset the next committed message will get."""
        return len(self._log)

    def subscribe(self, callback: typing.Callable[[int, object], None]) -> None:
        """Deliver every committed (offset, message) to ``callback``.

        New subscribers replay the existing log first (a consumer
        starting from offset 0).
        """
        for offset, message in enumerate(self._log):
            self.sim.schedule(0.0, lambda o=offset, m=message: callback(o, m))
        self._subscribers.append(callback)

    def replay(self, from_offset: int, callback: typing.Callable[[int, object], None]) -> None:
        """Re-deliver committed messages from ``from_offset`` onward.

        A consumer recovering from a crash resumes from its last seen
        offset; the broker retains the whole log (no compaction in the
        benchmark's time frame), so the gap is always available.
        """
        if from_offset < 0:
            raise ValueError(f"negative offset: {from_offset}")
        for offset in range(from_offset, len(self._log)):
            message = self._log[offset]
            self.sim.schedule(0.0, lambda o=offset, m=message: callback(o, m))

    def publish(self, message: object) -> None:
        """Enqueue a message for ordering.

        The publish latency (producer -> broker wire plus replication
        ack) delays arrival but does not occupy the broker; only the
        per-message processing serialises.
        """
        self.sim.schedule(self.publish_latency, lambda: self._queue.try_put(message))

    def _commit_loop(self) -> typing.Generator:
        while True:
            message = yield self._queue.get()
            if self.per_message_cost > 0:
                yield self.sim.timeout(self.per_message_cost)
            offset = len(self._log)
            self._log.append(message)
            for callback in list(self._subscribers):
                callback(offset, message)

    def log_size(self) -> int:
        """Committed messages so far."""
        return len(self._log)
