"""Consensus engines.

Six protocol implementations cover the seven systems (Table 2 of the
paper): Raft (Fabric's ordering service), PBFT (Sawtooth), Istanbul BFT
(Quorum), DiemBFT/HotStuff (Diem), Delegated Proof-of-Stake (BitShares)
and the Corda notary uniqueness service. Each engine is a replica-local
state machine exchanging the protocol's real message flow through
:class:`~repro.consensus.base.EngineContext`; agreement is reached at
block granularity.
"""

from repro.consensus.base import Decision, EngineContext, ReplicaEngine
from repro.consensus.diembft import DiemBftEngine
from repro.consensus.dpos import DposEngine
from repro.consensus.ibft import IbftEngine
from repro.consensus.notary import NotaryService
from repro.consensus.pbft import PbftEngine
from repro.consensus.raft import RaftEngine

__all__ = [
    "Decision",
    "DiemBftEngine",
    "DposEngine",
    "EngineContext",
    "IbftEngine",
    "NotaryService",
    "PbftEngine",
    "RaftEngine",
    "ReplicaEngine",
]
