"""Raft log replication — Fabric's ordering service consensus.

A faithful (crash-fault-tolerant) Raft: randomized election timeouts,
RequestVote/AppendEntries RPCs, per-follower nextIndex backtracking and
majority commit. Decisions are emitted on *every* replica as its commit
index advances, which is what the Fabric model needs: each orderer
delivers committed blocks independently.

Reference: Ongaro & Ousterhout, "In Search of an Understandable Consensus
Algorithm" (USENIX ATC '14) — the paper's citation [46].
"""

from __future__ import annotations

import dataclasses
import typing

from repro.consensus.base import Decision, EngineContext, ReplicaEngine
from repro.crypto.signatures import quorum_size

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import TimerHandle


@dataclasses.dataclass(frozen=True)
class LogEntry:
    """One slot of the replicated log."""

    term: int
    proposal: object
    proposer: str


FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


class RaftEngine(ReplicaEngine):
    """One Raft replica."""

    message_kinds = ("raft/request_vote", "raft/vote", "raft/append", "raft/append_reply")

    def __init__(
        self,
        context: EngineContext,
        heartbeat_interval: float = 0.05,
        election_timeout: typing.Tuple[float, float] = (0.15, 0.30),
    ) -> None:
        super().__init__(context)
        self.heartbeat_interval = heartbeat_interval
        self.election_timeout = election_timeout
        self.role = FOLLOWER
        self.current_term = 0
        self.voted_for: typing.Optional[str] = None
        self.log: typing.List[LogEntry] = []
        self.commit_index = -1  # highest committed log index
        self.leader_id: typing.Optional[str] = None
        self._votes: typing.Set[str] = set()
        self._next_index: typing.Dict[str, int] = {}
        self._match_index: typing.Dict[str, int] = {}
        #: Handle of the pending election timer. Raft resets this on
        #: every AppendEntries, so cancellation (not generation
        #: checking) is what keeps the queue free of dead timers.
        self._election_timer: typing.Optional["TimerHandle"] = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Arm the first election timer."""
        self._reset_election_timer()

    def stop(self) -> None:
        """Crash this replica: ignore all traffic and timers."""
        self._stopped = True

    def recover(self) -> None:
        """Restart after a crash (volatile state reset, log retained)."""
        self._stopped = False
        self.role = FOLLOWER
        self.leader_id = None
        self._reset_election_timer()

    @property
    def is_leader(self) -> bool:
        """Whether this replica currently leads."""
        return self.role == LEADER and not self._stopped

    # ------------------------------------------------------------------
    # Client-facing

    def submit_proposal(self, proposal: object) -> None:
        """Append a proposal to the log (leader only; others drop).

        The hosting node is expected to route submissions to the leader;
        a non-leader silently ignores, as a real orderer relays instead.
        """
        if not self.is_leader:
            return
        self.log.append(LogEntry(self.current_term, proposal, self.replica_id))
        tracer = self.context.tracer
        if tracer.enabled:
            # Append -> majority-commit span, closed in _commit_through.
            tracer.begin(
                ("raft", self.replica_id, len(self.log) - 1),
                "raft.replicate", category="consensus", node=self.replica_id,
                index=len(self.log) - 1, term=self.current_term,
            )
        # The leader counts itself toward the replication majority.
        self._match_index[self.replica_id] = len(self.log) - 1
        self._replicate_all()

    # ------------------------------------------------------------------
    # Timers

    def _reset_election_timer(self) -> None:
        timer = self._election_timer
        if timer is not None:
            timer.cancel()
        low, high = self.election_timeout
        delay = self.context.rng.uniform(low, high)
        self._election_timer = self.context.after_cancellable(
            delay, self._on_election_timeout
        )

    def _on_election_timeout(self) -> None:
        if self._stopped or self.role == LEADER:
            return
        self._start_election()

    def _start_election(self) -> None:
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.event(
                "raft.election_started", category="consensus",
                node=self.replica_id, term=self.current_term + 1,
            )
        self.role = CANDIDATE
        self.current_term += 1
        self.voted_for = self.replica_id
        self._votes = {self.replica_id}
        self.leader_id = None
        last_index = len(self.log) - 1
        last_term = self.log[last_index].term if last_index >= 0 else 0
        self.context.broadcast(
            "raft/request_vote",
            {"term": self.current_term, "last_index": last_index, "last_term": last_term},
        )
        self._reset_election_timer()
        self._maybe_win()  # single-replica cluster wins instantly

    def _heartbeat_loop(self) -> None:
        if self._stopped or self.role != LEADER:
            return
        self._replicate_all()
        self.context.after(self.heartbeat_interval, self._heartbeat_loop)

    # ------------------------------------------------------------------
    # Message handling

    def on_message(self, kind: str, sender: str, payload: object) -> None:
        if self._stopped:
            return
        message = typing.cast(dict, payload)
        term = message.get("term", 0)
        if term > self.current_term:
            self._step_down(term)
        if kind == "raft/request_vote":
            self._on_request_vote(sender, message)
        elif kind == "raft/vote":
            self._on_vote(sender, message)
        elif kind == "raft/append":
            self._on_append(sender, message)
        elif kind == "raft/append_reply":
            self._on_append_reply(sender, message)

    def _step_down(self, term: int) -> None:
        self.current_term = term
        self.role = FOLLOWER
        self.voted_for = None
        self._votes = set()
        self._reset_election_timer()

    def _on_request_vote(self, sender: str, message: dict) -> None:
        grant = False
        if message["term"] >= self.current_term and self.voted_for in (None, sender):
            my_last_index = len(self.log) - 1
            my_last_term = self.log[my_last_index].term if my_last_index >= 0 else 0
            up_to_date = (message["last_term"], message["last_index"]) >= (my_last_term, my_last_index)
            if up_to_date:
                grant = True
                self.voted_for = sender
                self._reset_election_timer()
        self.context.send(sender, "raft/vote", {"term": self.current_term, "granted": grant})

    def _on_vote(self, sender: str, message: dict) -> None:
        if self.role != CANDIDATE or message["term"] != self.current_term:
            return
        if message["granted"]:
            self._votes.add(sender)
            self._maybe_win()

    def _maybe_win(self) -> None:
        if self.role != CANDIDATE:
            return
        if len(self._votes) >= quorum_size(self.context.n, "crash"):
            self.role = LEADER
            self.leader_id = self.replica_id
            tracer = self.context.tracer
            if tracer.enabled:
                tracer.event(
                    "raft.leader_elected", category="consensus",
                    node=self.replica_id, term=self.current_term,
                )
            next_index = len(self.log)
            self._next_index = {peer: next_index for peer in self.context.peers}
            self._match_index = {peer: -1 for peer in self.context.peers}
            self._match_index[self.replica_id] = len(self.log) - 1
            self._heartbeat_loop()

    def _replicate_all(self) -> None:
        for peer in self.context.peers:
            if peer != self.replica_id:
                self._replicate_to(peer)
        self._advance_commit()

    def _replicate_to(self, peer: str) -> None:
        next_index = self._next_index.get(peer, len(self.log))
        prev_index = next_index - 1
        prev_term = self.log[prev_index].term if prev_index >= 0 else 0
        entries = self.log[next_index:]
        size = 128 + sum(getattr(e.proposal, "size_bytes", 256) for e in entries)
        self.context.send(
            peer,
            "raft/append",
            {
                "term": self.current_term,
                "prev_index": prev_index,
                "prev_term": prev_term,
                "entries": entries,
                "leader_commit": self.commit_index,
            },
            size_bytes=size,
        )

    def _on_append(self, sender: str, message: dict) -> None:
        if message["term"] < self.current_term:
            self.context.send(
                sender,
                "raft/append_reply",
                {"term": self.current_term, "success": False, "match_index": -1},
            )
            return
        # Valid leader for this term.
        self.role = FOLLOWER
        self.leader_id = sender
        self._reset_election_timer()
        prev_index = message["prev_index"]
        prev_term = message["prev_term"]
        consistent = prev_index == -1 or (
            prev_index < len(self.log) and self.log[prev_index].term == prev_term
        )
        if not consistent:
            self.context.send(
                sender,
                "raft/append_reply",
                {"term": self.current_term, "success": False, "match_index": -1},
            )
            return
        entries: typing.List[LogEntry] = message["entries"]
        insert_at = prev_index + 1
        for offset, entry in enumerate(entries):
            index = insert_at + offset
            if index < len(self.log):
                if self.log[index].term != entry.term:
                    del self.log[index:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
        match_index = prev_index + len(entries)
        leader_commit = message["leader_commit"]
        if leader_commit > self.commit_index:
            self._commit_through(min(leader_commit, len(self.log) - 1))
        self.context.send(
            sender,
            "raft/append_reply",
            {"term": self.current_term, "success": True, "match_index": match_index},
        )

    def _on_append_reply(self, sender: str, message: dict) -> None:
        if self.role != LEADER or message["term"] != self.current_term:
            return
        if message["success"]:
            match = message["match_index"]
            self._match_index[sender] = max(self._match_index.get(sender, -1), match)
            self._next_index[sender] = self._match_index[sender] + 1
            self._advance_commit()
        else:
            self._next_index[sender] = max(0, self._next_index.get(sender, 1) - 1)
            self._replicate_to(sender)

    def _advance_commit(self) -> None:
        if self.role != LEADER:
            return
        majority = quorum_size(self.context.n, "crash")
        for index in range(len(self.log) - 1, self.commit_index, -1):
            if self.log[index].term != self.current_term:
                break  # Raft only commits current-term entries by counting
            replicated = sum(1 for match in self._match_index.values() if match >= index)
            if replicated >= majority:
                self._commit_through(index)
                break

    def _commit_through(self, index: int) -> None:
        tracer = self.context.tracer
        checker = self.context.checker
        while self.commit_index < index:
            self.commit_index += 1
            entry = self.log[self.commit_index]
            if tracer.enabled:
                # Only the appending leader opened this key; on followers
                # (and post-failover leaders) this is a no-op.
                tracer.end(("raft", self.replica_id, self.commit_index))
            evidence = None
            if checker.enabled:
                if self.role == LEADER:
                    # The replication count that justified the advance
                    # (matches >= this index; monotone in the index).
                    votes = sum(
                        1 for match in self._match_index.values()
                        if match >= self.commit_index
                    )
                    evidence = {"kind": "crash-votes", "votes": votes}
                else:
                    # Followers commit on the leader's say-so, which the
                    # leader only sends after its own quorum-backed commit.
                    evidence = {"kind": "follow"}
            self._record_decision(
                Decision(
                    sequence=self.commit_index,
                    proposal=entry.proposal,
                    proposer=entry.proposer,
                    decided_at=self.context.now,
                ),
                evidence,
            )
