"""Link latency models.

The evaluation uses two settings: the data-centre baseline (all servers in
one Helsinki facility — sub-millisecond latency) and the netem emulation of
a European wide-area deployment (normal distribution with mu = 12 ms,
derived from WonderNetwork pings). Both are expressed as `LatencyModel`
subclasses sampled per message.
"""

from __future__ import annotations

import abc
import random
import typing


class LatencyModel(abc.ABC):
    """Samples a one-way propagation delay in seconds per message."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Return a non-negative delay in seconds."""

    def fixed_delay(self) -> typing.Optional[float]:
        """The constant delay of a jitter-free model, else ``None``.

        The network precomputes per-route delays for jitter-free models
        so the per-message hot path skips the ``sample()`` call (which
        never consults the RNG for such models anyway — skipping it
        cannot shift any random stream).
        """
        return None

    def describe(self) -> str:
        """Human-readable summary used in reports."""
        return self.__class__.__name__


class ConstantLatency(LatencyModel):
    """A fixed delay — the deterministic baseline for unit tests."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative latency: {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def fixed_delay(self) -> typing.Optional[float]:
        return self.delay

    def describe(self) -> str:
        return f"constant({self.delay * 1000:.3f} ms)"


class LoopbackLatency(ConstantLatency):
    """Delay between endpoints on the same host (Docker bridge hop)."""

    def __init__(self, delay: float = 0.00005) -> None:
        super().__init__(delay)

    def describe(self) -> str:
        return f"loopback({self.delay * 1e6:.0f} us)"


class UniformLatency(LatencyModel):
    """Uniformly distributed delay in ``[low, high]`` seconds."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid uniform latency bounds [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform({self.low * 1000:.2f}..{self.high * 1000:.2f} ms)"


class NetemLatency(LatencyModel):
    """The paper's netem emulation: normally distributed delay.

    Section 5.8.1 uses ``netem`` with a normal distribution, mu = 12 ms
    and jitter 2 ms (the paper writes sigma^2 = 2 ms; netem's second
    parameter is the jitter/stddev, which is what we use). Samples are
    truncated at zero as netem does.
    """

    def __init__(self, mean: float = 0.012, jitter: float = 0.002) -> None:
        if mean < 0 or jitter < 0:
            raise ValueError(f"invalid netem parameters mean={mean} jitter={jitter}")
        self.mean = mean
        self.jitter = jitter

    def sample(self, rng: random.Random) -> float:
        return max(0.0, rng.gauss(self.mean, self.jitter))

    def describe(self) -> str:
        return f"netem(mu={self.mean * 1000:.1f} ms, jitter={self.jitter * 1000:.1f} ms)"


#: Latency inside the provider's data centre (same-rack 1 Gbit/s uplink).
DATACENTER_LATENCY = ConstantLatency(0.0004)

#: The paper's emulated European WAN latency.
EUROPEAN_WAN_LATENCY = NetemLatency(mean=0.012, jitter=0.002)
