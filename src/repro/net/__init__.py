"""Simulated network substrate.

Hosts (:mod:`repro.net.host`) model physical servers; endpoints (blockchain
nodes, clients) attach to hosts and exchange messages through a
:class:`~repro.net.network.Network`, which routes each message over the
:class:`~repro.net.link.Link` between the two hosts. Link delay is sampled
from a :mod:`latency model <repro.net.latency>` — including the paper's
netem emulation (normal distribution, mu = 12 ms) — plus a serialisation
term proportional to message size. :mod:`repro.net.partition` injects
partitions and message loss for failure testing.
"""

from repro.net.host import Host
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LoopbackLatency,
    NetemLatency,
    UniformLatency,
)
from repro.net.link import Link
from repro.net.network import Endpoint, Message, Network
from repro.net.partition import PartitionController

__all__ = [
    "ConstantLatency",
    "Endpoint",
    "Host",
    "LatencyModel",
    "Link",
    "LoopbackLatency",
    "Message",
    "NetemLatency",
    "Network",
    "PartitionController",
    "UniformLatency",
]
