"""Fault injection: partitions and probabilistic message loss.

The test suite uses this controller to verify that the consensus engines
tolerate (or correctly stall under) partitions and loss — e.g. that Raft
loses liveness without a majority and recovers when the partition heals —
and the :mod:`repro.faults` subsystem drives it from scheduled
:class:`~repro.faults.plan.FaultPlan` actions (``partition``, ``isolate``,
``loss_burst``). Loss comes in two granularities: ``drop_probability``
applies network-wide, per-pair rates (:meth:`set_loss`) affect only one
bidirectional path. The RNG is only consulted when a rate is actually
configured, so impairment-free runs draw nothing from the network stream.
"""

from __future__ import annotations

import random
import typing


class PartitionController:
    """Decides, per message, whether delivery is allowed."""

    def __init__(self) -> None:
        self._blocked_pairs: typing.Set[typing.Tuple[str, str]] = set()
        self._isolated: typing.Set[str] = set()
        self._pair_loss: typing.Dict[typing.Tuple[str, str], float] = {}
        self.drop_probability = 0.0

    def isolate(self, endpoint_id: str) -> None:
        """Cut the endpoint off from everyone."""
        self._isolated.add(endpoint_id)

    def heal_endpoint(self, endpoint_id: str) -> None:
        """Reconnect a previously isolated endpoint."""
        self._isolated.discard(endpoint_id)

    def block(self, a: str, b: str) -> None:
        """Cut the (bidirectional) path between two endpoints."""
        self._blocked_pairs.add((a, b))
        self._blocked_pairs.add((b, a))

    def unblock(self, a: str, b: str) -> None:
        """Restore the path between two endpoints."""
        self._blocked_pairs.discard((a, b))
        self._blocked_pairs.discard((b, a))

    def partition(self, group_a: typing.Iterable[str], group_b: typing.Iterable[str]) -> None:
        """Split the network into two groups that cannot reach each other."""
        for a in group_a:
            for b in group_b:
                self.block(a, b)

    def heal_all(self) -> None:
        """Remove every partition and isolation (loss probabilities stay)."""
        self._blocked_pairs.clear()
        self._isolated.clear()

    def set_loss(self, a: str, b: str, probability: float) -> None:
        """Impair the (bidirectional) path between two endpoints.

        Each message on the path is independently dropped with
        ``probability``, on top of any network-global ``drop_probability``.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        if probability == 0.0:
            self.clear_loss(a, b)
            return
        self._pair_loss[(a, b)] = probability
        self._pair_loss[(b, a)] = probability

    def clear_loss(self, a: str, b: str) -> None:
        """Remove the per-pair loss rate between two endpoints."""
        self._pair_loss.pop((a, b), None)
        self._pair_loss.pop((b, a), None)

    def clear_all_loss(self) -> None:
        """Remove every per-pair loss rate (``drop_probability`` stays)."""
        self._pair_loss.clear()

    def loss_between(self, a: str, b: str) -> float:
        """The per-pair loss rate currently configured for a path."""
        return self._pair_loss.get((a, b), 0.0)

    def allows(self, src: str, dst: str, rng: random.Random) -> bool:
        """Whether a message from ``src`` to ``dst`` may be delivered now."""
        # Fast path for the overwhelmingly common unimpaired network: no
        # RNG is consulted (matching the per-check guards below), so the
        # early return cannot shift any random stream.
        if not (self._isolated or self._blocked_pairs or self._pair_loss
                or self.drop_probability):
            return True
        if src in self._isolated or dst in self._isolated:
            return False
        if (src, dst) in self._blocked_pairs:
            return False
        pair_loss = self._pair_loss.get((src, dst)) if self._pair_loss else None
        if pair_loss is not None and rng.random() < pair_loss:
            return False
        if self.drop_probability > 0 and rng.random() < self.drop_probability:
            return False
        return True
