"""Fault injection: partitions and probabilistic message loss.

The benchmark runs themselves do not partition the network, but the test
suite uses this controller to verify that the consensus engines tolerate
(or correctly stall under) partitions and loss — e.g. that Raft loses
liveness without a majority and recovers when the partition heals.
"""

from __future__ import annotations

import random
import typing


class PartitionController:
    """Decides, per message, whether delivery is allowed."""

    def __init__(self) -> None:
        self._blocked_pairs: typing.Set[typing.Tuple[str, str]] = set()
        self._isolated: typing.Set[str] = set()
        self.drop_probability = 0.0

    def isolate(self, endpoint_id: str) -> None:
        """Cut the endpoint off from everyone."""
        self._isolated.add(endpoint_id)

    def heal_endpoint(self, endpoint_id: str) -> None:
        """Reconnect a previously isolated endpoint."""
        self._isolated.discard(endpoint_id)

    def block(self, a: str, b: str) -> None:
        """Cut the (bidirectional) path between two endpoints."""
        self._blocked_pairs.add((a, b))
        self._blocked_pairs.add((b, a))

    def unblock(self, a: str, b: str) -> None:
        """Restore the path between two endpoints."""
        self._blocked_pairs.discard((a, b))
        self._blocked_pairs.discard((b, a))

    def partition(self, group_a: typing.Iterable[str], group_b: typing.Iterable[str]) -> None:
        """Split the network into two groups that cannot reach each other."""
        for a in group_a:
            for b in group_b:
                self.block(a, b)

    def heal_all(self) -> None:
        """Remove every partition and isolation (loss probability stays)."""
        self._blocked_pairs.clear()
        self._isolated.clear()

    def allows(self, src: str, dst: str, rng: random.Random) -> bool:
        """Whether a message from ``src`` to ``dst`` may be delivered now."""
        if src in self._isolated or dst in self._isolated:
            return False
        if (src, dst) in self._blocked_pairs:
            return False
        if self.drop_probability > 0 and rng.random() < self.drop_probability:
            return False
        return True
