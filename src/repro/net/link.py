"""Point-to-point links between hosts."""

from __future__ import annotations

import random

from repro.net.host import Host
from repro.net.latency import LatencyModel, LoopbackLatency


class Link:
    """The path between two hosts: propagation latency plus serialisation.

    Endpoints on the same host communicate over a loopback link, which is
    how the paper's Docker deployment behaves (several containers share a
    server).
    """

    def __init__(self, src: Host, dst: Host, latency_model: LatencyModel) -> None:
        self.src = src
        self.dst = dst
        if src is dst:
            self.latency_model: LatencyModel = LoopbackLatency()
        else:
            self.latency_model = latency_model

    @property
    def is_loopback(self) -> bool:
        """Whether both ends are the same host."""
        return self.src is self.dst

    def delay(self, size_bytes: int, rng: random.Random) -> float:
        """Total one-way delay for a message of ``size_bytes``."""
        propagation = self.latency_model.sample(rng)
        serialization = self.src.serialization_delay(size_bytes)
        return propagation + serialization

    def __repr__(self) -> str:
        return f"Link({self.src.name!r} -> {self.dst.name!r}, {self.latency_model.describe()})"
