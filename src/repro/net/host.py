"""Simulated physical servers.

The paper's testbed is six (ten, for scalability) identical servers:
AMD Ryzen 7 3700X, 64 GB RAM, 1 Gbit/s uplink. A :class:`Host` carries the
placement of endpoints (at most four blockchain nodes per server in the
scalability runs) and the uplink bandwidth used for serialisation delay.
"""

from __future__ import annotations

import typing


class Host:
    """A server that endpoints are placed on."""

    #: 1 Gbit/s uplink, in bytes per second.
    DEFAULT_BANDWIDTH_BPS = 1_000_000_000 / 8

    def __init__(self, name: str, bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.endpoints: typing.List[str] = []
        #: Whole-server availability. A down host takes every endpoint
        #: placed on it off the network: sends from and deliveries to them
        #: (including messages already in flight) are dropped.
        self.is_up = True

    def fail(self) -> None:
        """Take the server down (all endpoints on it become unreachable)."""
        self.is_up = False

    def restore(self) -> None:
        """Bring the server back up."""
        self.is_up = True

    def attach(self, endpoint_id: str) -> None:
        """Record that ``endpoint_id`` runs on this host."""
        if endpoint_id in self.endpoints:
            raise ValueError(f"endpoint {endpoint_id!r} already attached to {self.name!r}")
        self.endpoints.append(endpoint_id)

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to push ``size_bytes`` onto the uplink."""
        return size_bytes / self.bandwidth_bps

    def __repr__(self) -> str:
        return f"Host({self.name!r}, endpoints={len(self.endpoints)})"


def round_robin_placement(hosts: typing.Sequence[Host], endpoint_ids: typing.Sequence[str]) -> dict:
    """Assign endpoints to hosts round-robin, as in Section 5.8.2.

    Returns a mapping of endpoint id to host. The paper distributes 8/16/32
    nodes over eight servers with at most four nodes per server; callers
    pass enough hosts to satisfy that bound and we enforce it.
    """
    if not hosts:
        raise ValueError("round_robin_placement requires at least one host")
    placement = {}
    for index, endpoint_id in enumerate(endpoint_ids):
        host = hosts[index % len(hosts)]
        placement[endpoint_id] = host
    per_host = {host.name: 0 for host in hosts}
    for host in placement.values():
        per_host[host.name] += 1
    return placement
