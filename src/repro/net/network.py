"""Message routing between endpoints.

A :class:`Network` owns the endpoint registry, builds links lazily from a
default latency model and delivers :class:`Message` objects by scheduling
``endpoint.on_message(msg)`` after the sampled link delay. Delivery order
between two endpoints is FIFO (TCP-like): a message never overtakes an
earlier message on the same directed pair, even when the jittered latency
samples would reorder them.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.host import Host
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.link import Link
from repro.net.partition import PartitionController

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class Message:
    """An envelope routed by the network."""

    src: str
    dst: str
    kind: str
    payload: object = None
    size_bytes: int = 256

    def __repr__(self) -> str:
        return f"Message({self.kind} {self.src}->{self.dst})"


class Endpoint:
    """Anything addressable on the network (node, client, orderer...)."""

    def __init__(self, endpoint_id: str) -> None:
        self.endpoint_id = endpoint_id
        self.network: typing.Optional["Network"] = None
        self.host: typing.Optional[Host] = None

    def on_message(self, message: Message) -> None:
        """Handle a delivered message. Subclasses override."""
        raise NotImplementedError(f"{type(self).__name__} does not handle messages")

    def send(self, dst: str, kind: str, payload: object = None, size_bytes: int = 256) -> None:
        """Send a message through the attached network."""
        if self.network is None:
            raise RuntimeError(f"endpoint {self.endpoint_id!r} is not attached to a network")
        self.network.send(Message(self.endpoint_id, dst, kind, payload, size_bytes))


class Network:
    """The routing fabric connecting all endpoints of one deployment."""

    def __init__(
        self,
        sim: "Simulator",
        default_latency: typing.Optional[LatencyModel] = None,
        name: str = "net",
    ) -> None:
        self.sim = sim
        self.name = name
        self.default_latency = default_latency or ConstantLatency(0.0004)
        self.partitions = PartitionController()
        self._endpoints: typing.Dict[str, Endpoint] = {}
        self._links: typing.Dict[typing.Tuple[str, str], Link] = {}
        self._fifo_clock: typing.Dict[typing.Tuple[str, str], float] = {}
        self._rng = sim.rng.stream(f"network:{name}")
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Endpoints taken down by a crash fault. A down endpoint neither
        #: sends nor receives; messages already in flight toward it are
        #: dropped at delivery time, like a TCP connection reset.
        self._down_endpoints: typing.Set[str] = set()
        #: Flat latency surcharge (seconds) applied to every delivery while
        #: a ``latency_surge`` fault is active. 0.0 means untouched delays.
        self.extra_latency = 0.0

    def attach(self, endpoint: Endpoint, host: Host) -> None:
        """Register an endpoint as running on ``host``."""
        if endpoint.endpoint_id in self._endpoints:
            raise ValueError(f"duplicate endpoint id {endpoint.endpoint_id!r}")
        endpoint.network = self
        endpoint.host = host
        host.attach(endpoint.endpoint_id)
        self._endpoints[endpoint.endpoint_id] = endpoint

    def endpoint(self, endpoint_id: str) -> Endpoint:
        """Look up an endpoint by id."""
        return self._endpoints[endpoint_id]

    def endpoint_ids(self) -> typing.List[str]:
        """All registered endpoint ids, in attach order."""
        return list(self._endpoints)

    def link_between(self, src: str, dst: str) -> Link:
        """Return (creating if needed) the link between two endpoints' hosts."""
        key = (src, dst)
        if key not in self._links:
            src_host = self._endpoints[src].host
            dst_host = self._endpoints[dst].host
            assert src_host is not None and dst_host is not None
            self._links[key] = Link(src_host, dst_host, self.default_latency)
        return self._links[key]

    def set_endpoint_down(self, endpoint_id: str) -> None:
        """Mark an endpoint as crashed (no sends, deliveries dropped)."""
        if endpoint_id not in self._endpoints:
            raise KeyError(f"unknown endpoint {endpoint_id!r}")
        self._down_endpoints.add(endpoint_id)

    def set_endpoint_up(self, endpoint_id: str) -> None:
        """Bring a crashed endpoint back."""
        self._down_endpoints.discard(endpoint_id)

    def endpoint_is_up(self, endpoint_id: str) -> bool:
        """Whether an endpoint (and the host carrying it) is reachable."""
        if endpoint_id in self._down_endpoints:
            return False
        host = self._endpoints[endpoint_id].host
        return host is None or host.is_up

    def _drop(self, message: Message) -> None:
        """Account for one dropped message."""
        self.messages_dropped += 1
        tracer = self.sim.tracer
        if tracer.enabled and tracer.wants("net"):
            tracer.event(
                "net.drop", category="net", node=message.src,
                dst=message.dst, kind=message.kind, size=message.size_bytes,
            )
            tracer.metrics.counter("net.dropped", system=self.name).inc()

    def send(self, message: Message) -> None:
        """Route ``message``, scheduling delivery after the link delay."""
        if message.dst not in self._endpoints:
            raise KeyError(f"unknown destination {message.dst!r}")
        self.messages_sent += 1
        tracer = self.sim.tracer
        if not (self.endpoint_is_up(message.src) and self.endpoint_is_up(message.dst)):
            self._drop(message)
            return
        if not self.partitions.allows(message.src, message.dst, self._rng):
            self._drop(message)
            return
        link = self.link_between(message.src, message.dst)
        delay = link.delay(message.size_bytes, self._rng)
        if self.extra_latency:
            delay += self.extra_latency
        # FIFO per directed pair: clamp the arrival to be no earlier than
        # the previous message on the same pair.
        pair = (message.src, message.dst)
        arrival = self.sim.now + delay
        arrival = max(arrival, self._fifo_clock.get(pair, 0.0))
        self._fifo_clock[pair] = arrival
        if tracer.enabled and tracer.wants("net"):
            latency = arrival - self.sim.now
            tracer.event(
                "net.send", category="net", node=message.src,
                dst=message.dst, kind=message.kind, size=message.size_bytes,
            )
            # The delivery instant is already decided, so the matching
            # deliver event can be recorded now with its future timestamp.
            tracer.event(
                "net.deliver", category="net", node=message.dst, at=arrival,
                src=message.src, kind=message.kind, latency=round(latency, 9),
            )
            tracer.metrics.counter("net.sent", system=self.name).inc()
            tracer.metrics.counter("net.bytes", system=self.name).inc(message.size_bytes)
            tracer.metrics.histogram("net.latency", system=self.name).record(latency)
        endpoint = self._endpoints[message.dst]
        self.sim.schedule(arrival - self.sim.now, lambda: self._deliver(endpoint, message))

    def _deliver(self, endpoint: Endpoint, message: Message) -> None:
        """Hand a message to its destination — unless it crashed meanwhile.

        The up-check re-runs at delivery time so that a crash drops
        messages already in flight toward the endpoint.
        """
        if not self.endpoint_is_up(message.dst):
            self._drop(message)
            return
        endpoint.on_message(message)

    def broadcast(
        self,
        src: str,
        dsts: typing.Iterable[str],
        kind: str,
        payload: object = None,
        size_bytes: int = 256,
    ) -> int:
        """Send the same message to every destination except ``src``.

        Returns the number of messages sent.
        """
        count = 0
        for dst in dsts:
            if dst == src:
                continue
            self.send(Message(src, dst, kind, payload, size_bytes))
            count += 1
        return count
