"""Message routing between endpoints.

A :class:`Network` owns the endpoint registry, builds links lazily from a
default latency model and delivers :class:`Message` objects by scheduling
``endpoint.on_message(msg)`` after the sampled link delay. Delivery order
between two endpoints is FIFO (TCP-like): a message never overtakes an
earlier message on the same directed pair, even when the jittered latency
samples would reorder them.
"""

from __future__ import annotations

import typing

from repro.net.host import Host
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.link import Link
from repro.net.partition import PartitionController

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Message:
    """An envelope routed by the network.

    A ``__slots__`` class rather than a frozen dataclass: construction is
    one hot path of every send, and frozen dataclasses pay an
    ``object.__setattr__`` call per field. The public surface — field
    names, defaults, equality, hashing and repr — matches the previous
    frozen-dataclass definition exactly. Treat instances as immutable;
    the network itself is the only writer (it stamps ``dst`` on the
    shared wire record of a broadcast fan-out before each delivery).
    """

    __slots__ = ("src", "dst", "kind", "payload", "size_bytes")

    def __init__(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object = None,
        size_bytes: int = 256,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.size_bytes = size_bytes

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Message:
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.kind == other.kind
            and self.payload == other.payload
            and self.size_bytes == other.size_bytes
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, self.kind, self.payload, self.size_bytes))

    def __repr__(self) -> str:
        return f"Message({self.kind} {self.src}->{self.dst})"


class Endpoint:
    """Anything addressable on the network (node, client, orderer...)."""

    def __init__(self, endpoint_id: str) -> None:
        self.endpoint_id = endpoint_id
        self.network: typing.Optional["Network"] = None
        self.host: typing.Optional[Host] = None

    def on_message(self, message: Message) -> None:
        """Handle a delivered message. Subclasses override."""
        raise NotImplementedError(f"{type(self).__name__} does not handle messages")

    def send(self, dst: str, kind: str, payload: object = None, size_bytes: int = 256) -> None:
        """Send a message through the attached network."""
        if self.network is None:
            raise RuntimeError(f"endpoint {self.endpoint_id!r} is not attached to a network")
        self.network.send(Message(self.endpoint_id, dst, kind, payload, size_bytes))


class _Route:
    """Per-directed-pair routing state, built lazily on first send.

    One dict lookup recovers everything ``send`` needs — destination
    endpoint, link, both hosts, the FIFO clock (an attribute here, not
    a per-message dict get/set with a fresh tuple key) and the
    precomputed delay of jitter-free latency models.
    """

    __slots__ = ("endpoint", "link", "src_host", "dst_host", "fifo_clock", "const_delay")

    def __init__(self, endpoint: Endpoint, link: Link) -> None:
        self.endpoint = endpoint
        self.link = link
        self.src_host = link.src
        self.dst_host = link.dst
        self.fifo_clock = 0.0
        self.const_delay = link.latency_model.fixed_delay()


class Network:
    """The routing fabric connecting all endpoints of one deployment."""

    def __init__(
        self,
        sim: "Simulator",
        default_latency: typing.Optional[LatencyModel] = None,
        name: str = "net",
    ) -> None:
        self.sim = sim
        self.name = name
        self.default_latency = default_latency or ConstantLatency(0.0004)
        self.partitions = PartitionController()
        self._endpoints: typing.Dict[str, Endpoint] = {}
        self._links: typing.Dict[typing.Tuple[str, str], Link] = {}
        self._routes: typing.Dict[typing.Tuple[str, str], _Route] = {}
        #: The same _Route records as ``_routes``, re-indexed as
        #: ``src -> dst -> route`` so the broadcast fan-out resolves its
        #: whole target set with one outer lookup and no per-destination
        #: tuple-key allocation. Both tables share record objects — the
        #: FIFO clock must be one clock per directed pair no matter
        #: which path sent the message.
        self._routes_from: typing.Dict[str, typing.Dict[str, _Route]] = {}
        #: Bound once so the per-message schedule() call does not
        #: allocate a fresh bound method (let alone a closure).
        self._deliver_cb = self._deliver
        self._deliver_shared_cb = self._deliver_shared
        self._rng = sim.rng.stream(f"network:{name}")
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Endpoints taken down by a crash fault. A down endpoint neither
        #: sends nor receives; messages already in flight toward it are
        #: dropped at delivery time, like a TCP connection reset.
        self._down_endpoints: typing.Set[str] = set()
        #: Flat latency surcharge (seconds) applied to every delivery while
        #: a ``latency_surge`` fault is active. 0.0 means untouched delays.
        self.extra_latency = 0.0

    def attach(self, endpoint: Endpoint, host: Host) -> None:
        """Register an endpoint as running on ``host``."""
        if endpoint.endpoint_id in self._endpoints:
            raise ValueError(f"duplicate endpoint id {endpoint.endpoint_id!r}")
        endpoint.network = self
        endpoint.host = host
        host.attach(endpoint.endpoint_id)
        self._endpoints[endpoint.endpoint_id] = endpoint

    def endpoint(self, endpoint_id: str) -> Endpoint:
        """Look up an endpoint by id."""
        return self._endpoints[endpoint_id]

    def endpoint_ids(self) -> typing.List[str]:
        """All registered endpoint ids, in attach order."""
        return list(self._endpoints)

    def link_between(self, src: str, dst: str) -> Link:
        """Return (creating if needed) the link between two endpoints' hosts."""
        key = (src, dst)
        if key not in self._links:
            src_host = self._endpoints[src].host
            dst_host = self._endpoints[dst].host
            assert src_host is not None and dst_host is not None
            self._links[key] = Link(src_host, dst_host, self.default_latency)
        return self._links[key]

    def set_endpoint_down(self, endpoint_id: str) -> None:
        """Mark an endpoint as crashed (no sends, deliveries dropped)."""
        if endpoint_id not in self._endpoints:
            raise KeyError(f"unknown endpoint {endpoint_id!r}")
        self._down_endpoints.add(endpoint_id)

    def set_endpoint_up(self, endpoint_id: str) -> None:
        """Bring a crashed endpoint back."""
        self._down_endpoints.discard(endpoint_id)

    def endpoint_is_up(self, endpoint_id: str) -> bool:
        """Whether an endpoint (and the host carrying it) is reachable."""
        if endpoint_id in self._down_endpoints:
            return False
        host = self._endpoints[endpoint_id].host
        return host is None or host.is_up

    def _drop(self, message: Message) -> None:
        """Account for one dropped message."""
        self.messages_dropped += 1
        tracer = self.sim.tracer
        if tracer.enabled and tracer.wants("net"):
            tracer.event(
                "net.drop", category="net", node=message.src,
                dst=message.dst, kind=message.kind, size=message.size_bytes,
            )
            tracer.metrics.counter("net.dropped", system=self.name).inc()

    def _route_for(self, src: str, dst: str) -> _Route:
        """Build (and cache) the routing record for one directed pair."""
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination {dst!r}")
        route = _Route(self._endpoints[dst], self.link_between(src, dst))
        self._routes[(src, dst)] = route
        self._routes_from.setdefault(src, {})[dst] = route
        return route

    def send(self, message: Message) -> None:
        """Route ``message``, scheduling delivery after the link delay."""
        src = message.src
        dst = message.dst
        route = self._routes.get((src, dst))
        if route is None:
            route = self._route_for(src, dst)
        self.messages_sent += 1
        down = self._down_endpoints
        if (not route.src_host.is_up or not route.dst_host.is_up
                or (down and (src in down or dst in down))):
            self._drop(message)
            return
        if not self.partitions.allows(src, dst, self._rng):
            self._drop(message)
            return
        if route.const_delay is not None:
            # Jitter-free link: the model's sample() never consults the
            # RNG, so inlining propagation + serialisation draws nothing
            # and produces the exact floats link.delay would.
            delay = route.const_delay + message.size_bytes / route.src_host.bandwidth_bps
        else:
            delay = route.link.delay(message.size_bytes, self._rng)
        if self.extra_latency:
            delay += self.extra_latency
        # FIFO per directed pair: clamp the arrival to be no earlier than
        # the previous message on the same pair.
        sim = self.sim
        now = sim.now
        arrival = now + delay
        if arrival < route.fifo_clock:
            arrival = route.fifo_clock
        else:
            route.fifo_clock = arrival
        latency = arrival - now
        tracer = sim.tracer
        if tracer.enabled and tracer.wants("net"):
            tracer.event(
                "net.send", category="net", node=src,
                dst=dst, kind=message.kind, size=message.size_bytes,
            )
            tracer.metrics.counter("net.sent", system=self.name).inc()
            tracer.metrics.counter("net.bytes", system=self.name).inc(message.size_bytes)
        sim.schedule(latency, self._deliver_cb, route.endpoint, message, latency)

    def _deliver(self, endpoint: Endpoint, message: Message, latency: float = 0.0) -> None:
        """Hand a message to its destination — unless it crashed meanwhile.

        The up-check re-runs at delivery time so that a crash drops
        messages already in flight toward the endpoint. Delivery-side
        trace records — the ``net.deliver`` event and the ``net.latency``
        histogram — are emitted here rather than at send time, so a
        message dropped in flight never shows up as delivered and the
        trace agrees with ``messages_dropped``.
        """
        if not self.endpoint_is_up(message.dst):
            self._drop(message)
            return
        tracer = self.sim.tracer
        if tracer.enabled and tracer.wants("net"):
            tracer.event(
                "net.deliver", category="net", node=message.dst,
                src=message.src, kind=message.kind, latency=round(latency, 9),
            )
            tracer.metrics.histogram("net.latency", system=self.name).record(latency)
        endpoint.on_message(message)

    def _deliver_shared(
        self, endpoint: Endpoint, message: Message, dst: str, latency: float
    ) -> None:
        """Deliver one fan-out of a broadcast's shared wire record.

        The record is shared by every destination of the logical
        broadcast, so its ``dst`` field is stamped here — deliveries run
        one at a time on the event loop, and handlers read the message
        synchronously — before the same crash re-check and delivery-side
        trace records as :meth:`_deliver`.
        """
        message.dst = dst
        if not self.endpoint_is_up(dst):
            self._drop(message)
            return
        tracer = self.sim.tracer
        if tracer.enabled and tracer.wants("net"):
            tracer.event(
                "net.deliver", category="net", node=dst,
                src=message.src, kind=message.kind, latency=round(latency, 9),
            )
            tracer.metrics.histogram("net.latency", system=self.name).record(latency)
        endpoint.on_message(message)

    def broadcast(
        self,
        src: str,
        dsts: typing.Iterable[str],
        kind: str,
        payload: object = None,
        size_bytes: int = 256,
    ) -> int:
        """Send the same message to every destination except ``src``.

        All destinations are validated (in the same single pass that
        filters out ``src``) before the first send, so a typo'd peer
        list fails atomically (KeyError, nothing sent) instead of after
        a partial fan-out. Returns the number of messages sent.

        Fast path: one shared wire record is allocated per logical
        broadcast and the per-destination routing — drop checks,
        partition filter, delay, FIFO clamp, trace records — is inlined
        over the cached route table, replicating :meth:`send`'s work
        (same RNG draws, same schedule order) without its per-destination
        ``Message`` construction.
        """
        endpoints = self._endpoints
        targets = []
        unknown = None
        for dst in dsts:
            if dst == src:
                continue
            if dst in endpoints:
                targets.append(dst)
            elif unknown is None:
                unknown = [dst]
            else:
                unknown.append(dst)
        if unknown:
            raise KeyError(
                f"unknown destination(s) {unknown!r} in broadcast from {src!r}"
            )
        if not targets:
            return 0
        message = Message(src, "", kind, payload, size_bytes)
        routes = self._routes_from.get(src)
        if routes is None:
            routes = self._routes_from.setdefault(src, {})
        sim = self.sim
        now = sim.now
        schedule = sim.schedule
        deliver = self._deliver_shared_cb
        tracer = sim.tracer
        traced = tracer.enabled and tracer.wants("net")
        partitions = self.partitions
        rng = self._rng
        down = self._down_endpoints
        src_down = bool(down) and src in down
        extra = self.extra_latency
        self.messages_sent += len(targets)
        live = 0
        for dst in targets:
            route = routes.get(dst)
            if route is None:
                route = self._route_for(src, dst)
            if (not route.src_host.is_up or not route.dst_host.is_up
                    or src_down or (down and dst in down)):
                message.dst = dst
                self._drop(message)
                continue
            if not partitions.allows(src, dst, rng):
                message.dst = dst
                self._drop(message)
                continue
            if route.const_delay is not None:
                delay = route.const_delay + size_bytes / route.src_host.bandwidth_bps
            else:
                delay = route.link.delay(size_bytes, rng)
            if extra:
                delay += extra
            arrival = now + delay
            if arrival < route.fifo_clock:
                arrival = route.fifo_clock
            else:
                route.fifo_clock = arrival
            latency = arrival - now
            if traced:
                tracer.event(
                    "net.send", category="net", node=src,
                    dst=dst, kind=kind, size=size_bytes,
                )
                live += 1
            schedule(latency, deliver, route.endpoint, message, dst, latency)
        if traced and live:
            metrics = tracer.metrics
            metrics.counter("net.sent", system=self.name).inc(live)
            metrics.counter("net.bytes", system=self.name).inc(size_bytes * live)
        return len(targets)
