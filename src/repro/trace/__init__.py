"""End-to-end tracing and instrumentation for the simulator.

The paper explains *why* the seven systems perform differently; this
package makes the reproduction explain itself the same way. A
:class:`Tracer` threads through every layer — kernel dispatch, network
message flow, consensus rounds and phases, block finality, payload
execution and the clients' per-transaction submit→confirm life cycle —
and exports either Chrome trace-event JSON (open it in Perfetto or
``chrome://tracing``) or a flat JSONL event log. Tracing is off by
default: every simulator starts with the shared :data:`NOOP_TRACER`,
and instrumented hot paths cost a single ``tracer.enabled`` check.

Typical use::

    from repro.trace import TraceConfig, Tracer, write_chrome_trace

    tracer = Tracer(TraceConfig.from_spec("net,consensus,client"))
    runner = BenchmarkRunner(tracer=tracer)
    runner.run(config)
    write_chrome_trace(tracer, "trace.json")
"""

from repro.trace.chrome import chrome_trace, write_chrome_trace
from repro.trace.config import CATEGORIES, TraceConfig
from repro.trace.jsonl import jsonl_lines, read_jsonl, write_jsonl
from repro.trace.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.trace.tracer import (
    NOOP_TRACER,
    EventRecord,
    NoopTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "SpanRecord",
    "TraceConfig",
    "Tracer",
    "chrome_trace",
    "jsonl_lines",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
