"""Tracing configuration: category filters and sampling.

A :class:`TraceConfig` decides *what* a :class:`~repro.trace.tracer.Tracer`
records. Categories partition the instrumentation hooks by layer —
``sim`` (kernel dispatch), ``net`` (message events), ``consensus``
(protocol rounds/phases), ``chain`` (block finality), ``iel`` (payload
execution), ``storage`` (block persistence), ``client`` (per-transaction
submit→confirm spans), ``bench`` (phase windows), ``faults``
(injected failure actions) and ``search`` (capacity-search probes, on
the wall clock). Sampling is
deterministic — a hash of the record key, not an RNG draw — so a traced
run stays reproducible and two runs with the same seed sample the same
transactions.
"""

from __future__ import annotations

import dataclasses
import typing
import zlib

#: Every category the built-in hooks emit, in layer order.
CATEGORIES: typing.Tuple[str, ...] = (
    "sim",
    "net",
    "consensus",
    "chain",
    "iel",
    "storage",
    "client",
    "bench",
    "faults",
    "search",
)

#: Resolution of the deterministic sampling hash.
_SAMPLE_BUCKETS = 1_000_000


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """What a tracer records.

    ``categories=None`` records everything; otherwise only the named
    categories. ``sample_rate`` thins high-cardinality per-key spans
    (the client's per-transaction spans); structural spans and metrics
    are never sampled. ``dispatch_spans`` additionally records one span
    per kernel callback dispatch (very hot — off by default).
    ``max_records`` bounds memory; once either the span or the event
    list reaches it, further records are counted as dropped.
    """

    categories: typing.Optional[typing.FrozenSet[str]] = None
    sample_rate: float = 1.0
    dispatch_spans: bool = False
    max_records: int = 2_000_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {self.sample_rate}")
        if self.categories is not None:
            unknown = set(self.categories) - set(CATEGORIES)
            if unknown:
                raise ValueError(
                    f"unknown trace categories {sorted(unknown)}; known: {list(CATEGORIES)}"
                )

    def wants(self, category: str) -> bool:
        """Whether records of ``category`` should be kept."""
        return self.categories is None or category in self.categories

    def sampled(self, key: str) -> bool:
        """Deterministic sampling decision for a per-key record."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        bucket = zlib.crc32(key.encode("utf-8")) % _SAMPLE_BUCKETS
        return bucket < self.sample_rate * _SAMPLE_BUCKETS

    @classmethod
    def from_spec(
        cls,
        categories: typing.Optional[str] = None,
        sample_rate: float = 1.0,
        dispatch_spans: bool = False,
    ) -> "TraceConfig":
        """Build a config from CLI-style inputs (``"net,consensus"``)."""
        parsed: typing.Optional[typing.FrozenSet[str]] = None
        if categories:
            parsed = frozenset(part.strip() for part in categories.split(",") if part.strip())
        return cls(categories=parsed, sample_rate=sample_rate, dispatch_spans=dispatch_spans)
