"""Chrome trace-event export.

Produces the JSON object format consumed by Perfetto and
``chrome://tracing``: simulated seconds map to trace microseconds, every
node (endpoint) maps to its own thread row (``tid``) and spans/events
become complete (``"X"``) and instant (``"i"``) trace events. Thread
rows are labelled with metadata events so the UI shows node ids instead
of bare numbers.

Format reference:
https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import typing

from repro.trace.tracer import Tracer

#: Simulated seconds -> trace microseconds.
_US_PER_SECOND = 1e6

#: The single synthetic process all rows live under.
_PID = 1


def _thread_ids(tracer: Tracer) -> typing.Dict[str, int]:
    """Assign one tid per node, in first-appearance order; tid 0 is the
    row for records with no node."""
    tids: typing.Dict[str, int] = {"": 0}
    for record in tracer.spans:
        tids.setdefault(record.node, len(tids))
    for record in tracer.events:
        tids.setdefault(record.node, len(tids))
    return tids


def chrome_trace(tracer: Tracer, process_name: str = "coconut-sim") -> dict:
    """Build the Chrome trace-event JSON object for a tracer's records."""
    tids = _thread_ids(tracer)
    trace_events: typing.List[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for node, tid in tids.items():
        trace_events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": node or "(global)"},
            }
        )
    for span in tracer.spans:
        trace_events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tids[span.node],
                "name": span.name,
                "cat": span.category,
                "ts": span.start * _US_PER_SECOND,
                "dur": max(0.0, span.duration) * _US_PER_SECOND,
                "args": span.attrs,
            }
        )
    for event in tracer.events:
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": _PID,
                "tid": tids[event.node],
                "name": event.name,
                "cat": event.category,
                "ts": event.time * _US_PER_SECOND,
                "args": event.attrs,
            }
        )
    # Stable time order makes the output diffable and stream-friendly.
    trace_events.sort(key=lambda e: (e.get("ts", -1.0), e["tid"]))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: typing.Union[str, "typing.Any"],
                       process_name: str = "coconut-sim") -> None:
    """Serialise :func:`chrome_trace` to ``path``."""
    payload = chrome_trace(tracer, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, default=str)
