"""Span-based tracing over simulated time.

A :class:`Tracer` collects three record kinds:

* **Spans** — named intervals of simulated time with attributes, either
  lexically scoped (:meth:`Tracer.span`, a context manager) or opened and
  closed across scheduled callbacks (:meth:`Tracer.begin` /
  :meth:`Tracer.end`, keyed by an arbitrary hashable — the natural shape
  for a DES, where a consensus round or a transaction's life is not a
  lexical scope).
* **Events** — instants with attributes (message sent, block appended).
* **Metrics** — counters/gauges/histograms via :attr:`Tracer.metrics`.

The default tracer on every :class:`~repro.sim.kernel.Simulator` is the
module-level :data:`NOOP_TRACER`, whose ``enabled`` flag lets hot paths
skip all instrumentation with a single attribute check — a disabled
trace layer costs one branch per hook.
"""

from __future__ import annotations

import dataclasses
import time
import typing

from repro.trace.config import TraceConfig
from repro.trace.metrics import MetricsRegistry


@dataclasses.dataclass
class SpanRecord:
    """One completed interval of simulated time."""

    name: str
    category: str
    node: str
    start: float
    end: float
    attrs: typing.Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Simulated seconds covered by the span."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }


@dataclasses.dataclass
class EventRecord:
    """One instantaneous occurrence."""

    name: str
    category: str
    node: str
    time: float
    attrs: typing.Dict[str, object] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "type": "event",
            "name": self.name,
            "cat": self.category,
            "node": self.node,
            "time": self.time,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Reusable do-nothing context manager for filtered-out spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        """Ignore attributes."""


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager backing :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_node", "_attrs", "_start", "_wall")

    def __init__(self, tracer: "Tracer", name: str, category: str, node: str,
                 attrs: typing.Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._node = node
        self._attrs = attrs
        self._start = 0.0
        self._wall = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_SpanContext":
        self._start = self._tracer.now
        self._wall = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        attrs = self._attrs
        attrs.setdefault("wall_us", round((time.perf_counter() - self._wall) * 1e6, 2))
        self._tracer._append_span(SpanRecord(
            self._name, self._category, self._node,
            self._start, self._tracer.now, attrs,
        ))
        return False


class NoopTracer:
    """The zero-overhead default: records nothing, filters everything."""

    __slots__ = ()

    enabled = False
    metrics: typing.Optional[MetricsRegistry] = None

    def bind_clock(self, clock: typing.Callable[[], float]) -> None:
        """Ignore the clock."""

    def wants(self, category: str) -> bool:
        """Never interested."""
        return False

    def sampled(self, key: str) -> bool:
        """Never sampled."""
        return False

    def span(self, name: str, /, category: str = "", node: str = "",
             **attrs: object) -> _NullSpan:
        """A shared do-nothing context manager."""
        return _NULL_SPAN

    def record_span(self, name: str, /, category: str = "", node: str = "", *,
                    start: float = 0.0, end: float = 0.0, **attrs: object) -> None:
        """Drop the span."""

    def begin(self, key: typing.Hashable, name: str, /, category: str = "",
              node: str = "", at: typing.Optional[float] = None, **attrs: object) -> None:
        """Drop the open."""

    def end(self, key: typing.Hashable, /, at: typing.Optional[float] = None,
            **attrs: object) -> None:
        """Drop the close."""

    def event(self, name: str, /, category: str = "", node: str = "",
              at: typing.Optional[float] = None, **attrs: object) -> None:
        """Drop the event."""


#: The shared disabled tracer every Simulator starts with.
NOOP_TRACER = NoopTracer()


class Tracer:
    """Collects spans, events and metrics for one (or more) simulations.

    The tracer is clock-agnostic until :meth:`bind_clock` hands it a
    ``() -> float`` reading simulated seconds; the hosting simulator does
    this in :meth:`~repro.sim.kernel.Simulator.set_tracer`.
    """

    enabled = True

    def __init__(self, config: typing.Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        self.spans: typing.List[SpanRecord] = []
        self.events: typing.List[EventRecord] = []
        self.metrics = MetricsRegistry()
        self.dropped_records = 0
        self._clock: typing.Callable[[], float] = lambda: 0.0
        self._open: typing.Dict[typing.Hashable, typing.Tuple[
            str, str, str, float, typing.Dict[str, object]]] = {}

    # ------------------------------------------------------------------
    # Clock and filters

    def bind_clock(self, clock: typing.Callable[[], float]) -> None:
        """Use ``clock()`` as the source of simulated time."""
        self._clock = clock

    @property
    def now(self) -> float:
        """Current simulated time per the bound clock."""
        return self._clock()

    def wants(self, category: str) -> bool:
        """Whether this tracer keeps records of ``category``."""
        return self.config.wants(category)

    def sampled(self, key: str) -> bool:
        """Deterministic per-key sampling decision."""
        return self.config.sampled(key)

    # ------------------------------------------------------------------
    # Spans

    def span(self, name: str, /, category: str = "", node: str = "",
             **attrs: object) -> typing.Union[_SpanContext, _NullSpan]:
        """A context manager recording a lexically scoped span.

        ``name`` (like every positional parameter of the record methods)
        is positional-only, so attribute names such as ``key`` or
        ``name`` never collide with the parameters.
        """
        if not self.config.wants(category):
            return _NULL_SPAN
        return _SpanContext(self, name, category, node, attrs)

    def _append_span(self, record: SpanRecord) -> None:
        if len(self.spans) >= self.config.max_records:
            self.dropped_records += 1
            return
        self.spans.append(record)

    def record_span(self, name: str, /, category: str = "", node: str = "", *,
                    start: float, end: float, **attrs: object) -> None:
        """Record a span whose bounds are both already known."""
        if not self.config.wants(category):
            return
        self._append_span(SpanRecord(name, category, node, start, end, attrs))

    def begin(self, key: typing.Hashable, name: str, /, category: str = "",
              node: str = "", at: typing.Optional[float] = None, **attrs: object) -> None:
        """Open a keyed span (no-op if the key is already open)."""
        if not self.config.wants(category) or key in self._open:
            return
        start = self.now if at is None else at
        self._open[key] = (name, category, node, start, attrs)

    def end(self, key: typing.Hashable, /, at: typing.Optional[float] = None,
            **attrs: object) -> None:
        """Close a keyed span (no-op for unknown keys, so callers may
        close unconditionally on every exit path)."""
        opened = self._open.pop(key, None)
        if opened is None:
            return
        name, category, node, start, open_attrs = opened
        if attrs:
            open_attrs.update(attrs)
        self._append_span(SpanRecord(
            name, category, node, start, self.now if at is None else at, open_attrs,
        ))

    def open_span_count(self) -> int:
        """Keyed spans begun but not yet ended (diagnostic)."""
        return len(self._open)

    def drain_open(self, at: typing.Optional[float] = None, **attrs: object) -> int:
        """Close every open keyed span (e.g. transactions that never
        confirmed) and return how many were closed."""
        keys = list(self._open)
        for key in keys:
            self.end(key, at=at, **attrs)
        return len(keys)

    # ------------------------------------------------------------------
    # Events

    def event(self, name: str, /, category: str = "", node: str = "",
              at: typing.Optional[float] = None, **attrs: object) -> None:
        """Record an instantaneous event."""
        if not self.config.wants(category):
            return
        if len(self.events) >= self.config.max_records:
            self.dropped_records += 1
            return
        self.events.append(EventRecord(name, category, node,
                                       self.now if at is None else at, attrs))
