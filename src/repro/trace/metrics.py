"""Counters, gauges and log-scale histograms for the tracing subsystem.

The :class:`MetricsRegistry` keys every metric by ``(system, node, name)``
so the same instrument ("net.latency") aggregates separately per system
and per node while staying trivially joinable across either axis.
Histograms use geometric (log-scale) buckets, which is the right shape
for the quantities the simulator produces: latencies and sizes spanning
four to six orders of magnitude.
"""

from __future__ import annotations

import math
import typing


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"value": self.value}


class Gauge:
    """A last-value instrument that also tracks its extremes."""

    __slots__ = ("value", "max_value", "min_value", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        self.updates += 1
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value

    def snapshot(self) -> dict:
        """JSON-ready state."""
        if self.updates == 0:
            return {"value": 0.0, "max": 0.0, "min": 0.0, "updates": 0}
        return {
            "value": self.value,
            "max": self.max_value,
            "min": self.min_value,
            "updates": self.updates,
        }


class Histogram:
    """A log-scale histogram.

    Bucket ``i`` covers ``(base * factor**(i-1), base * factor**i]``;
    values at or below zero land in a dedicated underflow bucket and
    values below ``base`` in bucket 0. With the defaults (``base`` 1 µs,
    ``factor`` 2) sub-second latencies resolve to ~20 buckets.
    """

    __slots__ = ("base", "factor", "_log_factor", "_counts", "underflow",
                 "count", "total", "min_value", "max_value")

    def __init__(self, base: float = 1e-6, factor: float = 2.0) -> None:
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        if factor <= 1:
            raise ValueError(f"factor must exceed 1, got {factor}")
        self.base = base
        self.factor = factor
        self._log_factor = math.log(factor)
        self._counts: typing.Dict[int, int] = {}
        self.underflow = 0
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def bucket_index(self, value: float) -> typing.Optional[int]:
        """The bucket a value falls into (None for the underflow bucket)."""
        if value <= 0:
            return None
        if value <= self.base:
            return 0
        # ceil with a nudge so exact bucket bounds stay in their bucket.
        index = math.ceil(math.log(value / self.base) / self._log_factor - 1e-9)
        return max(0, index)

    def bucket_bound(self, index: int) -> float:
        """The inclusive upper bound of bucket ``index``."""
        return self.base * self.factor ** index

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        index = self.bucket_index(value)
        if index is None:
            self.underflow += 1
        else:
            self._counts[index] = self._counts.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations."""
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> typing.List[typing.Tuple[float, int]]:
        """``(upper_bound, count)`` pairs, ascending, empty buckets skipped."""
        return [
            (self.bucket_bound(index), self._counts[index])
            for index in sorted(self._counts)
        ]

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = self.underflow
        if seen >= rank and self.underflow:
            return 0.0
        for bound, bucket_count in self.buckets():
            seen += bucket_count
            if seen >= rank:
                return bound
        return self.max_value

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "underflow": self.underflow,
            "buckets": self.buckets(),
        }


#: One metric key: (system, node, name).
MetricKey = typing.Tuple[str, str, str]


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by (system, node, name)."""

    def __init__(self) -> None:
        self._counters: typing.Dict[MetricKey, Counter] = {}
        self._gauges: typing.Dict[MetricKey, Gauge] = {}
        self._histograms: typing.Dict[MetricKey, Histogram] = {}

    def counter(self, name: str, system: str = "", node: str = "") -> Counter:
        """The counter for a key, created on first use."""
        key = (system, node, name)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, system: str = "", node: str = "") -> Gauge:
        """The gauge for a key, created on first use."""
        key = (system, node, name)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(
        self, name: str, system: str = "", node: str = "",
        base: float = 1e-6, factor: float = 2.0,
    ) -> Histogram:
        """The histogram for a key, created on first use."""
        key = (system, node, name)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(base=base, factor=factor)
        return histogram

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> dict:
        """All instruments, JSON-ready, keys flattened to strings."""

        def flatten(metrics: typing.Dict[MetricKey, typing.Any]) -> dict:
            return {
                "/".join(part for part in key if part) or key[2]: metric.snapshot()
                for key, metric in sorted(metrics.items())
            }

        return {
            "counters": flatten(self._counters),
            "gauges": flatten(self._gauges),
            "histograms": flatten(self._histograms),
        }
