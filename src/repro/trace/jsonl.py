"""Flat JSONL export: one JSON object per line.

The stream carries every span and event in time order followed by a
single ``{"type": "metrics", ...}`` line with the registry snapshot —
trivially greppable and loadable line by line, which is what ad-hoc
analysis of multi-hundred-thousand-record traces needs.
"""

from __future__ import annotations

import json
import typing

from repro.trace.tracer import Tracer


def jsonl_lines(tracer: Tracer) -> typing.Iterator[dict]:
    """All records as JSON-ready dicts, spans/events merged in time order."""
    records = [(span.start, 0, span.to_dict()) for span in tracer.spans]
    records.extend((event.time, 1, event.to_dict()) for event in tracer.events)
    records.sort(key=lambda item: item[:2])
    for __, __, record in records:
        yield record
    yield {"type": "metrics", "metrics": tracer.metrics.snapshot(),
           "dropped_records": tracer.dropped_records}


def write_jsonl(tracer: Tracer, path: typing.Union[str, "typing.Any"]) -> None:
    """Serialise the tracer's records to ``path``, one object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in jsonl_lines(tracer):
            handle.write(json.dumps(record, default=str))
            handle.write("\n")


def read_jsonl(path: typing.Union[str, "typing.Any"]) -> typing.List[dict]:
    """Load a JSONL trace back into a list of dicts."""
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]
