"""Protocol invariant checking (runtime safety oracles).

A pluggable oracle layer that observes a benchmark run through hooks in
the simulator, the consensus engines and the system models, and asserts
the protocol-safety and ledger invariants the paper's comparison relies
on: agreement, total order, no double commits, quorum validity per
engine, hash-chain integrity, notary uniqueness, and IEL conservation /
last-writer-wins consistency. Crash/restart and partition faults may
cost liveness but must never produce a violation.

Entry points: the runner's ``check=True`` / ``check_level`` arguments,
``coconut run --check [--check-level strict]`` on the CLI, and
:class:`InvariantChecker` directly via ``Simulator.set_checker``.
"""

from repro.invariants.checker import (
    LEVELS,
    NOOP_CHECKER,
    InvariantChecker,
    NoopChecker,
)
from repro.invariants.report import VIOLATION_CAP, InvariantReport, Violation

__all__ = [
    "LEVELS",
    "NOOP_CHECKER",
    "VIOLATION_CAP",
    "InvariantChecker",
    "InvariantReport",
    "NoopChecker",
    "Violation",
]
