"""The safety and ledger oracles behind the invariant checker.

Each oracle watches one protocol invariant through the checker's hooks
and records violations into the run's :class:`~repro.invariants.report.
InvariantReport`:

* :class:`AgreementOracle` — no two replicas commit different blocks at
  the same height (the core safety property of every blockchain in the
  paper's comparison).
* :class:`TotalOrderOracle` — every replica's chain grows by exactly one
  height at a time: no gaps, no replays, no reordering.
* :class:`DoubleCommitOracle` — a transaction appears in at most one
  block per replica.
* :class:`HashChainOracle` — each appended block links to the observed
  tip; at the strict level the Merkle root is re-verified per block.
* :class:`QuorumOracle` — every consensus decision carries evidence
  matching its engine's rule: 2f+1 commit votes (PBFT/IBFT), a quorum
  certificate (DiemBFT), a replication majority (Raft), the scheduled
  witness (DPoS); derived decisions (followers, state sync) must trail a
  quorum-backed one, and no two replicas may decide different proposals
  for one slot.
* :class:`NotaryUniquenessOracle` — Corda's uniqueness service never
  accepts the same input state twice.
* :class:`ConservationOracle` — BankingApp money is conserved: world
  state totals exactly what committed CreateAccounts minted, and Corda
  transactions that consume states conserve the consumed value.
* :class:`LwwOracle` — KeyValue state equals the last committed Set per
  key (last-writer-wins consistency), on vaults via shadow replay.
* :class:`ChainConsistencyOracle` (strict) — full tamper-evidence
  re-validation of every replica plus mutual prefix consistency.

Oracles only *observe*: they draw no randomness, schedule nothing and
send nothing, so a checked run's schedule is byte-identical to an
unchecked one.
"""

from __future__ import annotations

import typing

from repro.crypto.hashing import GENESIS_HASH
from repro.crypto.signatures import quorum_size
from repro.iel.banking import CHECKING_PREFIX, SAVING_PREFIX
from repro.storage.receipts import TxStatus
from repro.storage.utxo import StateRef

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.invariants.checker import InvariantChecker
    from repro.storage.block import Block


def proposal_digest(proposal: object) -> str:
    """A stable identity for an agreed proposal.

    Mirrors the engines' own digest rule (proposal id, then block hash,
    then repr) without importing any engine module — the checker must
    stay importable from the simulator kernel.
    """
    digest = getattr(proposal, "proposal_id", None)
    if digest is None:
        digest = getattr(proposal, "block_hash", None)
    return str(digest) if digest is not None else repr(proposal)


def _num(value: object) -> float:
    """Numeric view of a balance (non-numeric state counts as zero)."""
    return float(value) if isinstance(value, (int, float)) else 0.0


def _is_banking_key(key: str) -> bool:
    return key.startswith(CHECKING_PREFIX) or key.startswith(SAVING_PREFIX)


class AgreementOracle:
    """No two replicas commit different blocks at one height."""

    name = "agreement"

    def __init__(self) -> None:
        #: height -> (block hash, first node observed committing it).
        self._canonical: typing.Dict[int, typing.Tuple[str, str]] = {}

    def on_block(self, ch: "InvariantChecker", node_id: str, block: "Block") -> None:
        ch.observed(self.name)
        seen = self._canonical.get(block.height)
        if seen is None:
            self._canonical[block.height] = (block.block_hash, node_id)
        elif seen[0] != block.block_hash:
            ch.violation(
                self.name, node_id,
                f"height {block.height}: committed {block.block_hash[:12]} "
                f"but {seen[1]} committed {seen[0][:12]}",
            )


class TotalOrderOracle:
    """Each replica's chain grows one height at a time, gap-free."""

    name = "total-order"

    def __init__(self) -> None:
        self._next_height: typing.Dict[str, int] = {}

    def on_block(self, ch: "InvariantChecker", node_id: str, block: "Block") -> None:
        ch.observed(self.name)
        expected = self._next_height.get(node_id, 0)
        if block.height != expected:
            kind = "gap" if block.height > expected else "replay/reorder"
            ch.violation(
                self.name, node_id,
                f"{kind}: expected height {expected}, appended {block.height}",
            )
        # Resync so one bad block reports once instead of cascading.
        self._next_height[node_id] = block.height + 1


class DoubleCommitOracle:
    """A transaction commits in at most one block per replica."""

    name = "double-commit"

    def __init__(self) -> None:
        self._seen: typing.Dict[str, typing.Dict[str, int]] = {}

    def on_block(self, ch: "InvariantChecker", node_id: str, block: "Block") -> None:
        seen = self._seen.setdefault(node_id, {})
        for tx in block.transactions:
            ch.observed(self.name)
            previous = seen.get(tx.tx_id)
            if previous is not None:
                ch.violation(
                    self.name, node_id,
                    f"transaction {tx.tx_id} in blocks {previous} and {block.height}",
                )
            else:
                seen[tx.tx_id] = block.height


class HashChainOracle:
    """Every appended block links to the observed tip (and, at the
    strict level, carries a valid Merkle root)."""

    name = "hash-chain"

    def __init__(self, verify_merkle: bool = False) -> None:
        self.verify_merkle = verify_merkle
        self._tip: typing.Dict[str, str] = {}

    def on_block(self, ch: "InvariantChecker", node_id: str, block: "Block") -> None:
        ch.observed(self.name)
        tip = self._tip.get(node_id, GENESIS_HASH)
        if block.header.parent_hash != tip:
            ch.violation(
                self.name, node_id,
                f"height {block.height} parent {block.header.parent_hash[:12]} "
                f"does not match tip {tip[:12]}",
            )
        if self.verify_merkle and not block.verify_merkle_root():
            ch.violation(
                self.name, node_id, f"height {block.height}: merkle root mismatch"
            )
        self._tip[node_id] = block.block_hash


class QuorumOracle:
    """Every decision is quorum-valid for its engine and slot-unique."""

    name = "quorum"

    def __init__(self) -> None:
        #: (engine, sequence) -> first digest, deciding node, whether a
        #: quorum-backed (non-derived) decision was observed for the slot.
        self._slots: typing.Dict[
            typing.Tuple[str, int], typing.Dict[str, object]
        ] = {}
        #: engine -> rounds for which a quorum certificate was assembled.
        self._qc_rounds: typing.Dict[str, typing.Set[int]] = {}
        #: engine -> first witness schedule observed (DPoS consistency).
        self._witness_lists: typing.Dict[str, typing.Tuple[str, ...]] = {}

    def on_qc(
        self, ch: "InvariantChecker", engine: str, round_number: int, votes: int, n: int
    ) -> None:
        ch.observed(self.name)
        need = quorum_size(n, "bft")
        if votes < need:
            ch.violation(
                self.name, "",
                f"{engine}: QC for round {round_number} from {votes} votes "
                f"(quorum is {need} of {n})",
            )
        self._qc_rounds.setdefault(engine, set()).add(round_number)

    def on_decision(
        self,
        ch: "InvariantChecker",
        replica_id: str,
        engine: str,
        decision,
        evidence: typing.Dict[str, object],
        n: int,
    ) -> None:
        ch.observed(self.name)
        digest = proposal_digest(decision.proposal)
        key = (engine, decision.sequence)
        slot = self._slots.get(key)
        if slot is None:
            slot = {"digest": digest, "node": replica_id, "backed": False}
            self._slots[key] = slot
        elif slot["digest"] != digest:
            ch.violation(
                self.name, replica_id,
                f"{engine} seq {decision.sequence}: decided {digest!r} but "
                f"{slot['node']} decided {slot['digest']!r}",
            )
        kind = evidence.get("kind")
        if kind in ("bft-votes", "crash-votes"):
            quorum_kind = "bft" if kind == "bft-votes" else "crash"
            votes = int(typing.cast(int, evidence.get("votes", 0)))
            need = quorum_size(n, quorum_kind)
            if votes < need:
                ch.violation(
                    self.name, replica_id,
                    f"{engine} seq {decision.sequence}: committed with {votes} "
                    f"votes (quorum is {need} of {n})",
                )
            else:
                slot["backed"] = True
        elif kind == "qc":
            qc_round = evidence.get("round")
            if qc_round not in self._qc_rounds.get(engine, set()):
                ch.violation(
                    self.name, replica_id,
                    f"{engine} seq {decision.sequence}: committed round "
                    f"{qc_round} without an observed quorum certificate",
                )
            else:
                slot["backed"] = True
        elif kind == "dpos-slot":
            witnesses = tuple(typing.cast(typing.Sequence[str], evidence.get("witnesses") or ()))
            known = self._witness_lists.setdefault(engine, witnesses)
            if witnesses != known:
                ch.violation(
                    self.name, replica_id,
                    f"{engine}: witness schedule {witnesses} disagrees with {known}",
                )
            slot_number = evidence.get("slot")
            if not witnesses or not isinstance(slot_number, int):
                ch.violation(
                    self.name, replica_id,
                    f"{engine} seq {decision.sequence}: block without schedule evidence",
                )
            elif witnesses[slot_number % len(witnesses)] != decision.proposer:
                ch.violation(
                    self.name, replica_id,
                    f"{engine} slot {slot_number}: produced by {decision.proposer}, "
                    f"schedule says {witnesses[slot_number % len(witnesses)]}",
                )
            else:
                slot["backed"] = True
        elif kind in ("follow", "sync"):
            # Derived decisions (Raft followers, state-sync replay) are
            # only safe once some replica decided the slot with a quorum.
            if not slot["backed"]:
                ch.violation(
                    self.name, replica_id,
                    f"{engine} seq {decision.sequence}: derived ({kind}) with no "
                    f"quorum-backed decision observed for the slot",
                )
        else:
            ch.violation(
                self.name, replica_id,
                f"{engine} seq {decision.sequence}: decision without quorum evidence",
            )


class NotaryUniquenessOracle:
    """Corda's uniqueness service accepts each input state once."""

    name = "notary-uniqueness"

    def __init__(self) -> None:
        self._accepted: typing.Dict[object, str] = {}

    def on_notarise(
        self,
        ch: "InvariantChecker",
        notary_id: str,
        tx_id: str,
        consumed: typing.Sequence[object],
        ok: bool,
    ) -> None:
        ch.observed(self.name)
        if not ok:
            return
        for ref in consumed:
            first = self._accepted.get(ref)
            if first is not None:
                ch.violation(
                    self.name, notary_id,
                    f"{tx_id}: input state {ref} double-spent (first accepted in {first})",
                )
            else:
                self._accepted[ref] = tx_id


class ConservationOracle:
    """BankingApp money is conserved on every replica."""

    name = "conservation"

    def __init__(self) -> None:
        #: node -> balance minted by committed CreateAccounts there.
        self._minted: typing.Dict[str, float] = {}
        #: node -> CreateAccount payloads already counted (a payload can
        #: reach a node's state twice after view-change re-proposals).
        self._counted: typing.Dict[str, typing.Set[str]] = {}
        #: Corda: every output state's value, by reference.
        self._ref_values: typing.Dict[object, object] = {}
        self._checked_txs: typing.Set[str] = set()

    def on_apply(
        self,
        ch: "InvariantChecker",
        node_id: str,
        outcome: typing.Dict[str, typing.Tuple[TxStatus, str]],
    ) -> None:
        if ch.iel != "BankingApp":
            return
        counted = self._counted.setdefault(node_id, set())
        for payload_id, (status, __) in outcome.items():
            if status is not TxStatus.COMMITTED:
                continue
            payload = ch.payloads.get(payload_id)
            if payload is None or payload.function != "CreateAccount":
                continue
            ch.observed(self.name)
            if payload_id in counted:
                continue
            counted.add(payload_id)
            minted = _num(payload.arg("checking", 0)) + _num(payload.arg("saving", 0))
            self._minted[node_id] = self._minted.get(node_id, 0.0) + minted

    def on_vault_record(
        self,
        ch: "InvariantChecker",
        node_id: str,
        tx_id: str,
        outputs: typing.Sequence[typing.Tuple[str, object]],
        consumed: typing.Sequence[object],
    ) -> None:
        if ch.iel != "BankingApp":
            return
        for index, (__, value) in enumerate(outputs):
            self._ref_values.setdefault(StateRef(tx_id, index), value)
        if tx_id in self._checked_txs:
            return
        self._checked_txs.add(tx_id)
        ch.observed(self.name)
        if not consumed:
            return  # a mint (CreateAccount): adds value by design
        missing = [ref for ref in consumed if ref not in self._ref_values]
        if missing:
            ch.violation(
                self.name, node_id, f"{tx_id}: consumed unknown state(s) {missing}"
            )
            return
        produced = sum(_num(value) for __, value in outputs)
        consumed_sum = sum(_num(self._ref_values[ref]) for ref in consumed)
        if produced != consumed_sum:
            ch.violation(
                self.name, node_id,
                f"{tx_id}: outputs total {produced}, consumed inputs total "
                f"{consumed_sum} (value not conserved)",
            )

    def finalize(self, ch: "InvariantChecker", system) -> None:
        if ch.iel != "BankingApp":
            return
        for node in system.nodes.values():
            if hasattr(node, "vault"):
                continue  # Corda: covered per record + the vault shadow
            ch.observed(self.name)
            expected = self._minted.get(node.endpoint_id, 0.0)
            actual = sum(
                _num(node.state.get(key))
                for key in node.state.keys()
                if _is_banking_key(key)
            )
            if actual != expected:
                ch.violation(
                    self.name, node.endpoint_id,
                    f"total balance {actual} != minted {expected}",
                )


class LwwOracle:
    """KeyValue state equals the last committed Set per key."""

    name = "lww"

    def __init__(self) -> None:
        #: node -> key -> last committed Set value (world-state systems).
        self._last: typing.Dict[str, typing.Dict[str, object]] = {}
        #: node -> key -> (ref, value): a shadow replay of the vault.
        self._shadow: typing.Dict[
            str, typing.Dict[str, typing.Tuple[object, object]]
        ] = {}

    def on_apply(
        self,
        ch: "InvariantChecker",
        node_id: str,
        outcome: typing.Dict[str, typing.Tuple[TxStatus, str]],
    ) -> None:
        if ch.iel != "KeyValue":
            return
        last = self._last.setdefault(node_id, {})
        for payload_id, (status, __) in outcome.items():
            if status is not TxStatus.COMMITTED:
                continue
            payload = ch.payloads.get(payload_id)
            if payload is None or payload.function not in ("Set", "Rmw"):
                continue
            ch.observed(self.name)
            last[str(payload.arg("key"))] = payload.arg("value")

    def on_vault_record(
        self,
        ch: "InvariantChecker",
        node_id: str,
        tx_id: str,
        outputs: typing.Sequence[typing.Tuple[str, object]],
        consumed: typing.Sequence[object],
    ) -> None:
        if ch.iel != "KeyValue":
            return
        ch.observed(self.name)
        shadow = self._shadow.setdefault(node_id, {})
        consumed_set = set(consumed)
        if consumed_set:
            stale = [key for key, (ref, __) in shadow.items() if ref in consumed_set]
            for key in stale:
                del shadow[key]
        for index, (key, value) in enumerate(outputs):
            shadow[key] = (StateRef(tx_id, index), value)

    def finalize(self, ch: "InvariantChecker", system) -> None:
        if ch.iel != "KeyValue":
            return
        for node in system.nodes.values():
            if hasattr(node, "vault"):
                self._finalize_vault(ch, node)
                continue
            for key, value in self._last.get(node.endpoint_id, {}).items():
                ch.observed(self.name)
                actual = node.state.get(key)
                if actual != value:
                    ch.violation(
                        self.name, node.endpoint_id,
                        f"{key}: state holds {actual!r}, last committed Set "
                        f"wrote {value!r}",
                    )

    def _finalize_vault(self, ch: "InvariantChecker", node) -> None:
        shadow = self._shadow.get(node.endpoint_id, {})
        for key, (ref, value) in shadow.items():
            ch.observed(self.name)
            entry = node.vault.get(key)
            if entry is None or entry.value != value or entry.ref != ref:
                held = None if entry is None else entry.value
                ch.violation(
                    self.name, node.endpoint_id,
                    f"{key}: vault holds {held!r}, recorded writer wrote {value!r}",
                )
        for key in node.vault:
            if key not in shadow:
                ch.observed(self.name)
                ch.violation(
                    self.name, node.endpoint_id,
                    f"{key}: vault entry without any recorded transaction",
                )


class ChainConsistencyOracle:
    """Strict-level finalize: full replica re-validation + prefixes."""

    name = "chain-consistency"

    def finalize(self, ch: "InvariantChecker", system) -> None:
        from repro.storage.chain import ChainValidationError

        nodes = list(system.nodes.values())
        for node in nodes:
            ch.observed(self.name)
            try:
                node.chain.validate()
            except ChainValidationError as error:
                ch.violation(self.name, node.endpoint_id, str(error))
        for other in nodes[1:]:
            ch.observed(self.name)
            if not nodes[0].chain.same_prefix(other.chain):
                ch.violation(
                    self.name, other.endpoint_id,
                    f"chain diverged from {nodes[0].endpoint_id}",
                )


def default_oracles(level: str) -> typing.List[object]:
    """The oracle set for a checking level."""
    oracles: typing.List[object] = [
        AgreementOracle(),
        TotalOrderOracle(),
        DoubleCommitOracle(),
        HashChainOracle(verify_merkle=(level == "strict")),
        QuorumOracle(),
        NotaryUniquenessOracle(),
        ConservationOracle(),
        LwwOracle(),
    ]
    if level == "strict":
        oracles.append(ChainConsistencyOracle())
    return oracles
