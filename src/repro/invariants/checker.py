"""The checker front-end the instrumented layers talk to.

Every :class:`~repro.sim.kernel.Simulator` carries a checker — the
module-level :data:`NOOP_CHECKER` unless the runner installs a live
:class:`InvariantChecker` — so a hook site costs one attribute test when
checking is off, mirroring the tracer's design. A live checker fans each
observation out to its oracles and collects their findings into one
:class:`~repro.invariants.report.InvariantReport`.

The checker is purely observational: it draws no randomness and
schedules nothing, so metrics are byte-identical with and without it.
"""

from __future__ import annotations

import typing

from repro.invariants.oracles import default_oracles
from repro.invariants.report import InvariantReport, Violation

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.consensus.base import Decision
    from repro.storage.block import Block
    from repro.storage.receipts import TxStatus
    from repro.storage.transaction import Payload

#: The supported checking levels. ``basic`` runs every safety oracle;
#: ``strict`` additionally re-verifies Merkle roots per appended block
#: and fully re-validates every chain replica at finalize.
LEVELS = ("basic", "strict")


class NoopChecker:
    """Checking disabled: hook sites test ``enabled`` and move on."""

    enabled = False


NOOP_CHECKER = NoopChecker()


class InvariantChecker:
    """One repetition's live oracle set."""

    enabled = True

    def __init__(
        self,
        level: str = "basic",
        iel: str = "",
        repetition: int = 0,
        oracles: typing.Optional[typing.Sequence[object]] = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown check level {level!r} (use one of {LEVELS})")
        self.level = level
        self.iel = iel
        self.repetition = repetition
        self.phase = ""
        #: payload_id -> Payload, fed by the systems' admission path so
        #: ledger oracles can interpret applied outcomes.
        self.payloads: typing.Dict[str, "Payload"] = {}
        self.oracles = list(oracles) if oracles is not None else default_oracles(level)
        self.report = InvariantReport(level=level)
        self._finalized = False
        self._hooked = {
            hook: [oracle for oracle in self.oracles if hasattr(oracle, hook)]
            for hook in (
                "on_block", "on_apply", "on_decision", "on_qc",
                "on_notarise", "on_vault_record", "finalize",
            )
        }

    # ------------------------------------------------------------------
    # Context

    def set_phase(self, phase: str) -> None:
        """Stamp subsequent violations with the running phase."""
        self.phase = phase

    def observed(self, oracle: str, count: int = 1) -> None:
        """Account checks performed by one oracle."""
        self.report.observe(oracle, count)

    def violation(self, oracle: str, node: str, detail: str) -> None:
        """Record one violation with the current phase/repetition."""
        self.report.record(
            Violation(
                oracle=oracle, detail=detail, node=node,
                phase=self.phase, repetition=self.repetition,
            )
        )

    # ------------------------------------------------------------------
    # Hooks (called by the instrumented layers, always behind
    # ``if checker.enabled``)

    def on_payload(self, payload: "Payload") -> None:
        """A payload was admitted somewhere; remember its content."""
        self.payloads[payload.payload_id] = payload

    def on_block(self, node_id: str, block: "Block") -> None:
        """A node appended a block to its chain replica."""
        for oracle in self._hooked["on_block"]:
            oracle.on_block(self, node_id, block)

    def on_apply(
        self, node_id: str, outcome: typing.Dict[str, typing.Tuple["TxStatus", str]]
    ) -> None:
        """A node applied payloads to its world state (dict order =
        application order)."""
        for oracle in self._hooked["on_apply"]:
            oracle.on_apply(self, node_id, outcome)

    def on_decision(
        self,
        replica_id: str,
        engine: str,
        decision: "Decision",
        evidence: typing.Dict[str, object],
        n: int,
    ) -> None:
        """A consensus replica delivered a decision with its evidence."""
        for oracle in self._hooked["on_decision"]:
            oracle.on_decision(self, replica_id, engine, decision, evidence, n)

    def on_qc(self, engine: str, round_number: int, votes: int, n: int) -> None:
        """A DiemBFT leader assembled a quorum certificate."""
        for oracle in self._hooked["on_qc"]:
            oracle.on_qc(self, engine, round_number, votes, n)

    def on_notarise(
        self, notary_id: str, tx_id: str, consumed: typing.Sequence[object], ok: bool
    ) -> None:
        """A notary instance ruled on one notarisation request."""
        for oracle in self._hooked["on_notarise"]:
            oracle.on_notarise(self, notary_id, tx_id, consumed, ok)

    def on_vault_record(
        self,
        node_id: str,
        tx_id: str,
        outputs: typing.Sequence[typing.Tuple[str, object]],
        consumed: typing.Sequence[object],
    ) -> None:
        """A Corda node recorded a finalized transaction in its vault."""
        for oracle in self._hooked["on_vault_record"]:
            oracle.on_vault_record(self, node_id, tx_id, outputs, consumed)

    def finalize(self, system) -> InvariantReport:
        """End-of-run checks against the deployment's final state."""
        if not self._finalized:
            self._finalized = True
            for oracle in self._hooked["finalize"]:
                oracle.finalize(self, system)
        return self.report
