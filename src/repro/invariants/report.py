"""Structured invariant-violation reports.

A run's :class:`InvariantReport` rides on the benchmark result next to
trace and resilience data: per-oracle observation counts (so a green
report distinguishes "checked and held" from "never exercised") plus the
violations themselves. Violation storage is capped per oracle — a single
corrupted replica would otherwise flood the report with one entry per
block — while the total count stays exact.
"""

from __future__ import annotations

import dataclasses
import typing

#: Stored violations per oracle; further ones only increment the counts.
VIOLATION_CAP = 25


@dataclasses.dataclass(frozen=True)
class Violation:
    """One observed breach of one invariant."""

    oracle: str
    detail: str
    node: str = ""
    phase: str = ""
    repetition: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(**data)

    def render(self) -> str:
        where = f" on {self.node}" if self.node else ""
        phase = f" [{self.phase} r{self.repetition}]" if self.phase else ""
        return f"{self.oracle}{where}{phase}: {self.detail}"


class InvariantReport:
    """All invariant outcomes of one run (or one repetition)."""

    def __init__(self, level: str = "basic") -> None:
        self.level = level
        self.violations: typing.List[Violation] = []
        #: oracle -> number of individual checks it performed.
        self.checks: typing.Dict[str, int] = {}
        #: oracle -> exact violation count (capped list aside).
        self.violation_counts: typing.Dict[str, int] = {}

    @property
    def ok(self) -> bool:
        """Whether the run was safety-clean."""
        return not self.violation_counts

    @property
    def total_violations(self) -> int:
        """Exact violation count, including entries beyond the cap."""
        return sum(self.violation_counts.values())

    def observe(self, oracle: str, count: int = 1) -> None:
        """Account ``count`` checks performed by ``oracle``."""
        self.checks[oracle] = self.checks.get(oracle, 0) + count

    def record(self, violation: Violation) -> None:
        """Register a violation (stored up to the per-oracle cap)."""
        count = self.violation_counts.get(violation.oracle, 0)
        self.violation_counts[violation.oracle] = count + 1
        if count < VIOLATION_CAP:
            self.violations.append(violation)

    def violations_for(self, oracle: str) -> typing.List[Violation]:
        """The stored violations of one oracle."""
        return [v for v in self.violations if v.oracle == oracle]

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "ok": self.ok,
            "checks": dict(self.checks),
            "violation_counts": dict(self.violation_counts),
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InvariantReport":
        report = cls(level=data.get("level", "basic"))
        report.checks = dict(data.get("checks", {}))
        report.violation_counts = dict(data.get("violation_counts", {}))
        report.violations = [Violation.from_dict(v) for v in data.get("violations", [])]
        return report

    @classmethod
    def merge(cls, reports: typing.Sequence["InvariantReport"]) -> "InvariantReport":
        """Combine per-repetition reports into one unit-level report."""
        merged = cls(level=reports[0].level if reports else "basic")
        for report in reports:
            for oracle, count in report.checks.items():
                merged.observe(oracle, count)
            for oracle, count in report.violation_counts.items():
                merged.violation_counts[oracle] = (
                    merged.violation_counts.get(oracle, 0) + count
                )
            room = VIOLATION_CAP * max(1, len(merged.violation_counts))
            merged.violations.extend(report.violations[: max(0, room - len(merged.violations))])
        return merged

    def render(self) -> str:
        """One-screen summary for the CLI."""
        total_checks = sum(self.checks.values())
        if self.ok:
            return (
                f"ok ({self.level}): {len(self.checks)} oracles, "
                f"{total_checks} checks, 0 violations"
            )
        by_oracle = ", ".join(
            f"{oracle}:{count}" for oracle, count in sorted(self.violation_counts.items())
        )
        lines = [
            f"FAILED ({self.level}): {self.total_violations} violations ({by_oracle})"
        ]
        lines.extend("  " + violation.render() for violation in self.violations[:10])
        if self.total_violations > 10:
            lines.append(f"  ... and {self.total_violations - 10} more")
        return "\n".join(lines)
