"""Optional JSONL spill sink for full-fidelity payload records.

The streaming path deliberately forgets individual payloads the moment
they resolve; analyses that need the raw records (per-transaction
latency scatter, custom windows, post-hoc resilience slicing) can
attach a spill sink instead of falling back to the O(offered load)
exact path. Every retired record — and every record still pending at
phase teardown — is appended as one JSON line, in simulation order, so
the file is itself deterministic for a fixed seed.
"""

from __future__ import annotations

import json
import pathlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coconut.client import PayloadRecord


class SpillSink:
    """Append-only JSONL writer for retired payload records."""

    def __init__(self, path: typing.Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._handle: typing.Optional[typing.TextIO] = None
        #: Context fields stamped onto every line (e.g. repetition).
        self._context: typing.Dict[str, object] = {}
        self.lines = 0

    def set_context(self, **fields: object) -> None:
        """Replace the per-line context (the runner sets repetition)."""
        self._context = dict(fields)

    def write_record(self, client_id: str, record: "PayloadRecord") -> None:
        """Append one payload record as a JSON line."""
        if self._handle is None:
            self._handle = self.path.open("w", encoding="utf-8")
        entry: typing.Dict[str, object] = dict(self._context)
        entry.update(
            client=client_id,
            phase=record.phase,
            payload_id=record.payload_id,
            start_time=record.start_time,
            end_time=record.end_time,
            status=record.status,
            invalid=record.invalid,
        )
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self.lines += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SpillSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_spill(path: typing.Union[str, pathlib.Path]) -> typing.List[dict]:
    """Load a spill file back as a list of dicts (analysis helper)."""
    entries = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries
