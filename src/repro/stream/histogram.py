"""Deterministic log-bucketed latency histogram (HDR-style).

The streaming metrics path cannot keep every finalization latency, but
the paper's tail percentiles (p50/p95/p99) need the distribution, not
just a sum. This histogram trades a bounded relative error for constant
memory: values land in logarithmic buckets whose boundaries are
``BASE ** (index / RESOLUTION)``, so every bucket spans the same
*relative* width (``BASE ** (1 / RESOLUTION)``, about 2.6% with the
defaults) — the HDR-histogram idea, with the sub-bucket machinery
dropped because a sparse dict over a fixed bucket function is simpler
and merges trivially.

Design properties the test suite pins:

* **Bucketing is a pure function of the value** — no histogram state
  feeds back into bucket choice, so recording the same multiset in any
  order, split across any number of histograms, produces the same
  counts: merges are associative and commutative across clients,
  threads and :mod:`repro.parallel` workers.
* **Percentiles are exact to one bucket** — the reported quantile is
  the geometric midpoint of the bucket holding the nearest-rank sample,
  clamped into the exactly-tracked ``[min, max]`` observed range, so it
  never strays further than one bucket's relative width from the value
  the exact (full-list) path reports.
* **Serialization is canonical** — ``to_dict`` emits counts keyed by
  bucket index in ascending order; equal histograms serialize to equal
  JSON bytes.
"""

from __future__ import annotations

import math
import typing

#: Bucket boundaries are powers of ``BASE ** (1 / RESOLUTION)``.
BASE = 10.0
#: Buckets per decade: 90 gives a relative bucket width of
#: ``10 ** (1/90) - 1`` ~ 2.6%, comfortably inside the run-to-run noise
#: of any real latency measurement while keeping a 1 ms..1000 s range in
#: at most 540 occupied buckets.
RESOLUTION = 90


class LogHistogram:
    """A mergeable, constant-memory latency histogram."""

    __slots__ = (
        "base",
        "resolution",
        "counts",
        "total",
        "underflow",
        "min_value",
        "max_value",
        "_scale",
    )

    def __init__(self, base: float = BASE, resolution: int = RESOLUTION) -> None:
        if base <= 1.0:
            raise ValueError(f"base must be > 1, got {base}")
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self.base = base
        self.resolution = resolution
        #: Sparse bucket index -> sample count.
        self.counts: typing.Dict[int, int] = {}
        self.total = 0
        #: Samples <= 0 (a latency cannot be, but the histogram must not
        #: lose mass if one ever is).
        self.underflow = 0
        self.min_value: typing.Optional[float] = None
        self.max_value: typing.Optional[float] = None
        self._scale = resolution / math.log(base)

    # ------------------------------------------------------------------
    # Recording

    def bucket_index(self, value: float) -> int:
        """The bucket a positive value lands in."""
        return math.floor(math.log(value) * self._scale)

    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.total += count
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if value <= 0.0:
            self.underflow += count
            return
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + count

    # ------------------------------------------------------------------
    # Reading

    def bucket_bounds(self, index: int) -> typing.Tuple[float, float]:
        """The ``[low, high)`` value range of one bucket."""
        return (
            self.base ** (index / self.resolution),
            self.base ** ((index + 1) / self.resolution),
        )

    def bucket_value(self, index: int) -> float:
        """A bucket's representative value: its geometric midpoint."""
        return self.base ** ((index + 0.5) / self.resolution)

    @property
    def relative_width(self) -> float:
        """One bucket's relative span (the percentile error bound)."""
        return self.base ** (1.0 / self.resolution)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, exact to one bucket.

        Mirrors :func:`repro.coconut.metrics.percentile`: nearest rank
        (not interpolated), 0.0 for an empty histogram. The returned
        value is the holding bucket's geometric midpoint clamped into
        the observed ``[min, max]``, so a single-valued distribution
        reports that value exactly.
        """
        if self.total == 0:
            return 0.0
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        rank = math.ceil(q / 100.0 * self.total)
        rank = max(1, rank)
        if rank <= self.underflow:
            return min(0.0, self.min_value if self.min_value is not None else 0.0)
        seen = self.underflow
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                value = self.bucket_value(index)
                if self.min_value is not None:
                    value = max(value, self.min_value)
                if self.max_value is not None:
                    value = min(value, self.max_value)
                return value
        # Unreachable: counts sum to total - underflow.
        raise AssertionError("histogram counts out of sync with total")

    def percentiles(
        self, qs: typing.Sequence[float]
    ) -> typing.Tuple[float, ...]:
        """Several percentiles in one call."""
        return tuple(self.percentile(q) for q in qs)

    # ------------------------------------------------------------------
    # Merging

    def compatible(self, other: "LogHistogram") -> bool:
        """Whether two histograms share one bucket scheme."""
        return self.base == other.base and self.resolution == other.resolution

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram into this one (in place)."""
        if not self.compatible(other):
            raise ValueError(
                f"cannot merge histograms with different schemes: "
                f"base {self.base}/resolution {self.resolution} vs "
                f"base {other.base}/resolution {other.resolution}"
            )
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.total += other.total
        self.underflow += other.underflow
        if other.min_value is not None and (
            self.min_value is None or other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        if other.max_value is not None and (
            self.max_value is None or other.max_value > self.max_value
        ):
            self.max_value = other.max_value

    @classmethod
    def merged(cls, histograms: typing.Iterable["LogHistogram"]) -> "LogHistogram":
        """A fresh histogram holding the union of several."""
        histograms = list(histograms)
        if not histograms:
            return cls()
        result = cls(base=histograms[0].base, resolution=histograms[0].resolution)
        for histogram in histograms:
            result.merge(histogram)
        return result

    # ------------------------------------------------------------------
    # (De)serialization

    def to_dict(self) -> typing.Dict[str, object]:
        """Canonical JSON-ready state (ascending bucket order)."""
        return {
            "base": self.base,
            "resolution": self.resolution,
            "counts": {str(index): self.counts[index] for index in sorted(self.counts)},
            "total": self.total,
            "underflow": self.underflow,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "LogHistogram":
        """Inverse of :meth:`to_dict`."""
        histogram = cls(
            base=typing.cast(float, data.get("base", BASE)),
            resolution=typing.cast(int, data.get("resolution", RESOLUTION)),
        )
        for key, count in typing.cast(dict, data.get("counts", {})).items():
            histogram.counts[int(key)] = int(count)
        histogram.total = typing.cast(int, data.get("total", 0))
        histogram.underflow = typing.cast(int, data.get("underflow", 0))
        histogram.min_value = typing.cast(typing.Optional[float], data.get("min"))
        histogram.max_value = typing.cast(typing.Optional[float], data.get("max"))
        return histogram

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LogHistogram(total={self.total}, buckets={len(self.counts)}, "
            f"min={self.min_value}, max={self.max_value})"
        )
