"""Memory-bounded streaming metrics (`repro.stream`).

The exact measurement path retains one record per payload and
post-processes the full list per phase — O(offered load) memory and
work, the harness's own scalability ceiling (Gromit, arXiv:2208.11254,
makes the general point: a benchmark is only credible while its own
overhead stays flat). This subsystem is the constant-memory
alternative: per-phase counters, running extremes, an exact
(Shewchuk-summed) latency total and a log-bucketed histogram are folded
in as each payload resolves, after which the payload's record is
retired. ``BenchmarkConfig(stream_metrics=True)`` — or
``--stream-metrics`` on ``coconut run / experiment / search`` — turns
it on; the default path is untouched and byte-identical to previous
releases.

Equivalence contract (pinned by ``tests/stream/``): for any fixed seed
the streaming path reports the same expected/received/failed/
invalidated counts, the same t_fstx/t_lrtx/duration/TPS, the same
(correctly rounded) MFLS, and p50/p95/p99 within one histogram bucket
of the exact path, for any client/thread/worker merge order.
"""

from repro.stream.accumulator import (
    ClientStream,
    ExactSum,
    PhaseAccumulator,
    ResilienceAccumulator,
)
from repro.stream.histogram import BASE, RESOLUTION, LogHistogram
from repro.stream.spill import SpillSink, read_spill

__all__ = [
    "BASE",
    "RESOLUTION",
    "ClientStream",
    "ExactSum",
    "LogHistogram",
    "PhaseAccumulator",
    "ResilienceAccumulator",
    "SpillSink",
    "read_spill",
]
