"""Online per-phase metric accumulators: the streaming measurement path.

The exact path keeps one :class:`~repro.coconut.client.PayloadRecord`
per payload for the whole run and post-processes the full list; these
accumulators fold every quantity the Section 4.5 formulas need into
constant state *as each payload resolves*, so a record can be retired
the moment its confirmation (or rejection) arrives and client memory
stays bounded by the number of payloads in flight.

What is accumulated, and why it is enough:

* **Counters** — sent / received / failed / invalidated are sums, so
  per-event increments reproduce the exact path's counts identically.
* **t_fstx / t_lrtx** — running min of send times and max of receive
  times; min/max are order-insensitive, so the merged extremes equal
  the exact path's.
* **Latency sum** — kept as a Shewchuk exact-sum expansion (the
  algorithm behind :func:`math.fsum`): the partials represent the *true*
  real-number sum with no rounding, so accumulation order, client
  merge order and :mod:`repro.parallel` worker grouping cannot change
  the final (correctly rounded) mean.
* **Latency distribution** — a :class:`~repro.stream.histogram.LogHistogram`
  whose bucketing is a pure function of the value, making merges
  associative and percentiles exact to one bucket.
* **Resilience timeline** — when a fault plan's window touches the
  phase, the same bucketed-confirmations arithmetic that
  :meth:`repro.faults.metrics.ResilienceReport.from_records` performs
  over retained records is computed incrementally, window bounds being
  known before the phase starts.
"""

from __future__ import annotations

import math
import typing

from repro.faults.metrics import RECOVERY_TOLERANCE, ResilienceReport
from repro.stream.histogram import LogHistogram

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coconut.client import PayloadRecord
    from repro.stream.spill import SpillSink


class ExactSum:
    """Error-free running float sum (Shewchuk's expansion, as in fsum).

    ``add`` maintains a list of non-overlapping partials whose exact
    real sum equals the exact sum of everything added; ``value`` rounds
    that once, via :func:`math.fsum`. Because no intermediate rounding
    ever happens, the result is independent of accumulation and merge
    order — the property that makes streaming sums byte-identical
    across clients, threads and worker groupings.
    """

    __slots__ = ("partials",)

    def __init__(self) -> None:
        self.partials: typing.List[float] = []

    def add(self, x: float) -> None:
        """Fold one value into the expansion, exactly."""
        partials = self.partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        """Fold another expansion in; the union stays exact."""
        for partial in other.partials:
            self.add(partial)

    def value(self) -> float:
        """The correctly rounded sum of everything added."""
        return math.fsum(self.partials)


class ResilienceAccumulator:
    """Streaming replacement for ``ResilienceReport.from_records``.

    Armed before the phase runs (fault and phase windows are both known
    then), it ingests send and retire events and reproduces the exact
    path's report field by field: every count is a sum and the timeline
    buckets confirmations by end time, so the merged accumulators yield
    byte-identical arithmetic inputs.
    """

    __slots__ = (
        "fault_start",
        "fault_end",
        "phase_start",
        "phase_end",
        "bucket_width",
        "tolerance",
        "counts",
        "sent_in_window",
        "received_in_window",
        "committed_in_window",
        "pre_fault_commits",
    )

    def __init__(
        self,
        fault_start: float,
        fault_end: float,
        phase_start: float,
        phase_end: float,
        bucket_width: float = 1.0,
        tolerance: float = RECOVERY_TOLERANCE,
    ) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        if phase_end <= phase_start:
            raise ValueError("phase_end must be after phase_start")
        self.fault_start = fault_start
        self.fault_end = fault_end
        self.phase_start = phase_start
        self.phase_end = phase_end
        self.bucket_width = bucket_width
        self.tolerance = tolerance
        span = phase_end - phase_start
        self.counts = [0] * max(1, int(math.ceil(span / bucket_width)))
        self.sent_in_window = 0
        #: Received payloads whose *send* fell in the window; losses are
        #: ``sent_in_window`` minus this, which equals the exact path's
        #: per-record "sent in window and never received" count (pending
        #: payloads never retire as received, so they count as lost).
        self.received_in_window = 0
        self.committed_in_window = 0
        self.pre_fault_commits = 0

    def on_send(self, start_time: float) -> None:
        if self.fault_start <= start_time <= self.fault_end:
            self.sent_in_window += 1

    def on_receive(self, start_time: float, end_time: float) -> None:
        if self.fault_start <= start_time <= self.fault_end:
            self.received_in_window += 1
        if self.fault_start <= end_time <= self.fault_end:
            self.committed_in_window += 1
        if end_time < self.fault_start:
            self.pre_fault_commits += 1
        index = int((end_time - self.phase_start) / self.bucket_width)
        if 0 <= index < len(self.counts):
            self.counts[index] += 1

    def merge(self, other: "ResilienceAccumulator") -> None:
        """Fold another client's accumulator in (same windows required)."""
        if (
            self.fault_start != other.fault_start
            or self.fault_end != other.fault_end
            or self.phase_start != other.phase_start
            or self.phase_end != other.phase_end
            or self.bucket_width != other.bucket_width
        ):
            raise ValueError("cannot merge resilience accumulators with different windows")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sent_in_window += other.sent_in_window
        self.received_in_window += other.received_in_window
        self.committed_in_window += other.committed_in_window
        self.pre_fault_commits += other.pre_fault_commits

    def report(self) -> ResilienceReport:
        """The same report ``from_records`` builds, from the counters."""
        bucket_width = self.bucket_width
        bucket_count = len(self.counts)
        timeline = [count / bucket_width for count in self.counts]
        baseline_window = max(0.0, self.fault_start - self.phase_start)
        baseline_tps = (
            self.pre_fault_commits / baseline_window if baseline_window > 0 else 0.0
        )
        first_fault_bucket = max(
            0, int((self.fault_start - self.phase_start) / bucket_width)
        )
        last_fault_bucket = min(
            bucket_count - 1, int((self.fault_end - self.phase_start) / bucket_width)
        )
        if first_fault_bucket <= last_fault_bucket:
            dip_tps = min(timeline[first_fault_bucket : last_fault_bucket + 1])
        else:
            dip_tps = baseline_tps
        dip_depth = 0.0
        if baseline_tps > 0:
            dip_depth = max(0.0, 1.0 - dip_tps / baseline_tps)
        time_to_recover: typing.Optional[float] = None
        if baseline_tps > 0:
            threshold = self.tolerance * baseline_tps
            first_post_bucket = int(
                math.ceil((self.fault_end - self.phase_start) / bucket_width)
            )
            for index in range(max(0, first_post_bucket), bucket_count):
                if timeline[index] >= threshold:
                    bucket_end = self.phase_start + (index + 1) * bucket_width
                    time_to_recover = max(0.0, bucket_end - self.fault_end)
                    break
        return ResilienceReport(
            fault_start=self.fault_start,
            fault_end=self.fault_end,
            bucket_width=bucket_width,
            timeline=timeline,
            timeline_start=self.phase_start,
            baseline_tps=baseline_tps,
            dip_tps=dip_tps,
            dip_depth=dip_depth,
            time_to_recover=time_to_recover,
            sent_in_window=self.sent_in_window,
            committed_in_window=self.committed_in_window,
            lost_in_window=self.sent_in_window - self.received_in_window,
        )


class PhaseAccumulator:
    """One client's (or one merge's) running totals for one phase."""

    __slots__ = (
        "phase",
        "sent",
        "received",
        "failed",
        "invalidated",
        "first_send",
        "last_receive",
        "latency",
        "histogram",
        "resilience",
    )

    def __init__(self, phase: str) -> None:
        self.phase = phase
        self.sent = 0
        self.received = 0
        self.failed = 0
        self.invalidated = 0
        self.first_send: typing.Optional[float] = None
        self.last_receive: typing.Optional[float] = None
        self.latency = ExactSum()
        self.histogram = LogHistogram()
        #: Armed by the runner when a fault window touches the phase.
        self.resilience: typing.Optional[ResilienceAccumulator] = None

    # ------------------------------------------------------------------
    # Event ingestion

    def on_send(self, start_time: float, count: int = 1) -> None:
        """``count`` payloads offered at ``start_time``."""
        self.sent += count
        if self.first_send is None or start_time < self.first_send:
            self.first_send = start_time
        if self.resilience is not None:
            for __ in range(count):
                self.resilience.on_send(start_time)

    def on_retire(self, record: "PayloadRecord") -> None:
        """A payload resolved (received or failed); fold it in."""
        if record.received:
            self.received += 1
            if record.invalid:
                self.invalidated += 1
            end_time = typing.cast(float, record.end_time)
            latency = end_time - record.start_time
            self.latency.add(latency)
            self.histogram.record(latency)
            if self.last_receive is None or end_time > self.last_receive:
                self.last_receive = end_time
            if self.resilience is not None:
                self.resilience.on_receive(record.start_time, end_time)
        elif record.status == "failed":
            self.failed += 1

    # ------------------------------------------------------------------
    # Reading and merging

    @property
    def mean_latency(self) -> float:
        """Correctly rounded mean finalization latency."""
        if self.received == 0:
            return 0.0
        return self.latency.value() / self.received

    def merge(self, other: "PhaseAccumulator") -> None:
        """Fold another accumulator for the same phase in."""
        if self.phase != other.phase:
            raise ValueError(
                f"cannot merge accumulators of phases {self.phase!r} and {other.phase!r}"
            )
        self.sent += other.sent
        self.received += other.received
        self.failed += other.failed
        self.invalidated += other.invalidated
        if other.first_send is not None and (
            self.first_send is None or other.first_send < self.first_send
        ):
            self.first_send = other.first_send
        if other.last_receive is not None and (
            self.last_receive is None or other.last_receive > self.last_receive
        ):
            self.last_receive = other.last_receive
        self.latency.merge(other.latency)
        self.histogram.merge(other.histogram)
        if other.resilience is not None:
            if self.resilience is None:
                raise ValueError("cannot merge an armed accumulator into an unarmed one")
            self.resilience.merge(other.resilience)

    @classmethod
    def merged(
        cls, accumulators: typing.Sequence["PhaseAccumulator"], phase: str
    ) -> "PhaseAccumulator":
        """A fresh accumulator holding the union of several clients'."""
        result = cls(phase)
        if accumulators and accumulators[0].resilience is not None:
            first = accumulators[0].resilience
            result.resilience = ResilienceAccumulator(
                fault_start=first.fault_start,
                fault_end=first.fault_end,
                phase_start=first.phase_start,
                phase_end=first.phase_end,
                bucket_width=first.bucket_width,
                tolerance=first.tolerance,
            )
        for accumulator in accumulators:
            result.merge(accumulator)
        return result

    def to_dict(self) -> typing.Dict[str, object]:
        """JSON-ready snapshot (the latency sum is rounded once here)."""
        return {
            "phase": self.phase,
            "sent": self.sent,
            "received": self.received,
            "failed": self.failed,
            "invalidated": self.invalidated,
            "first_send": self.first_send,
            "last_receive": self.last_receive,
            "latency_sum": self.latency.value(),
            "histogram": self.histogram.to_dict(),
        }


class ClientStream:
    """A client's streaming state: accumulators, spill, live-record peak."""

    __slots__ = ("client_id", "accumulators", "sink", "peak_live", "spilled")

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id
        self.accumulators: typing.Dict[str, PhaseAccumulator] = {}
        #: Optional full-fidelity record sink; shared across clients.
        self.sink: typing.Optional["SpillSink"] = None
        #: Most records simultaneously tracked (in flight) at any point —
        #: the quantity the exact path lets grow to the total offered
        #: load and this path keeps bounded.
        self.peak_live = 0
        self.spilled = 0

    def begin_phase(self, phase: str) -> PhaseAccumulator:
        """The phase's accumulator, created on first use."""
        accumulator = self.accumulators.get(phase)
        if accumulator is None:
            accumulator = PhaseAccumulator(phase)
            self.accumulators[phase] = accumulator
        return accumulator

    def accumulator(self, phase: str) -> PhaseAccumulator:
        """The phase's accumulator (must exist)."""
        return self.accumulators[phase]

    def note_live(self, live: int) -> None:
        """Track the in-flight record high-water mark."""
        if live > self.peak_live:
            self.peak_live = live

    def retire(self, phase: str, record: "PayloadRecord") -> None:
        """Fold a resolved record in and spill it if a sink is attached."""
        self.accumulators[phase].on_retire(record)
        if self.sink is not None:
            self.sink.write_record(self.client_id, record)
            self.spilled += 1

    def expire(self, phase: str, record: "PayloadRecord") -> None:
        """A record still pending at phase teardown; spill only.

        Pending payloads already count in ``sent`` (and as in-window
        losses when resilience is armed), so no counters move here.
        """
        if self.sink is not None:
            self.sink.write_record(self.client_id, record)
            self.spilled += 1
