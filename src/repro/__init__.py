"""Reproduction of "An End-to-End Performance Comparison of Seven
Permissioned Blockchain Systems" (Geyer et al., Middleware '23).

The package reimplements the paper's COCONUT benchmarking framework and
protocol-level models of the seven systems it evaluates, on top of a
deterministic discrete-event simulation. Quick start::

    from repro import BenchmarkConfig, BenchmarkRunner

    config = BenchmarkConfig(system="fabric", iel="KeyValue",
                             rate_limit=200, scale=0.05, repetitions=1)
    result = BenchmarkRunner().run(config)
    print(result.phase("Set").mtps.mean)

Sub-packages: :mod:`repro.sim` (simulation kernel), :mod:`repro.net`
(network), :mod:`repro.crypto`, :mod:`repro.storage`,
:mod:`repro.consensus` (six protocol engines), :mod:`repro.iel` (smart
contracts), :mod:`repro.chains` (the seven system models),
:mod:`repro.coconut` (the benchmarking framework),
:mod:`repro.experiments` (every paper table and figure),
:mod:`repro.parallel` (multi-process execution + result caching) and
:mod:`repro.analysis`.
"""

from repro.chains import DeploymentSpec, SYSTEM_NAMES, create_system
from repro.coconut import BenchmarkConfig, BenchmarkRunner, ResultStore
from repro.experiments import EXPERIMENT_IDS, build_experiment

__version__ = "1.1.0"

from repro.parallel import (  # noqa: E402 - needs __version__ for fingerprints
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    build_executor,
)

__all__ = [
    "BenchmarkConfig",
    "BenchmarkRunner",
    "DeploymentSpec",
    "EXPERIMENT_IDS",
    "ParallelExecutor",
    "ResultCache",
    "ResultStore",
    "SerialExecutor",
    "SYSTEM_NAMES",
    "__version__",
    "build_executor",
    "build_experiment",
    "create_system",
]
