"""Parallel benchmark execution with content-addressed result caching.

Independent benchmark units (experiment cases, sweep points, resilience
scenarios) fan out over a ``multiprocessing`` pool and/or skip execution
entirely when a prior run with an identical fingerprint is cached.
Determinism guarantee: for any jobs count, per-unit results are
byte-identical to the serial path — every unit owns its seeded RNG
streams and workers rebuild rigs from the same picklable config.
"""

from repro.parallel.cache import CachedUnit, ResultCache
from repro.parallel.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    UnitOutcome,
    build_executor,
    execute_unit,
)
from repro.parallel.fingerprint import config_payload, unit_fingerprint

__all__ = [
    "CachedUnit",
    "Executor",
    "ParallelExecutor",
    "ResultCache",
    "SerialExecutor",
    "UnitOutcome",
    "build_executor",
    "config_payload",
    "execute_unit",
    "unit_fingerprint",
]
