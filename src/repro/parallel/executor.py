"""Executors: fan independent benchmark units out over worker processes.

The paper's COCONUT framework distributes benchmark execution across
client hosts (Section 4.3); here the analogous lever is running
independent *units* — experiment cases, sweep points, resilience
scenarios — concurrently. Each unit already owns its seeded RNG streams
(the rig is rebuilt per repetition from ``seed``), so units share no
state and the fan-out cannot change any result: a worker receives a
picklable :class:`~repro.coconut.config.BenchmarkConfig`, rebuilds the
rig exactly as the serial path would, and sends back JSON-ready dicts.
For any jobs count the per-unit output is byte-identical to a serial
run, which ``tests/parallel/test_executor.py`` asserts.

Both executors optionally consult a
:class:`~repro.parallel.cache.ResultCache`: units whose fingerprint is
already stored are not re-run at all.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import typing

from repro.coconut.config import BenchmarkConfig
from repro.coconut.results import UnitResult
from repro.coconut.runner import BenchmarkRunner
from repro.faults.metrics import ResilienceReport
from repro.parallel.cache import ResultCache
from repro.parallel.fingerprint import unit_fingerprint


@dataclasses.dataclass
class UnitOutcome:
    """One executed (or cache-restored) benchmark unit."""

    config: BenchmarkConfig
    result: UnitResult
    #: Phase -> report for phases the unit's fault plan touched.
    resilience: typing.Dict[str, ResilienceReport]
    cached: bool = False
    fingerprint: typing.Optional[str] = None


def execute_unit(config: BenchmarkConfig) -> typing.Dict[str, typing.Any]:
    """Run one unit in the current process; returns JSON-ready payloads.

    This is the single execution path shared by serial and pooled
    executors (and the function workers run), so every mode produces
    identical payloads. Workers never pickle a rig back — the runner
    drops rigs and only dicts cross the process boundary.
    """
    runner = BenchmarkRunner(keep_last_rig=False)
    result = runner.run(config)
    return {
        "unit": result.to_dict(),
        "resilience": {
            phase: report.to_dict() for phase, report in runner.last_resilience.items()
        },
    }


def _pool_entry(
    item: typing.Tuple[int, BenchmarkConfig]
) -> typing.Tuple[int, typing.Dict[str, typing.Any]]:
    """Worker entry point: (index, config) -> (index, payload)."""
    index, config = item
    return index, execute_unit(config)


class Executor:
    """Base executor: cache bookkeeping plus aggregated progress."""

    #: Worker processes used for cache misses (1 = in-process).
    jobs = 1

    def __init__(
        self,
        cache: typing.Optional[ResultCache] = None,
        progress: typing.Optional[typing.Callable[[str], None]] = None,
    ) -> None:
        self.cache = cache
        self.progress = progress or (lambda message: None)
        #: Units actually executed across this executor's lifetime.
        self.ran = 0
        #: Units restored from the cache instead of executed.
        self.from_cache = 0

    def run_units(
        self, configs: typing.Iterable[BenchmarkConfig]
    ) -> typing.List[UnitOutcome]:
        """Run every unit, restoring cache hits; preserves input order."""
        configs = list(configs)
        total = len(configs)
        outcomes: typing.List[typing.Optional[UnitOutcome]] = [None] * total
        fingerprints: typing.List[typing.Optional[str]] = [None] * total
        pending: typing.List[typing.Tuple[int, BenchmarkConfig]] = []
        done = 0
        for index, config in enumerate(configs):
            if self.cache is not None:
                fingerprints[index] = unit_fingerprint(config)
                hit = self.cache.get(fingerprints[index])
                if hit is not None:
                    outcomes[index] = UnitOutcome(
                        config=config,
                        result=hit.result,
                        resilience=hit.resilience,
                        cached=True,
                        fingerprint=fingerprints[index],
                    )
                    self.from_cache += 1
                    done += 1
                    self.progress(f"[{done}/{total}] {config.label()} (cached)")
                    continue
            pending.append((index, config))
        for index, payload in self._execute(pending):
            config = configs[index]
            resilience = {
                phase: ResilienceReport.from_dict(report)
                for phase, report in payload["resilience"].items()
            }
            result = UnitResult.from_dict(payload["unit"])
            if self.cache is not None and fingerprints[index] is not None:
                self.cache.put(fingerprints[index], result, resilience)
            outcomes[index] = UnitOutcome(
                config=config,
                result=result,
                resilience=resilience,
                cached=False,
                fingerprint=fingerprints[index],
            )
            self.ran += 1
            done += 1
            self.progress(f"[{done}/{total}] {config.label()}")
        return typing.cast(typing.List[UnitOutcome], outcomes)

    def _execute(
        self, pending: typing.Sequence[typing.Tuple[int, BenchmarkConfig]]
    ) -> typing.Iterator[typing.Tuple[int, typing.Dict[str, typing.Any]]]:
        """Yield (index, payload) for every pending unit, any order."""
        raise NotImplementedError

    def summary(self) -> str:
        """One-line accounting for CLI output."""
        text = f"executor: {self.ran} ran, {self.from_cache} cached (jobs={self.jobs})"
        if self.cache is not None:
            text += f"; {self.cache.summary()}"
        return text


class SerialExecutor(Executor):
    """Runs units one after another in the current process."""

    def _execute(self, pending):
        for index, config in pending:
            yield index, execute_unit(config)


class ParallelExecutor(Executor):
    """Fans units out over a multiprocessing worker pool.

    Workers rebuild the rig from the pickled config and return plain
    dicts; completion order is arbitrary but results are re-sequenced by
    index, so output order (and content) matches the serial path.
    """

    def __init__(
        self,
        jobs: int = 2,
        cache: typing.Optional[ResultCache] = None,
        progress: typing.Optional[typing.Callable[[str], None]] = None,
        mp_context: typing.Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        super().__init__(cache=cache, progress=progress)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._mp_context = mp_context

    def _context(self) -> multiprocessing.context.BaseContext:
        if self._mp_context is not None:
            return self._mp_context
        try:
            # Fork is cheapest where available (no re-import per worker).
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context("spawn")

    def _execute(self, pending):
        if self.jobs == 1 or len(pending) <= 1:
            for index, config in pending:
                yield index, execute_unit(config)
            return
        with self._context().Pool(processes=min(self.jobs, len(pending))) as pool:
            for index, payload in pool.imap_unordered(_pool_entry, pending):
                yield index, payload


def build_executor(
    jobs: int = 1,
    cache_dir: typing.Optional[str] = None,
    progress: typing.Optional[typing.Callable[[str], None]] = None,
) -> Executor:
    """The executor the CLI flags describe (``--jobs``/``--cache-dir``)."""
    cache = ResultCache(cache_dir) if cache_dir else None
    if jobs > 1:
        return ParallelExecutor(jobs=jobs, cache=cache, progress=progress)
    return SerialExecutor(cache=cache, progress=progress)
