"""Content-addressed cache of benchmark unit results.

One JSON file per fingerprint (see :mod:`repro.parallel.fingerprint`);
an entry stores the ``UnitResult`` payload plus any per-phase resilience
reports, so a cache hit restores everything an executor returns for a
freshly run unit. Corrupt or mismatched entries are treated as misses
and silently overwritten — the cache is a pure accelerator, never a
source of truth.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from repro.coconut.results import UnitResult
from repro.faults.metrics import ResilienceReport


@dataclasses.dataclass
class CachedUnit:
    """One cache entry, deserialised."""

    result: UnitResult
    resilience: typing.Dict[str, ResilienceReport]


class ResultCache:
    """Persists unit results keyed by their content fingerprint."""

    def __init__(self, directory: typing.Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, fingerprint: str) -> pathlib.Path:
        """File path of one entry."""
        return self.directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> typing.Optional[CachedUnit]:
        """The cached unit, or None (counted as a miss)."""
        path = self.path_for(fingerprint)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("fingerprint") != fingerprint:
            self.misses += 1
            return None
        try:
            entry = CachedUnit(
                result=UnitResult.from_dict(data["unit"]),
                resilience={
                    phase: ResilienceReport.from_dict(report)
                    for phase, report in data.get("resilience", {}).items()
                },
            )
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        fingerprint: str,
        result: UnitResult,
        resilience: typing.Optional[typing.Mapping[str, ResilienceReport]] = None,
    ) -> pathlib.Path:
        """Store one unit; returns the entry's path."""
        payload = {
            "fingerprint": fingerprint,
            "label": result.label,
            "unit": result.to_dict(),
            "resilience": {
                phase: report.to_dict() for phase, report in (resilience or {}).items()
            },
        }
        path = self.path_for(fingerprint)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    def __len__(self) -> int:
        return sum(1 for __ in self.directory.glob("*.json"))

    def summary(self) -> str:
        """One-line hit/miss accounting for CLI output."""
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{len(self)} entries in {self.directory}"
        )
