"""Stable content fingerprints for benchmark units.

A fingerprint captures everything that determines a unit's result: the
full :class:`~repro.coconut.config.BenchmarkConfig` — including scale,
repetitions and seed, the exact fields a worker rebuilds its rig from —
plus a code-version marker so a cache populated by one release of the
simulator is never replayed against another. The simulation is
deterministic, so equal fingerprints imply byte-identical
``UnitResult.to_dict()`` payloads; that equivalence is what makes the
:class:`~repro.parallel.cache.ResultCache` safe to consult.

The marker defaults to ``repro.__version__``. A cache directory
therefore survives re-runs within one checkout but is invalidated by a
version bump; callers that want a finer grain (e.g. a git commit hash)
can pass their own ``code_version``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coconut.config import BenchmarkConfig

#: Bumped whenever the payload layout below changes shape, so caches
#: written by an older fingerprint scheme never collide with new ones.
#: 2: BenchmarkConfig grew the ``workload`` field.
#: 3: BenchmarkConfig grew ``stream_metrics`` (streamed results carry
#:    histogram fields, so the two paths must never share a cache slot).
FINGERPRINT_SCHEMA = 3


def _default_code_version() -> str:
    """The package version, read lazily to avoid an import cycle."""
    import repro

    return getattr(repro, "__version__", "0")


def config_payload(config: "BenchmarkConfig") -> typing.Dict[str, object]:
    """A JSON-ready dict of every result-determining config field.

    Latency models are identified by their ``describe()`` string (which
    encodes class and parameters); fault plans by their JSON form.
    ``params`` is key-sorted so insertion order cannot change the
    fingerprint.
    """
    payload: typing.Dict[str, object] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if field.name == "latency":
            value = None if value is None else value.describe()
        elif field.name == "fault_plan":
            value = None if not value else json.loads(value.to_json())
        elif field.name == "workload":
            # The default spec fingerprints like None: it *is* the
            # legacy workload, and produces byte-identical results.
            value = None if value is None or value.is_default else value.to_dict()
        elif field.name == "params":
            value = {str(key): value[key] for key in sorted(value)}
        elif field.name == "phases":
            value = None if value is None else list(value)
        payload[field.name] = value
    return payload


def unit_fingerprint(
    config: "BenchmarkConfig", code_version: typing.Optional[str] = None
) -> str:
    """Hex SHA-256 fingerprint of one benchmark unit."""
    blob = json.dumps(
        {
            "schema": FINGERPRINT_SCHEMA,
            "code": code_version if code_version is not None else _default_code_version(),
            "config": config_payload(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
