"""The ``coconut`` command-line interface.

Subcommands:

* ``coconut list`` — systems, IELs and experiments available.
* ``coconut run`` — one benchmark unit with explicit settings.
* ``coconut experiment`` — reproduce one paper table or figure.
"""

from __future__ import annotations

import argparse
import os
import sys
import typing

from repro.chains.registry import SYSTEM_NAMES
from repro.coconut.config import BenchmarkConfig, UNIT_PHASES
from repro.coconut.report import unit_summary
from repro.coconut.results import ResultStore
from repro.coconut.runner import BenchmarkRunner
from repro.experiments.registry import EXPERIMENT_IDS, build_experiment
from repro.experiments.sweeps import SWEEPS, build_sweep
from repro.net.latency import EUROPEAN_WAN_LATENCY


def _positive_int(text: str) -> int:
    """argparse type for flags that need an integer >= 1 (e.g. --jobs).

    Rejecting at parse time keeps a bad value out of the multiprocessing
    pool, with the same clear-error style as the REPRO_SCALE/REPRO_REPS
    checks.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def _parse_params(raw: typing.Sequence[str]) -> typing.Dict[str, object]:
    params: typing.Dict[str, object] = {}
    for item in raw:
        if "=" not in item:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        key, value = item.split("=", 1)
        try:
            params[key] = float(value) if "." in value else int(value)
        except ValueError:
            params[key] = value
    return params


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.search import STRATEGIES

    print("systems:     " + ", ".join(SYSTEM_NAMES))
    print("iels:        " + ", ".join(sorted(UNIT_PHASES)))
    print("experiments: " + ", ".join(EXPERIMENT_IDS))
    print("sweeps:      " + ", ".join(sorted(SWEEPS)))
    print("strategies:  " + ", ".join(sorted(STRATEGIES)))
    return 0


def _load_workload(path: typing.Optional[str], command: str):
    """The WorkloadSpec ``--workload`` names, or None."""
    if not path:
        return None
    from repro.workloads import WorkloadSpec

    try:
        return WorkloadSpec.from_json_file(path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"coconut {command}: error: bad workload spec: {error}")


def _cmd_run(args: argparse.Namespace) -> int:
    fault_plan = None
    if args.faults:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_json_file(args.faults)
        except (OSError, ValueError) as error:
            raise SystemExit(f"coconut run: error: bad fault plan: {error}")
    workload = _load_workload(args.workload, "run")
    try:
        config = BenchmarkConfig(
            system=args.system,
            iel=args.iel,
            rate_limit=args.rate,
            params=_parse_params(args.param),
            ops_per_transaction=args.ops,
            txs_per_batch=args.batch,
            node_count=args.nodes,
            repetitions=args.repetitions,
            latency=EUROPEAN_WAN_LATENCY if args.netem else None,
            fault_plan=fault_plan,
            workload=workload,
            stream_metrics=args.stream_metrics,
            scale=args.scale,
            seed=args.seed,
        )
    except ValueError as error:
        raise SystemExit(f"coconut run: error: {error}")
    if args.stream_spill and not args.stream_metrics:
        raise SystemExit("coconut run: error: --stream-spill requires --stream-metrics")
    spill = None
    if args.stream_spill:
        from repro.stream import SpillSink

        spill_dir = os.path.dirname(os.path.abspath(args.stream_spill))
        if not os.path.isdir(spill_dir):
            raise SystemExit(
                f"coconut run: error: spill directory does not exist: {spill_dir}")
        spill = SpillSink(args.stream_spill)
    tracer = None
    if args.trace:
        from repro.trace import TraceConfig, Tracer

        try:
            trace_config = TraceConfig.from_spec(
                categories=args.trace_categories,
                sample_rate=args.trace_sample,
            )
        except ValueError as error:
            raise SystemExit(f"coconut run: error: {error}")
        # Fail on an unwritable destination now, not after the run.
        trace_dir = os.path.dirname(os.path.abspath(args.trace))
        if not os.path.isdir(trace_dir):
            raise SystemExit(
                f"coconut run: error: trace directory does not exist: {trace_dir}")
        tracer = Tracer(trace_config)
    store = ResultStore(args.output) if args.output else None
    check = args.check or args.check_level is not None
    runner = BenchmarkRunner(store=store, progress=print if args.verbose else None,
                             tracer=tracer, check=check,
                             check_level=args.check_level or "basic",
                             spill=spill)
    try:
        result = runner.run(config)
    finally:
        if spill is not None:
            spill.close()
    print(unit_summary(result))
    if runner.last_stream_peak is not None:
        line = f"stream: peak live records/client {runner.last_stream_peak}"
        if spill is not None:
            line += (f", {runner.last_stream_spilled} records spilled "
                     f"-> {args.stream_spill}")
        print(line)
    if args.verbose:
        from repro.coconut.report import latency_table

        print(latency_table(sorted(result.phases.items())))
    for phase, report in sorted(runner.last_resilience.items()):
        print(f"resilience [{phase}]: {report.render()}")
    if runner.last_invariants is not None:
        print(f"invariants: {runner.last_invariants.render()}")
    if args.blockstats and runner.last_rig is not None:
        from repro.analysis.blockstats import collect_block_stats

        node = runner.last_rig.system.nodes[runner.last_rig.system.node_ids[0]]
        print(f"block stats: {collect_block_stats(node.chain).describe()}")
    if tracer is not None:
        _export_trace(tracer, args)
    if runner.last_invariants is not None and not runner.last_invariants.ok:
        return 1
    return 0


def _export_trace(tracer, args: argparse.Namespace) -> None:
    """Write the collected trace and print a one-screen summary."""
    from repro.analysis.tracestats import render_span_stats
    from repro.trace import write_chrome_trace, write_jsonl

    # Spans still open (e.g. transactions that never confirmed) are
    # closed at the end of the run and flagged, so they stay visible.
    incomplete = tracer.drain_open(incomplete=True)
    if args.trace_format == "jsonl":
        write_jsonl(tracer, args.trace)
    else:
        write_chrome_trace(tracer, args.trace)
    print(
        f"trace: {len(tracer.spans)} spans ({incomplete} incomplete), "
        f"{len(tracer.events)} events -> {args.trace} [{args.trace_format}]"
    )
    print(render_span_stats(tracer, top=8))


def _build_executor(args: argparse.Namespace):
    """The executor ``--jobs``/``--cache-dir`` describe (None = legacy serial)."""
    if args.jobs == 1 and not args.cache_dir:
        return None
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    from repro.parallel import build_executor

    return build_executor(jobs=args.jobs, cache_dir=args.cache_dir,
                          progress=print if args.verbose else None)


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiment = build_experiment(args.experiment_id)
    executor = _build_executor(args)
    kwargs: typing.Dict[str, object] = {}
    if executor is not None:
        kwargs["executor"] = executor
    else:
        kwargs["runner"] = BenchmarkRunner(progress=print if args.verbose else None,
                                           keep_last_rig=False)
    if args.scale is not None:
        kwargs["scale"] = args.scale
    import inspect

    run_parameters = inspect.signature(experiment.run).parameters
    if args.systems and "systems" in run_parameters:
        kwargs["systems"] = args.systems.split(",")
    if args.stream_metrics:
        if "stream_metrics" not in run_parameters:
            raise SystemExit(
                f"coconut experiment: error: {args.experiment_id} does not "
                "support --stream-metrics"
            )
        kwargs["stream_metrics"] = True
    run = experiment.run(**kwargs)
    print(run.render())
    if executor is not None:
        print(executor.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = build_sweep(args.sweep_id)
    executor = _build_executor(args)
    if executor is not None:
        run = sweep.run(executor=executor, scale=args.scale)
    else:
        runner = BenchmarkRunner(progress=print if args.verbose else None,
                                 keep_last_rig=False)
        run = sweep.run(runner=runner, scale=args.scale)
    print(run.render())
    if executor is not None:
        print(executor.summary())
    return 0


def _parse_search_params(raw: typing.Sequence[str]):
    """``name=low:high:step`` specs -> Domain objects."""
    from repro.search import Domain

    domains = []
    for spec in raw:
        if "=" not in spec or spec.count(":") != 2:
            raise SystemExit(
                f"coconut search: error: --search-param expects "
                f"name=low:high:step, got {spec!r}"
            )
        name, bounds = spec.split("=", 1)
        pieces = bounds.split(":")
        integer = not any("." in piece for piece in pieces)
        try:
            low, high, step = (float(piece) for piece in pieces)
        except ValueError:
            raise SystemExit(
                f"coconut search: error: --search-param expects numeric "
                f"low:high:step, got {spec!r}"
            ) from None
        try:
            domains.append(Domain(name=name, low=low, high=high, step=step,
                                  integer=integer))
        except ValueError as error:
            raise SystemExit(f"coconut search: error: {error}") from None
    return tuple(domains)


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.experiments.capacity import CAPACITY_SPACES
    from repro.search import CapacitySearch, Domain, SearchSpace, SustainabilityJudge

    preset = CAPACITY_SPACES[args.system].rate
    try:
        rate = Domain(
            name="rate_limit",
            low=args.rate_min if args.rate_min is not None else preset.low,
            high=args.rate_max if args.rate_max is not None else preset.high,
            step=args.rate_step if args.rate_step is not None else preset.step,
        )
        space = SearchSpace(rate=rate, params=_parse_search_params(args.search_param))
        judge = SustainabilityJudge(max_loss_fraction=args.max_loss,
                                    slo_latency=args.slo)
    except ValueError as error:
        raise SystemExit(f"coconut search: error: {error}")
    config_kwargs: typing.Dict[str, object] = dict(
        params=_parse_params(args.param),
        ops_per_transaction=args.ops,
        txs_per_batch=args.batch,
        node_count=args.nodes,
    )
    workload = _load_workload(args.workload, "search")
    if workload is not None:
        try:
            workload.validate_for(args.iel, UNIT_PHASES[args.iel])
        except ValueError as error:
            raise SystemExit(f"coconut search: error: {error}")
        config_kwargs["workload"] = workload
    check = args.check or args.check_level is not None
    executor = _build_executor(args)
    if check and executor is not None:
        raise SystemExit(
            "coconut search: error: --check runs serially; drop --jobs/--cache-dir "
            "(cached units do not carry invariant reports)"
        )
    try:
        search = CapacitySearch(
            system=args.system,
            iel=args.iel,
            space=space,
            phase=args.phase,
            strategy=args.strategy,
            judge=judge,
            config_kwargs=config_kwargs,
            scale=args.scale,
            repetitions=args.repetitions,
            seed=args.seed,
            stream_metrics=args.stream_metrics,
        )
    except ValueError as error:
        raise SystemExit(f"coconut search: error: {error}")
    tracer = None
    if args.trace:
        from repro.trace import TraceConfig, Tracer

        trace_dir = os.path.dirname(os.path.abspath(args.trace))
        if not os.path.isdir(trace_dir):
            raise SystemExit(
                f"coconut search: error: trace directory does not exist: {trace_dir}")
        tracer = Tracer(TraceConfig())
    report = search.run(
        executor=executor,
        tracer=tracer,
        progress=print if args.verbose else None,
        check=check,
        check_level=args.check_level or "basic",
    )
    print(report.render())
    if executor is not None:
        print(executor.summary())
    if args.output:
        import json

        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report -> {args.output}")
    if tracer is not None:
        _export_trace(tracer, args)
    if check:
        failed = [r for r in search.last_invariants if not r.ok]
        print(f"invariants: {len(search.last_invariants) - len(failed)} probes ok, "
              f"{len(failed)} with violations")
        if failed:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="coconut",
        description="COCONUT blockchain benchmark reproduction (Middleware '23)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="show systems, IELs and experiments")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one benchmark unit")
    run_parser.add_argument("--system", required=True, choices=SYSTEM_NAMES)
    run_parser.add_argument("--iel", default="KeyValue", choices=sorted(UNIT_PHASES))
    run_parser.add_argument("--rate", type=int, default=100,
                            help="payloads/second per client (4 clients)")
    run_parser.add_argument("--param", action="append", default=[],
                            help="system parameter, key=value (repeatable)")
    run_parser.add_argument("--ops", type=int, default=1,
                            help="BitShares operations per transaction")
    run_parser.add_argument("--batch", type=int, default=1,
                            help="Sawtooth transactions per batch")
    run_parser.add_argument("--nodes", type=int, default=4)
    run_parser.add_argument("--repetitions", type=int, default=1)
    run_parser.add_argument("--netem", action="store_true",
                            help="emulate the paper's European WAN latency")
    run_parser.add_argument("--faults", metavar="PLAN_JSON",
                            help="inject faults from a JSON fault plan "
                                 '({"actions": [...]}; times are offsets '
                                 "from the first phase start)")
    run_parser.add_argument("--workload", metavar="PLAN_JSON",
                            help="offer load from a JSON workload spec "
                                 "(arrival process, access distribution, "
                                 "operation mix, per-phase overrides); "
                                 "see examples/workloads/")
    run_parser.add_argument("--stream-metrics", action="store_true",
                            help="measure through the constant-memory streaming "
                                 "path: records retire as they resolve and "
                                 "percentiles come from a log-bucketed "
                                 "histogram (exact to one bucket)")
    run_parser.add_argument("--stream-spill", metavar="PATH",
                            help="with --stream-metrics, append every retired "
                                 "record to PATH as JSONL for offline "
                                 "full-fidelity analysis")
    run_parser.add_argument("--scale", type=float, default=0.1,
                            help="window scale (1.0 = the paper's 300 s send window)")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--check", action="store_true",
                            help="run the protocol invariant oracles alongside "
                                 "the benchmark; a violation exits non-zero")
    run_parser.add_argument("--check-level", choices=("basic", "strict"),
                            default=None,
                            help="basic = all safety oracles; strict adds "
                                 "per-block merkle verification and full "
                                 "end-of-run chain re-validation "
                                 "(implies --check)")
    run_parser.add_argument("--output", help="directory to persist results into")
    run_parser.add_argument("--blockstats", action="store_true",
                            help="print block statistics after the run")
    run_parser.add_argument("--trace", metavar="PATH",
                            help="record an execution trace to PATH")
    run_parser.add_argument("--trace-format", choices=("chrome", "jsonl"),
                            default="chrome",
                            help="chrome = Perfetto/chrome://tracing JSON, "
                                 "jsonl = flat event log (default: chrome)")
    run_parser.add_argument("--trace-categories",
                            help="comma-separated trace categories to keep "
                                 "(e.g. net,consensus,client); default: all")
    run_parser.add_argument("--trace-sample", type=float, default=1.0,
                            help="deterministic sampling rate for per-transaction "
                                 "spans (default: 1.0)")
    run_parser.add_argument("--verbose", action="store_true")
    run_parser.set_defaults(handler=_cmd_run)

    experiment_parser = subparsers.add_parser(
        "experiment", help="reproduce one paper table or figure"
    )
    experiment_parser.add_argument("experiment_id", choices=EXPERIMENT_IDS)
    experiment_parser.add_argument("--scale", type=float, default=None)
    experiment_parser.add_argument("--systems", help="comma-separated subset (figures only)")
    experiment_parser.add_argument("--stream-metrics", action="store_true",
                                   help="measure every case through the "
                                        "constant-memory streaming path")
    experiment_parser.add_argument("--jobs", type=_positive_int, default=1,
                                   help="worker processes for independent cases "
                                        "(1 = in-process; results are identical "
                                        "for any jobs count)")
    experiment_parser.add_argument("--cache-dir", metavar="PATH",
                                   help="content-addressed result cache: cases whose "
                                        "config fingerprint is already stored are "
                                        "not re-run")
    experiment_parser.add_argument("--verbose", action="store_true")
    experiment_parser.set_defaults(handler=_cmd_experiment)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run one Table 5/6 parameter sweep"
    )
    sweep_parser.add_argument("sweep_id", choices=sorted(SWEEPS))
    sweep_parser.add_argument("--scale", type=float, default=None)
    sweep_parser.add_argument("--jobs", type=_positive_int, default=1,
                              help="worker processes for independent sweep points")
    sweep_parser.add_argument("--cache-dir", metavar="PATH",
                              help="content-addressed result cache directory")
    sweep_parser.add_argument("--verbose", action="store_true")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    search_parser = subparsers.add_parser(
        "search", help="find a system's maximum sustainable throughput"
    )
    search_parser.add_argument("--system", required=True, choices=SYSTEM_NAMES)
    search_parser.add_argument("--iel", default="KeyValue", choices=sorted(UNIT_PHASES))
    search_parser.add_argument("--phase", default=None,
                               help="phase the judge watches (default: the "
                                    "phase the paper reports for the IEL)")
    search_parser.add_argument("--strategy", choices=("bisect", "grid"),
                               default="bisect",
                               help="bisect = exponential ramp-up then bisection "
                                    "(the paper's manual procedure, mechanized); "
                                    "grid = exhaustive oracle")
    search_parser.add_argument("--rate-min", type=_positive_int, default=None,
                               help="lowest per-client rate to consider "
                                    "(default: the system's preset window)")
    search_parser.add_argument("--rate-max", type=_positive_int, default=None,
                               help="highest per-client rate to consider")
    search_parser.add_argument("--rate-step", type=_positive_int, default=None,
                               help="rate grid step (the knee is resolved to "
                                    "one step)")
    search_parser.add_argument("--search-param", action="append", default=[],
                               metavar="NAME=LOW:HIGH:STEP",
                               help="also search a system parameter's domain, "
                                    "e.g. MaxMessageCount=100:2000:100 "
                                    "(repeatable; grids are crossed)")
    search_parser.add_argument("--param", action="append", default=[],
                               help="fixed system parameter, key=value (repeatable)")
    search_parser.add_argument("--ops", type=int, default=1,
                               help="BitShares operations per transaction")
    search_parser.add_argument("--batch", type=int, default=1,
                               help="Sawtooth transactions per batch")
    search_parser.add_argument("--nodes", type=int, default=4)
    search_parser.add_argument("--max-loss", type=float, default=0.02,
                               help="tolerated lost-transaction fraction "
                                    "(default: 0.02)")
    search_parser.add_argument("--slo", type=float, default=None,
                               help="finalization-latency SLO in seconds "
                                    "(default: none — loss/drain only)")
    search_parser.add_argument("--scale", type=float, default=0.05,
                               help="window scale per probe (rate metrics are "
                                    "stable across scale)")
    search_parser.add_argument("--repetitions", type=int, default=1)
    search_parser.add_argument("--seed", type=int, default=0)
    search_parser.add_argument("--jobs", type=_positive_int, default=1,
                               help="worker processes for independent probes "
                                    "of one search round")
    search_parser.add_argument("--cache-dir", metavar="PATH",
                               help="content-addressed result cache: repeated "
                                    "probes (e.g. a grid oracle after a "
                                    "bisection) are not re-run")
    search_parser.add_argument("--check", action="store_true",
                               help="run the protocol invariant oracles on every "
                                    "probe; violations exit non-zero")
    search_parser.add_argument("--check-level", choices=("basic", "strict"),
                               default=None, help="implies --check")
    search_parser.add_argument("--workload", metavar="PLAN_JSON",
                               help="offer load from a JSON workload spec "
                                    "during every probe")
    search_parser.add_argument("--stream-metrics", action="store_true",
                               help="measure every probe through the "
                                    "constant-memory streaming path (long "
                                    "high-rate probes stay memory-bounded)")
    search_parser.add_argument("--output", metavar="PATH",
                               help="write the capacity report as JSON to PATH")
    search_parser.add_argument("--trace", metavar="PATH",
                               help="record search-level probe spans to PATH")
    search_parser.add_argument("--trace-format", choices=("chrome", "jsonl"),
                               default="chrome")
    search_parser.add_argument("--verbose", action="store_true")
    search_parser.set_defaults(handler=_cmd_search)

    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
