"""Capacity experiments: automated MTPS ceilings for all seven systems.

The paper's Figure 3 grid reports each system's best observed MTPS per
benchmark after a manual rate sweep; these experiments produce the same
comparison automatically. One :class:`CapacityExperiment` per IEL runs a
:class:`~repro.search.engine.CapacitySearch` against every system over a
per-system rate window wide enough to bracket its knee (Corda's tens of
payloads/s and Fabric's thousands need very different grids), and the
table reports the knee operating point, the MTPS there, and how many
probes the search spent.

A system with no sustainable point in its window at the configured
scale is a *finding*, not an error — e.g. Diem's KeyValue unit loses
transactions at every rate under shortened windows because its mempool
drain is slower than the scaled listen window (see the divergence notes
in EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.chains.registry import SYSTEM_NAMES
from repro.coconut.runner import BenchmarkRunner
from repro.search.engine import REPORTED_PHASES, CapacitySearch
from repro.search.report import CapacityReport
from repro.search.space import SearchSpace, rate_space

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.executor import Executor

#: Per-system rate windows (per-client payloads/s). Wide enough that the
#: knee of every IEL lands inside; coarse enough that a grid oracle
#: stays affordable. The aggregate RL column is these times four.
CAPACITY_SPACES: typing.Dict[str, SearchSpace] = {
    "corda_os": rate_space(1, 16, 1),
    "corda_enterprise": rate_space(1, 16, 1),
    "bitshares": rate_space(25, 400, 25),
    "fabric": rate_space(25, 400, 25),
    "quorum": rate_space(5, 80, 5),
    "sawtooth": rate_space(1, 16, 1),
    "diem": rate_space(5, 80, 5),
}

#: Window scale capacity searches probe at: rate metrics are stable
#: across scale (EXPERIMENTS.md verifies), so the knee *rate* transfers
#: to full windows while each probe stays cheap.
DEFAULT_SCALE = 0.05


@dataclasses.dataclass
class CapacityRow:
    """One system's capacity-search outcome."""

    system: str
    report: CapacityReport

    def cells(self) -> typing.List[str]:
        report = self.report
        if not report.found:
            return [self.system, "-", "0.00", "-", str(report.probe_count),
                    "no sustainable point"]
        assert report.mtps is not None and report.mfls is not None
        # Every probe sustainable means the window never bracketed the
        # ceiling — the knee is a lower bound, not an operating point.
        bracketed = any(not probe.sustainable for probe in report.probes)
        return [
            self.system,
            str(report.knee_aggregate_rate),
            f"{report.mtps.mean:.2f}",
            f"{report.mfls.mean:.2f}",
            str(report.probe_count),
            "knee found" if bracketed else "no saturation in window",
        ]


@dataclasses.dataclass
class CapacityRun:
    """The outcome of one capacity experiment."""

    experiment_id: str
    title: str
    rows: typing.List[CapacityRow]

    def row(self, system: str) -> CapacityRow:
        """Look one system's row up."""
        for row in self.rows:
            if row.system == system:
                return row
        raise KeyError(f"no row for {system!r} in {self.experiment_id}")

    def render(self) -> str:
        from repro.coconut.report import format_table

        table = format_table(
            ["System", "Knee RL", "MTPS", "MFLS (s)", "Probes", "Verdict"],
            [row.cells() for row in self.rows],
        )
        total = sum(row.report.probe_count for row in self.rows)
        return f"{self.title}\n{table}\ntotal probes: {total}"


class CapacityExperiment:
    """One IEL's automated capacity comparison across all systems."""

    def __init__(
        self,
        experiment_id: str,
        title: str,
        iel: str,
        strategy: str = "bisect",
        seed: int = 81,
    ) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.iel = iel
        self.phase = REPORTED_PHASES[iel]
        self.strategy = strategy
        self.seed = seed

    def search_for(
        self, system: str, scale: typing.Optional[float] = None
    ) -> CapacitySearch:
        """The capacity search one system runs."""
        config_kwargs: typing.Dict[str, object] = {}
        if system == "bitshares":
            # The paper's standard BitShares deployment finalizes every
            # second; without it the 10 s default interval dominates.
            config_kwargs["params"] = {"block_interval": 1.0}
        return CapacitySearch(
            system=system,
            iel=self.iel,
            space=CAPACITY_SPACES[system],
            strategy=self.strategy,
            config_kwargs=config_kwargs,
            scale=scale if scale is not None else DEFAULT_SCALE,
            seed=self.seed,
        )

    def run(
        self,
        runner: typing.Optional[BenchmarkRunner] = None,
        systems: typing.Optional[typing.Sequence[str]] = None,
        scale: typing.Optional[float] = None,
        executor: typing.Optional["Executor"] = None,
        progress: typing.Optional[typing.Callable[[str], None]] = None,
    ) -> CapacityRun:
        """Search every system's knee (strategies converge per system)."""
        systems = tuple(systems or SYSTEM_NAMES)
        rows: typing.List[CapacityRow] = []
        for system in systems:
            search = self.search_for(system, scale=scale)
            report = search.run(executor=executor, runner=runner, progress=progress)
            rows.append(CapacityRow(system=system, report=report))
        return CapacityRun(
            experiment_id=self.experiment_id, title=self.title, rows=rows
        )


def capacity_donothing() -> CapacityExperiment:
    """Maximum sustainable DoNothing throughput, all systems."""
    return CapacityExperiment(
        "capacity_donothing",
        "Capacity: maximum sustainable throughput - DoNothing (bisection search)",
        iel="DoNothing",
    )


def capacity_keyvalue() -> CapacityExperiment:
    """Maximum sustainable KeyValue-Set throughput, all systems."""
    return CapacityExperiment(
        "capacity_keyvalue",
        "Capacity: maximum sustainable throughput - KeyValue-Set (bisection search)",
        iel="KeyValue",
    )


def capacity_bankingapp() -> CapacityExperiment:
    """Maximum sustainable BankingApp-SendPayment throughput, all systems."""
    return CapacityExperiment(
        "capacity_bankingapp",
        "Capacity: maximum sustainable throughput - BankingApp-SendPayment "
        "(bisection search)",
        iel="BankingApp",
    )
