"""Parameter sweeps — the full Table 5/6 evaluation behind Section 6's
"parameter impact" lesson.

The paper's key finding: "the adaptation of the parameters we examined
only plays a rather minor role in the systems Fabric, Sawtooth and Diem,
[while] BitShares and especially Quorum show advantages of adapting
block finalization parameters". Each sweep below varies exactly one
parameter over the paper's evaluated values, holding the workload fixed,
and reports MTPS/MFLS per setting.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.coconut.config import BenchmarkConfig
from repro.coconut.results import PhaseResult
from repro.coconut.runner import BenchmarkRunner

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.executor import Executor


@dataclasses.dataclass
class SweepPoint:
    """One setting of the swept parameter with its result."""

    value: object
    phase_result: PhaseResult


@dataclasses.dataclass
class SweepRun:
    """A completed one-parameter sweep."""

    sweep_id: str
    title: str
    parameter: str
    points: typing.List[SweepPoint]

    def mtps_values(self) -> typing.List[float]:
        """MTPS per swept setting, in sweep order."""
        return [point.phase_result.mtps.mean for point in self.points]

    def spread(self) -> float:
        """Relative spread of MTPS across settings: (max-min)/max.

        The paper's "minor role" systems show a small spread; Quorum's
        stall shows up as a spread near 1.0.
        """
        values = [v for v in self.mtps_values()]
        top = max(values) if values else 0.0
        if top == 0:
            return 0.0
        return (top - min(values)) / top

    def render(self) -> str:
        """A per-setting MTPS/MFLS table."""
        from repro.coconut.report import format_table

        rows = []
        for point in self.points:
            phase = point.phase_result
            rows.append(
                [
                    f"{self.parameter}={point.value}",
                    f"{phase.mtps.mean:.2f}",
                    f"{phase.mfls.mean:.2f}",
                    f"{phase.received.mean:.0f}/{phase.expected.mean:.0f}",
                ]
            )
        table = format_table(["Setting", "MTPS", "MFLS (s)", "NoT"], rows)
        return f"{self.title}\n{table}\nspread={self.spread():.2f}"


@dataclasses.dataclass
class ParameterSweep:
    """Definition of a one-parameter sweep."""

    sweep_id: str
    title: str
    parameter: str
    values: typing.Sequence[object]
    config_kwargs: typing.Dict[str, object]
    phase: str
    #: Whether the swept parameter is a system param (Table 5/6) or a
    #: config field (ops_per_transaction, txs_per_batch).
    is_system_param: bool = True
    recommended_scale: float = 0.1

    def build_config(
        self,
        value: object,
        scale: typing.Optional[float] = None,
        repetitions: int = 1,
    ) -> BenchmarkConfig:
        """The benchmark configuration of one swept setting."""
        kwargs = dict(self.config_kwargs)
        if self.is_system_param:
            params = dict(typing.cast(dict, kwargs.get("params", {})))
            params[self.parameter] = value
            kwargs["params"] = params
        else:
            kwargs[self.parameter] = value
        return BenchmarkConfig(
            scale=scale if scale is not None else self.recommended_scale,
            repetitions=repetitions,
            **kwargs,
        )

    def run(
        self,
        runner: typing.Optional[BenchmarkRunner] = None,
        scale: typing.Optional[float] = None,
        repetitions: int = 1,
        executor: typing.Optional["Executor"] = None,
    ) -> SweepRun:
        """Execute the sweep, optionally fanning points out over an executor."""
        from repro.parallel.fingerprint import unit_fingerprint

        configs = [
            self.build_config(value, scale=scale, repetitions=repetitions)
            for value in self.values
        ]
        # Overlapping grid axes (repeated swept values, or values that
        # collapse to one config) must not dispatch duplicate units: the
        # executor would run them twice and count one as a cache hit.
        # Dedupe by config fingerprint, run each distinct unit once, and
        # fan the result back out to every point that shares it.
        fingerprints = [unit_fingerprint(config) for config in configs]
        distinct: typing.Dict[str, BenchmarkConfig] = {}
        for fingerprint, config in zip(fingerprints, configs):
            distinct.setdefault(fingerprint, config)
        unique_configs = list(distinct.values())
        if executor is not None:
            unique_units = [
                outcome.result for outcome in executor.run_units(unique_configs)
            ]
        else:
            # Sweeps run many units back to back; retaining each unit's
            # full simulated rig would accumulate every deployment in
            # memory (run_many drops rigs).
            runner = runner or BenchmarkRunner(keep_last_rig=False)
            unique_units = runner.run_many(unique_configs)
        by_fingerprint = dict(zip(distinct.keys(), unique_units))
        points = [
            SweepPoint(value=value, phase_result=by_fingerprint[fingerprint].phase(self.phase))
            for value, fingerprint in zip(self.values, fingerprints)
        ]
        return SweepRun(
            sweep_id=self.sweep_id,
            title=self.title,
            parameter=self.parameter,
            points=points,
        )


def fabric_max_message_count() -> ParameterSweep:
    """Table 5: Fabric MaxMessageCount in {100, 500, 1000, 2000}.

    Paper: "the modification of the MaxMessageCount value does not
    reveal a high impact" (Section 5.4).
    """
    return ParameterSweep(
        sweep_id="sweep_fabric_mm",
        title="Fabric MaxMessageCount sweep (BankingApp-SendPayment, RL=1600)",
        parameter="MaxMessageCount",
        values=(100, 500, 1000, 2000),
        config_kwargs=dict(system="fabric", iel="BankingApp", rate_limit=400, seed=551),
        phase="SendPayment",
    )


def diem_max_block_size() -> ParameterSweep:
    """Table 5: Diem max_block_size in {100, 500, 1000, 2000}.

    Paper: best values with BS >= 1000 (Section 5.7), differences "have
    only a minor impact on the overall performance" relative to the
    dominating losses.
    """
    return ParameterSweep(
        sweep_id="sweep_diem_bs",
        title="Diem max_block_size sweep (KeyValue-Set, RL=200)",
        parameter="max_block_size",
        values=(100, 500, 1000, 2000),
        config_kwargs=dict(system="diem", iel="KeyValue", rate_limit=50,
                           phases=("Set",), seed=552),
        phase="Set",
        recommended_scale=0.4,
    )


def bitshares_block_interval() -> ParameterSweep:
    """Table 6: BitShares block_interval in {1, 2, 5, 10} s.

    Finalization latency tracks the interval (Section 5.3), so the
    parameter matters for MFLS.
    """
    return ParameterSweep(
        sweep_id="sweep_bitshares_bi",
        title="BitShares block_interval sweep (DoNothing, RL=1600, 100 ops/tx)",
        parameter="block_interval",
        values=(1.0, 2.0, 5.0, 10.0),
        config_kwargs=dict(system="bitshares", iel="DoNothing", rate_limit=400,
                           ops_per_transaction=100, seed=553),
        phase="DoNothing",
    )


def quorum_blockperiod() -> ParameterSweep:
    """Table 6: Quorum istanbul.blockperiod in {1, 2, 5, 10} s.

    The decisive parameter: <= 2 s under RL=400 kills the system
    (Section 5.5).
    """
    return ParameterSweep(
        sweep_id="sweep_quorum_bp",
        title="Quorum istanbul.blockperiod sweep (BankingApp-Balance, RL=400)",
        parameter="istanbul.blockperiod",
        values=(1.0, 2.0, 5.0, 10.0),
        config_kwargs=dict(system="quorum", iel="BankingApp", rate_limit=100, seed=554),
        phase="Balance",
        recommended_scale=0.15,
    )


def sawtooth_publishing_delay() -> ParameterSweep:
    """Table 6: Sawtooth block_publishing_delay in {1, 2, 5, 10} s.

    Paper: "adjusting the ... block_publishing_delay value does not
    reveal any significant difference" (Section 5.6).
    """
    return ParameterSweep(
        sweep_id="sweep_sawtooth_pd",
        title="Sawtooth block_publishing_delay sweep (BankingApp-CreateAccount, RL=200)",
        parameter="block_publishing_delay",
        values=(1.0, 2.0, 5.0, 10.0),
        config_kwargs=dict(system="sawtooth", iel="BankingApp", rate_limit=50,
                           txs_per_batch=100, phases=("CreateAccount",), seed=555),
        phase="CreateAccount",
        recommended_scale=0.2,
    )


def bitshares_operations() -> ParameterSweep:
    """Section 4.4: BitShares with 1, 50, 100 operations per transaction.

    Per-transaction overhead dominates at 1 op (~590 payloads/s ceiling);
    100 ops reach the full offered rate.
    """
    return ParameterSweep(
        sweep_id="sweep_bitshares_ops",
        title="BitShares operations-per-transaction sweep (DoNothing, RL=1600)",
        parameter="ops_per_transaction",
        values=(1, 50, 100),
        config_kwargs=dict(system="bitshares", iel="DoNothing", rate_limit=400,
                           params={"block_interval": 1.0}, seed=556),
        phase="DoNothing",
        is_system_param=False,
    )


def sawtooth_batch_sizes() -> ParameterSweep:
    """Section 4.4: Sawtooth with 1, 50, 100 transactions per batch.

    Per-batch overhead caps single-transaction batches near 27/s; 100-tx
    batches reach ~100 payloads/s (Section 5.6).
    """
    return ParameterSweep(
        sweep_id="sweep_sawtooth_batch",
        title="Sawtooth transactions-per-batch sweep (DoNothing, RL=200)",
        parameter="txs_per_batch",
        values=(1, 50, 100),
        config_kwargs=dict(system="sawtooth", iel="DoNothing", rate_limit=50, seed=557),
        phase="DoNothing",
        is_system_param=False,
        recommended_scale=0.2,
    )


#: All sweeps, keyed by id.
SWEEPS: typing.Dict[str, typing.Callable[[], ParameterSweep]] = {
    "sweep_fabric_mm": fabric_max_message_count,
    "sweep_diem_bs": diem_max_block_size,
    "sweep_bitshares_bi": bitshares_block_interval,
    "sweep_quorum_bp": quorum_blockperiod,
    "sweep_sawtooth_pd": sawtooth_publishing_delay,
    "sweep_bitshares_ops": bitshares_operations,
    "sweep_sawtooth_batch": sawtooth_batch_sizes,
}


def build_sweep(sweep_id: str) -> ParameterSweep:
    """Construct one sweep by id."""
    if sweep_id not in SWEEPS:
        raise KeyError(f"unknown sweep {sweep_id!r}; known: {sorted(SWEEPS)}")
    return SWEEPS[sweep_id]()
