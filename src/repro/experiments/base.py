"""Experiment machinery: cases, paper values, comparison rendering.

An experiment is a list of cases; each case is one benchmark
configuration plus the phase whose numbers the paper reports and,
where the paper prints them, the reported values. Running an experiment
produces measured-vs-paper rows, which EXPERIMENTS.md records.

Scaling: simulated windows default to each case's ``recommended_scale``
(chosen so the case's dynamics — queue growth, stalls, deep-latency
confirmation — fit the shortened windows). ``REPRO_FULL_SCALE=1`` in the
environment restores the paper's full 300 s send windows;
``REPRO_SCALE=<x>`` forces a specific scale; ``REPRO_REPS=<n>`` forces a
repetition count (the paper uses 3; benches default to 1 for speed).
"""

from __future__ import annotations

import dataclasses
import os
import typing

from repro.coconut.config import BenchmarkConfig
from repro.coconut.results import PhaseResult
from repro.coconut.runner import BenchmarkRunner

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.executor import Executor


@dataclasses.dataclass(frozen=True)
class PaperValue:
    """Numbers the paper reports for one case (None = not printed)."""

    mtps: typing.Optional[float] = None
    mfls: typing.Optional[float] = None
    duration: typing.Optional[float] = None
    received: typing.Optional[float] = None
    expected: typing.Optional[float] = None

    def describe(self) -> str:
        """Compact rendering for comparison tables."""
        parts = []
        if self.mtps is not None:
            parts.append(f"MTPS={self.mtps:.2f}")
        if self.mfls is not None:
            parts.append(f"MFLS={self.mfls:.2f}s")
        if self.received is not None and self.expected is not None:
            parts.append(f"NoT={self.received:.0f}/{self.expected:.0f}")
        return " ".join(parts) if parts else "(not printed)"


@dataclasses.dataclass
class Case:
    """One benchmark configuration inside an experiment."""

    case_id: str
    config_kwargs: typing.Dict[str, object]
    phase: str
    paper: PaperValue = dataclasses.field(default_factory=PaperValue)
    recommended_scale: float = 0.1
    recommended_repetitions: int = 1
    #: Set when the case's phenomenon is slower than the scaled listen
    #: window: a zero-received measurement is then annotated as
    #: unobservable rather than presented as a bare zero.
    window_note: typing.Optional[str] = None

    def build_config(
        self,
        scale: typing.Optional[float] = None,
        repetitions: typing.Optional[int] = None,
        stream_metrics: typing.Optional[bool] = None,
    ) -> BenchmarkConfig:
        """Materialise the benchmark configuration, applying overrides."""
        env_scale = os.environ.get("REPRO_SCALE")
        if os.environ.get("REPRO_FULL_SCALE") == "1":
            effective_scale = 1.0
        elif scale is not None:
            effective_scale = scale
        elif env_scale:
            try:
                effective_scale = float(env_scale)
            except ValueError:
                raise ValueError(
                    f"REPRO_SCALE must be a number in (0, 1], got {env_scale!r}"
                ) from None
        else:
            effective_scale = self.recommended_scale
        env_reps = os.environ.get("REPRO_REPS")
        if repetitions is not None:
            effective_reps = repetitions
        elif env_reps:
            try:
                effective_reps = int(env_reps)
            except ValueError:
                raise ValueError(
                    f"REPRO_REPS must be a positive integer, got {env_reps!r}"
                ) from None
        else:
            effective_reps = self.recommended_repetitions
        kwargs = dict(self.config_kwargs)
        if stream_metrics is not None:
            # An override beats a case-level setting; None leaves the
            # case's own kwargs (usually absent -> exact path) alone.
            kwargs["stream_metrics"] = stream_metrics
        return BenchmarkConfig(
            scale=effective_scale, repetitions=effective_reps, **kwargs
        )


@dataclasses.dataclass
class CaseResult:
    """Measured numbers for one case, next to the paper's."""

    case: Case
    phase_result: PhaseResult

    @property
    def measured_mtps(self) -> float:
        return self.phase_result.mtps.mean

    @property
    def measured_mfls(self) -> float:
        return self.phase_result.mfls.mean

    def comparison_row(self) -> typing.List[str]:
        """One row of the paper-vs-measured table."""
        phase = self.phase_result
        measured = (
            f"MTPS={phase.mtps.mean:.2f} MFLS={phase.mfls.mean:.2f}s "
            f"NoT={phase.received.mean:.0f}/{phase.expected.mean:.0f} "
            f"D={phase.duration.mean:.1f}s"
        )
        if phase.received.mean == 0 and self.case.window_note:
            measured = f"{measured} ({self.case.window_note})"
        return [self.case.case_id, self.case.paper.describe(), measured]


@dataclasses.dataclass
class ExperimentRun:
    """The outcome of running an experiment."""

    experiment_id: str
    title: str
    case_results: typing.List[CaseResult]

    def case(self, case_id: str) -> CaseResult:
        """Look one case's result up."""
        for result in self.case_results:
            if result.case.case_id == case_id:
                return result
        raise KeyError(f"no case {case_id!r} in {self.experiment_id}")

    def render(self) -> str:
        """The paper-vs-measured comparison table."""
        from repro.coconut.report import format_table

        rows = [result.comparison_row() for result in self.case_results]
        table = format_table(["Case", "Paper", "Measured"], rows)
        return f"{self.title}\n{table}"


class Experiment:
    """A reproducible paper artifact: a named list of cases."""

    def __init__(self, experiment_id: str, title: str, cases: typing.Sequence[Case]) -> None:
        if not cases:
            raise ValueError(f"experiment {experiment_id!r} has no cases")
        ids = [case.case_id for case in cases]
        if len(ids) != len(set(ids)):
            raise ValueError(f"duplicate case ids in {experiment_id!r}")
        self.experiment_id = experiment_id
        self.title = title
        self.cases = list(cases)

    def run(
        self,
        runner: typing.Optional[BenchmarkRunner] = None,
        scale: typing.Optional[float] = None,
        repetitions: typing.Optional[int] = None,
        case_filter: typing.Optional[typing.Callable[[Case], bool]] = None,
        executor: typing.Optional["Executor"] = None,
        stream_metrics: bool = False,
    ) -> ExperimentRun:
        """Execute (a subset of) the experiment's cases.

        With an ``executor`` the cases fan out over its worker pool and
        result cache; otherwise they run serially through ``runner``.
        Both paths produce byte-identical per-case results — each case
        owns its seeded RNG streams.
        """
        selected = [
            case
            for case in self.cases
            if case_filter is None or case_filter(case)
        ]
        configs = [
            case.build_config(
                scale=scale,
                repetitions=repetitions,
                stream_metrics=stream_metrics or None,
            )
            for case in selected
        ]
        if executor is not None:
            units = [outcome.result for outcome in executor.run_units(configs)]
        else:
            # Experiments run many units back to back; like sweeps, they
            # must not accumulate one retained rig per case.
            runner = runner or BenchmarkRunner(keep_last_rig=False)
            units = runner.run_many(configs)
        case_results = [
            CaseResult(case=case, phase_result=unit.phase(case.phase))
            for case, unit in zip(selected, units)
        ]
        return ExperimentRun(
            experiment_id=self.experiment_id, title=self.title, case_results=case_results
        )
