"""Workload-model experiments: what the paper's generator cannot show.

The paper offers load at a fixed rate over disjoint per-thread key
spaces (Sections 4.1/4.3) — no two writes ever collide and arrivals are
perfectly smooth. These experiments run the same benchmark units under
declarative :mod:`repro.workloads` specs and report what that hides:

* ``skew_sweep_keyvalue`` — KeyValue read-modify-write under disjoint /
  uniform / zipfian / hotspot key access. On execute-order-validate
  systems (Fabric) hot keys turn into MVCC invalidations; on Corda they
  turn into notary rejections and cheaper vault scans; order-execute
  systems commit the same payload stream regardless — contention
  insensitivity is itself a finding.
* ``burst_capacity`` — constant vs. rate-preserving on/off bursts at
  the same average offered rate. Batch-interval systems absorb bursts
  in their block cadence; queue-bound systems pay for them in p99.
* ``mix_readwrite_keyvalue`` — Get/Set ratio sweep: how much write-path
  cost the read share buys back per system.

Rows report p50/p99 tails and the invalidated-transaction count next
to the paper's MTPS/MFLS/NoT, because those are where workload shape
shows up first.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.coconut.results import PhaseResult
from repro.coconut.runner import BenchmarkRunner
from repro.experiments.base import Case
from repro.workloads import AccessSpec, ArrivalSpec, PhaseOverride, WorkloadSpec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.executor import Executor

#: Moderate per-client rates, comfortably under each system's knee at
#: the default scale, so workload effects are not drowned by saturation.
WORKLOAD_RATES: typing.Dict[str, int] = {
    "corda_os": 4,
    "corda_enterprise": 4,
    "bitshares": 100,
    "fabric": 100,
    "quorum": 20,
    "sawtooth": 4,
    "diem": 20,
}

#: The access distributions the skew sweep compares.
SKEW_ACCESS: typing.Dict[str, AccessSpec] = {
    "disjoint": AccessSpec(kind="disjoint"),
    "uniform": AccessSpec(kind="uniform", key_space=200, shared=True),
    "zipfian": AccessSpec(kind="zipfian", theta=0.99, key_space=200, shared=True),
    "hotspot": AccessSpec(
        kind="hotspot", hot_fraction=0.1, hot_prob=0.9, key_space=200, shared=True
    ),
}


@dataclasses.dataclass
class WorkloadCaseResult:
    """Measured numbers for one workload case, tails included."""

    case: Case
    phase_result: PhaseResult

    def row(self) -> typing.List[str]:
        phase = self.phase_result
        return [
            self.case.case_id,
            f"{phase.mtps.mean:.2f}",
            f"{phase.mfls.mean:.2f}",
            f"{phase.p50.mean:.2f}",
            f"{phase.p99.mean:.2f}",
            f"{phase.received.mean:.0f}/{phase.expected.mean:.0f}",
            f"{phase.invalidated.mean:.0f}",
        ]


@dataclasses.dataclass
class WorkloadRun:
    """The outcome of one workload experiment."""

    experiment_id: str
    title: str
    case_results: typing.List[WorkloadCaseResult]

    def case(self, case_id: str) -> WorkloadCaseResult:
        """Look one case's result up."""
        for result in self.case_results:
            if result.case.case_id == case_id:
                return result
        raise KeyError(f"no case {case_id!r} in {self.experiment_id}")

    def render(self) -> str:
        from repro.coconut.report import format_table

        table = format_table(
            ["Case", "MTPS", "MFLS (s)", "p50 (s)", "p99 (s)", "NoT", "Invalid"],
            [result.row() for result in self.case_results],
        )
        return f"{self.title}\n{table}"


class WorkloadExperiment:
    """A named list of cases rendered with latency tails and conflicts."""

    def __init__(
        self, experiment_id: str, title: str, cases: typing.Sequence[Case]
    ) -> None:
        if not cases:
            raise ValueError(f"experiment {experiment_id!r} has no cases")
        ids = [case.case_id for case in cases]
        if len(ids) != len(set(ids)):
            raise ValueError(f"duplicate case ids in {experiment_id!r}")
        self.experiment_id = experiment_id
        self.title = title
        self.cases = list(cases)

    def run(
        self,
        runner: typing.Optional[BenchmarkRunner] = None,
        scale: typing.Optional[float] = None,
        repetitions: typing.Optional[int] = None,
        executor: typing.Optional["Executor"] = None,
        stream_metrics: bool = False,
    ) -> WorkloadRun:
        """Execute the cases serially or over an executor's pool."""
        configs = [
            case.build_config(
                scale=scale,
                repetitions=repetitions,
                stream_metrics=stream_metrics or None,
            )
            for case in self.cases
        ]
        if executor is not None:
            units = [outcome.result for outcome in executor.run_units(configs)]
        else:
            runner = runner or BenchmarkRunner(keep_last_rig=False)
            units = runner.run_many(configs)
        case_results = [
            WorkloadCaseResult(case=case, phase_result=unit.phase(case.phase))
            for case, unit in zip(self.cases, units)
        ]
        return WorkloadRun(
            experiment_id=self.experiment_id, title=self.title, case_results=case_results
        )


def _case(
    case_id: str,
    system: str,
    workload: WorkloadSpec,
    phase: str = "Set",
    phases: typing.Optional[typing.Tuple[str, ...]] = ("Set",),
    seed: int = 2330,
) -> Case:
    return Case(
        case_id=case_id,
        config_kwargs=dict(
            system=system,
            iel="KeyValue",
            rate_limit=WORKLOAD_RATES[system],
            phases=phases,
            workload=workload,
            seed=seed,
        ),
        phase=phase,
        recommended_scale=0.05,
    )


def skew_sweep_keyvalue() -> WorkloadExperiment:
    """KeyValue-Rmw under increasingly skewed key access."""
    systems = ("fabric", "quorum", "corda_os")
    cases = []
    for system in systems:
        for access_name, access in SKEW_ACCESS.items():
            spec = WorkloadSpec(
                name=f"skew-{access_name}",
                access=access,
                phases=(("Set", PhaseOverride(mix=(("Rmw", 1.0),))),),
            )
            cases.append(_case(f"{system} {access_name}", system, spec))
    return WorkloadExperiment(
        "skew_sweep_keyvalue",
        "Workloads: KeyValue read-modify-write under key skew "
        "(shared 200-key universe, theta=0.99)",
        cases,
    )


def burst_capacity() -> WorkloadExperiment:
    """Constant vs. rate-preserving burst arrivals, same average rate."""
    burst = WorkloadSpec(
        name="burst-5on-5off",
        arrival=ArrivalSpec(kind="burst", on_s=5.0, off_s=5.0),
    )
    cases = []
    for system in WORKLOAD_RATES:
        cases.append(_case(f"{system} constant", system, WorkloadSpec()))
        cases.append(_case(f"{system} burst", system, burst))
    return WorkloadExperiment(
        "burst_capacity",
        "Workloads: constant vs. on/off burst arrivals at equal average "
        "rate (5 s on / 5 s off, 2x burst factor)",
        cases,
    )


def mix_readwrite_keyvalue() -> WorkloadExperiment:
    """Get/Set ratio sweep over a uniform shared key universe."""
    systems = ("fabric", "quorum", "corda_os")
    mixes = {
        "0% reads": {"Set": 1.0},
        "50% reads": {"Get": 1.0, "Set": 1.0},
        "90% reads": {"Get": 9.0, "Set": 1.0},
    }
    access = AccessSpec(kind="uniform", key_space=200, shared=True)
    cases = []
    for system in systems:
        for mix_name, mix in mixes.items():
            spec = WorkloadSpec(
                name=f"mix-{mix_name.split('%')[0]}r",
                access=access,
                mix=tuple(sorted(mix.items())),
            )
            cases.append(_case(f"{system} {mix_name}", system, spec))
    return WorkloadExperiment(
        "mix_readwrite_keyvalue",
        "Workloads: Get/Set operation-mix sweep (uniform shared keys)",
        cases,
    )
