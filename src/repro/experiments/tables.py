"""The paper's per-system result tables (Tables 7-20).

Each experiment pairs the paper's printed rows (MTPS/MFLS from the odd
tables, received/expected NoT from the even ones) with the benchmark
configuration that produced them. Rate limiters are per client; the
tables' RL column is the aggregate over the four clients, so e.g. the
paper's "RL = 160" is ``rate_limit=40``.
"""

from __future__ import annotations

import typing

from repro.coconut.runner import BenchmarkRunner
from repro.experiments.base import Case, Experiment, ExperimentRun, PaperValue

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.executor import Executor


def table7_8_corda_os() -> Experiment:
    """Tables 7-8: Corda OS, KeyValue-Set."""
    return Experiment(
        "table7_8",
        "Tables 7-8: Corda OS - KeyValue-Set (MTPS/MFLS and NoT)",
        [
            Case(
                case_id="RL=20",
                config_kwargs=dict(system="corda_os", iel="KeyValue", rate_limit=5,
                                   phases=("Set",), seed=78),
                phase="Set",
                paper=PaperValue(mtps=4.08, mfls=151.93, received=1439.0, expected=6000.0),
                recommended_scale=0.25,
            ),
            Case(
                case_id="RL=160",
                config_kwargs=dict(system="corda_os", iel="KeyValue", rate_limit=40,
                                   phases=("Set",), seed=78),
                phase="Set",
                paper=PaperValue(mtps=1.04, mfls=227.39, received=374.33, expected=48000.0),
                recommended_scale=0.25,
            ),
        ],
    )


def table9_10_corda_enterprise() -> Experiment:
    """Tables 9-10: Corda Enterprise, KeyValue-Set."""
    return Experiment(
        "table9_10",
        "Tables 9-10: Corda Enterprise - KeyValue-Set (MTPS/MFLS and NoT)",
        [
            Case(
                case_id="RL=20",
                config_kwargs=dict(system="corda_enterprise", iel="KeyValue", rate_limit=5,
                                   phases=("Set",), seed=910),
                phase="Set",
                paper=PaperValue(mtps=12.84, mfls=22.81, received=4249.67, expected=6000.0),
                recommended_scale=0.25,
            ),
            Case(
                case_id="RL=160",
                config_kwargs=dict(system="corda_enterprise", iel="KeyValue", rate_limit=40,
                                   phases=("Set",), seed=910),
                phase="Set",
                paper=PaperValue(mtps=13.51, mfls=31.59, received=4571.0, expected=48000.0),
                recommended_scale=0.25,
            ),
        ],
    )


def table11_12_bitshares() -> Experiment:
    """Tables 11-12: BitShares, DoNothing, 100 operations per transaction."""
    return Experiment(
        "table11_12",
        "Tables 11-12: BitShares - DoNothing at RL=1600, block_interval=1s, 100 ops/tx",
        [
            Case(
                case_id="RL=1600 BI=1s",
                config_kwargs=dict(system="bitshares", iel="DoNothing", rate_limit=400,
                                   params={"block_interval": 1.0},
                                   ops_per_transaction=100, seed=1112),
                phase="DoNothing",
                paper=PaperValue(mtps=1599.89, mfls=1.09, received=487966.67, expected=480000.0),
                recommended_scale=0.1,
            ),
        ],
    )


def table13_14_fabric() -> Experiment:
    """Tables 13-14: Fabric, BankingApp-SendPayment, MaxMessageCount=100."""
    common = dict(system="fabric", iel="BankingApp",
                  params={"MaxMessageCount": 100}, seed=1314)
    return Experiment(
        "table13_14",
        "Tables 13-14: Fabric - BankingApp-SendPayment at MM=100",
        [
            Case(
                case_id="RL=800 MM=100",
                config_kwargs=dict(rate_limit=200, **common),
                phase="SendPayment",
                paper=PaperValue(mtps=801.36, mfls=0.22, received=240140.67, expected=240000.0),
                recommended_scale=0.1,
            ),
            Case(
                case_id="RL=1600 MM=100",
                config_kwargs=dict(rate_limit=400, **common),
                phase="SendPayment",
                paper=PaperValue(mtps=1285.29, mfls=6.66, received=408749.0, expected=480000.0),
                recommended_scale=0.1,
            ),
        ],
    )


def table15_16_quorum() -> Experiment:
    """Tables 15-16: Quorum, BankingApp-Balance, the blockperiod stall."""
    common = dict(system="quorum", iel="BankingApp", rate_limit=100, seed=1516)
    return Experiment(
        "table15_16",
        "Tables 15-16: Quorum - BankingApp-Balance at RL=400 (liveness failure at BP<=2)",
        [
            Case(
                case_id="RL=400 BP=2s",
                config_kwargs=dict(params={"istanbul.blockperiod": 2.0}, **common),
                phase="Balance",
                paper=PaperValue(mtps=0.0, mfls=0.0, received=0.0, expected=120000.0),
                recommended_scale=0.15,
            ),
            Case(
                case_id="RL=400 BP=5s",
                config_kwargs=dict(params={"istanbul.blockperiod": 5.0}, **common),
                phase="Balance",
                paper=PaperValue(mtps=365.85, mfls=12.34, received=69476.33, expected=120000.0),
                recommended_scale=0.15,
            ),
        ],
    )


def table17_18_sawtooth() -> Experiment:
    """Tables 17-18: Sawtooth, BankingApp-CreateAccount, 100 txs/batch."""
    common = dict(system="sawtooth", iel="BankingApp", txs_per_batch=100,
                  phases=("CreateAccount",), seed=1718)
    return Experiment(
        "table17_18",
        "Tables 17-18: Sawtooth - BankingApp-CreateAccount (queue backpressure)",
        [
            Case(
                case_id="RL=200 PD=1s",
                config_kwargs=dict(rate_limit=50,
                                   params={"block_publishing_delay": 1.0}, **common),
                phase="CreateAccount",
                paper=PaperValue(mtps=66.70, mfls=26.40, received=23033.33, expected=60000.0),
                recommended_scale=0.2,
            ),
            Case(
                case_id="RL=1600 PD=1s",
                config_kwargs=dict(rate_limit=400,
                                   params={"block_publishing_delay": 1.0}, **common),
                phase="CreateAccount",
                paper=PaperValue(mtps=14.27, mfls=238.45, received=4666.67, expected=480000.0),
                recommended_scale=0.2,
            ),
            Case(
                case_id="RL=200 PD=10s",
                config_kwargs=dict(rate_limit=50,
                                   params={"block_publishing_delay": 10.0}, **common),
                phase="CreateAccount",
                paper=PaperValue(mtps=67.57, mfls=25.84, received=23266.67, expected=60000.0),
                recommended_scale=0.2,
            ),
            Case(
                case_id="RL=1600 PD=10s",
                config_kwargs=dict(rate_limit=400,
                                   params={"block_publishing_delay": 10.0}, **common),
                phase="CreateAccount",
                paper=PaperValue(mtps=15.65, mfls=225.73, received=5133.33, expected=480000.0),
                recommended_scale=0.2,
            ),
        ],
    )


def table19_20_diem() -> Experiment:
    """Tables 19-20: Diem, KeyValue-Get, max_block_size sweep.

    Diem's ~100 s finalization latencies only fit near-full windows, so
    these cases recommend scale 0.6.
    """
    common = dict(system="diem", iel="KeyValue", seed=1920)
    return Experiment(
        "table19_20",
        "Tables 19-20: Diem - KeyValue-Get (deep mempool, spiking)",
        [
            Case(
                case_id="RL=200 BS=100",
                config_kwargs=dict(rate_limit=50, params={"max_block_size": 100}, **common),
                phase="Get",
                paper=PaperValue(mfls=67.97, received=7365.33, expected=60000.0),
                # BS=100 drains the Set backlog at only ~35 payloads/s, so
                # Get confirmations start very late; they need a nearly
                # full window to be observable.
                recommended_scale=0.8,
                window_note="not observable at this scale, see REPRO_FULL_SCALE=1",
            ),
            Case(
                case_id="RL=1600 BS=100",
                config_kwargs=dict(rate_limit=400, params={"max_block_size": 100}, **common),
                phase="Get",
                paper=PaperValue(mtps=11.83, mfls=81.30, received=3887.67, expected=480000.0),
                recommended_scale=0.6,
                window_note="not observable at this scale, see REPRO_FULL_SCALE=1",
            ),
            Case(
                case_id="RL=200 BS=2000",
                config_kwargs=dict(rate_limit=50, params={"max_block_size": 2000}, **common),
                phase="Get",
                paper=PaperValue(mtps=64.22, mfls=107.78, received=16752.67, expected=60000.0),
                recommended_scale=0.6,
            ),
            Case(
                case_id="RL=1600 BS=2000",
                config_kwargs=dict(rate_limit=400, params={"max_block_size": 2000}, **common),
                phase="Get",
                paper=PaperValue(mtps=36.65, mfls=150.35, received=11172.67, expected=480000.0),
                recommended_scale=0.6,
            ),
        ],
    )


#: All result-table experiments, in paper order.
TABLE_BUILDERS: typing.Dict[str, typing.Callable[[], Experiment]] = {
    "table7_8": table7_8_corda_os,
    "table9_10": table9_10_corda_enterprise,
    "table11_12": table11_12_bitshares,
    "table13_14": table13_14_fabric,
    "table15_16": table15_16_quorum,
    "table17_18": table17_18_sawtooth,
    "table19_20": table19_20_diem,
}


def run_tables(
    table_ids: typing.Optional[typing.Sequence[str]] = None,
    runner: typing.Optional[BenchmarkRunner] = None,
    executor: typing.Optional["Executor"] = None,
    scale: typing.Optional[float] = None,
    repetitions: typing.Optional[int] = None,
) -> typing.Dict[str, ExperimentRun]:
    """Run several result-table experiments through one shared driver.

    The EXPERIMENTS.md regeneration path: with an ``executor``, every
    table's cases share the same worker pool and result cache, so a
    re-run after an unrelated change replays only the affected units.
    """
    runs: typing.Dict[str, ExperimentRun] = {}
    for table_id in table_ids if table_ids is not None else TABLE_BUILDERS:
        if table_id not in TABLE_BUILDERS:
            raise KeyError(
                f"unknown table experiment {table_id!r}; known: {sorted(TABLE_BUILDERS)}"
            )
        experiment = TABLE_BUILDERS[table_id]()
        runs[table_id] = experiment.run(
            runner=runner, executor=executor, scale=scale, repetitions=repetitions
        )
    return runs
