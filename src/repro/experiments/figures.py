"""The paper's figures: the two heat maps (Figs. 3, 4) and scalability (Fig. 5).

Figure 3 shows, per system and benchmark, the best MTPS with the
corresponding MFLS and duration; Figure 4 repeats the same
configurations under the emulated European WAN latency (netem, mu=12 ms);
Figure 5 scales the DoNothing benchmark to 8/16/32 nodes.

The full Figure 4 cell grid is printed in the paper and embedded below;
for Figure 3 only the values quoted in Section 5's prose are available.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.chains.registry import SYSTEM_LABELS, SYSTEM_NAMES
from repro.coconut.config import BenchmarkConfig, unit_for_iel
from repro.coconut.results import PhaseResult
from repro.coconut.runner import BenchmarkRunner
from repro.experiments.base import PaperValue
from repro.net.latency import EUROPEAN_WAN_LATENCY, LatencyModel

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.executor import Executor

#: The benchmark rows of the heat maps, in figure order.
BENCHMARK_ROWS: typing.Tuple[typing.Tuple[str, str], ...] = (
    ("DoNothing", "DoNothing"),
    ("KeyValue", "Set"),
    ("KeyValue", "Get"),
    ("BankingApp", "CreateAccount"),
    ("BankingApp", "SendPayment"),
    ("BankingApp", "Balance"),
)


def best_config_kwargs(system: str) -> typing.Dict[str, object]:
    """The per-system configuration behind the heat maps' best cells.

    Derived from Section 5: Corda at its (reduced) rate limiters,
    BitShares at 100 ops/tx with block_interval 1 s, Fabric at RL=1600,
    Quorum at blockperiod 5 s, Sawtooth at 100 txs/batch, Diem at
    max_block_size 2000 and RL=200.
    """
    if system == "corda_os":
        return dict(rate_limit=5)
    if system == "corda_enterprise":
        return dict(rate_limit=40)
    if system == "bitshares":
        return dict(rate_limit=400, params={"block_interval": 1.0}, ops_per_transaction=100)
    if system == "fabric":
        return dict(rate_limit=400, params={"MaxMessageCount": 2000})
    if system == "quorum":
        return dict(rate_limit=400, params={"istanbul.blockperiod": 5.0})
    if system == "sawtooth":
        return dict(rate_limit=50, params={"block_publishing_delay": 1.0}, txs_per_batch=100)
    if system == "diem":
        return dict(rate_limit=50, params={"max_block_size": 2000})
    raise KeyError(f"unknown system {system!r}")


def best_config_variants(system: str, iel: str) -> typing.List[typing.Dict[str, object]]:
    """Configuration variants whose per-phase best fills a figure cell.

    The figures show the *best* value per benchmark, and for BitShares
    the best configuration differs within the BankingApp unit: 100
    ops/tx maximises CreateAccount, but chained payments packed into one
    transaction interact and are discarded wholesale, so SendPayment and
    Balance peak at one operation per transaction (Section 5.3).
    """
    base = best_config_kwargs(system)
    if system == "bitshares" and iel == "BankingApp":
        single_op = dict(base)
        single_op["ops_per_transaction"] = 1
        return [base, single_op]
    return [base]


def recommended_scale(system: str) -> float:
    """Window scale that keeps a system's dynamics observable."""
    return {
        "corda_os": 0.25,
        "corda_enterprise": 0.25,
        "sawtooth": 0.2,
        "diem": 0.6,
        "quorum": 0.15,
    }.get(system, 0.1)


@dataclasses.dataclass
class GridRun:
    """Results of one heat-map experiment."""

    experiment_id: str
    title: str
    #: (phase, system) -> result.
    cells: typing.Dict[typing.Tuple[str, str], PhaseResult]
    paper_cells: typing.Dict[typing.Tuple[str, str], PaperValue]
    systems: typing.Tuple[str, ...]

    def cell(self, phase: str, system: str) -> PhaseResult:
        """One grid cell's result."""
        return self.cells[(phase, system)]

    def render(self) -> str:
        """The heat-map grid plus paper-vs-measured MTPS comparison."""
        from repro.coconut.report import format_table, heatmap

        grid = heatmap(
            {
                (phase, SYSTEM_LABELS[system]): result
                for (phase, system), result in self.cells.items()
            },
            row_labels=[phase for __, phase in BENCHMARK_ROWS],
            column_labels=[SYSTEM_LABELS[s] for s in self.systems],
        )
        rows = []
        for (phase, system), paper in sorted(self.paper_cells.items()):
            if (phase, system) not in self.cells:
                continue
            measured = self.cells[(phase, system)]
            rows.append(
                [
                    f"{SYSTEM_LABELS[system]} {phase}",
                    paper.describe(),
                    f"MTPS={measured.mtps.mean:.2f} MFLS={measured.mfls.mean:.2f}s",
                ]
            )
        comparison = format_table(["Cell", "Paper", "Measured"], rows)
        return f"{self.title}\n{grid}\n\nPaper comparison:\n{comparison}"


class HeatmapExperiment:
    """Figures 3 and 4: the benchmarks x systems grid."""

    def __init__(
        self,
        experiment_id: str,
        title: str,
        latency: typing.Optional[LatencyModel],
        paper_cells: typing.Dict[typing.Tuple[str, str], PaperValue],
    ) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.latency = latency
        self.paper_cells = paper_cells

    def run(
        self,
        runner: typing.Optional[BenchmarkRunner] = None,
        systems: typing.Optional[typing.Sequence[str]] = None,
        iels: typing.Optional[typing.Sequence[str]] = None,
        scale: typing.Optional[float] = None,
        repetitions: int = 1,
        seed: int = 34,
        executor: typing.Optional["Executor"] = None,
    ) -> GridRun:
        """Run one unit per (system, IEL) and collect every phase."""
        systems = tuple(systems or SYSTEM_NAMES)
        iels = tuple(iels or ("DoNothing", "KeyValue", "BankingApp"))
        specs: typing.List[typing.Tuple[str, str, BenchmarkConfig]] = []
        for system in systems:
            for iel in iels:
                for kwargs in best_config_variants(system, iel):
                    config = BenchmarkConfig(
                        system=system,
                        iel=iel,
                        latency=self.latency,
                        scale=scale if scale is not None else recommended_scale(system),
                        repetitions=repetitions,
                        seed=seed,
                        **kwargs,
                    )
                    specs.append((system, iel, config))
        if executor is not None:
            units = [o.result for o in executor.run_units([c for __, __, c in specs])]
        else:
            runner = runner or BenchmarkRunner(keep_last_rig=False)
            units = runner.run_many([config for __, __, config in specs])
        cells: typing.Dict[typing.Tuple[str, str], PhaseResult] = {}
        for (system, iel, __), unit in zip(specs, units):
            for phase in unit_for_iel(iel):
                candidate = unit.phase(phase)
                incumbent = cells.get((phase, system))
                if incumbent is None or candidate.mtps.mean > incumbent.mtps.mean:
                    cells[(phase, system)] = candidate
        return GridRun(
            experiment_id=self.experiment_id,
            title=self.title,
            cells=cells,
            paper_cells=self.paper_cells,
            systems=systems,
        )


#: Figure 3 values quoted in Section 5's prose (best MTPS per system).
FIG3_PAPER_CELLS: typing.Dict[typing.Tuple[str, str], PaperValue] = {
    ("DoNothing", "corda_os"): PaperValue(mtps=7.18),
    ("DoNothing", "corda_enterprise"): PaperValue(mtps=64.64),
    ("DoNothing", "bitshares"): PaperValue(mtps=1599.89, mfls=1.09),
    ("DoNothing", "fabric"): PaperValue(mtps=1461.05),
    ("DoNothing", "quorum"): PaperValue(mtps=773.60, mfls=10.32),
    ("DoNothing", "sawtooth"): PaperValue(mtps=103.47),
    ("DoNothing", "diem"): PaperValue(mtps=96.40),
    ("Set", "corda_os"): PaperValue(mtps=4.08, mfls=151.93),
    ("Set", "corda_enterprise"): PaperValue(mtps=13.51, mfls=31.59),
    ("Get", "corda_os"): PaperValue(mtps=0.0),
    ("SendPayment", "fabric"): PaperValue(mtps=1285.29, mfls=6.66),
    ("Balance", "quorum"): PaperValue(mtps=365.85, mfls=12.34),
    ("SendPayment", "sawtooth"): PaperValue(mtps=16.32),
    ("Get", "diem"): PaperValue(mtps=64.22, mfls=107.78),
}

#: Figure 4's full printed grid (MTPS, MFLS, Duration per cell).
FIG4_PAPER_CELLS: typing.Dict[typing.Tuple[str, str], PaperValue] = {
    ("DoNothing", "corda_os"): PaperValue(7.22, 114.23, 348.67),
    ("DoNothing", "corda_enterprise"): PaperValue(64.76, 3.36, 303.00),
    ("DoNothing", "bitshares"): PaperValue(1589.30, 1.53, 389.33),
    ("DoNothing", "fabric"): PaperValue(898.78, 2.06, 310.33),
    ("DoNothing", "quorum"): PaperValue(605.04, 10.43, 313.00),
    ("DoNothing", "sawtooth"): PaperValue(102.74, 21.73, 97.33),
    ("DoNothing", "diem"): PaperValue(94.12, 95.91, 330.00),
    ("Set", "corda_os"): PaperValue(4.34, 214.59, 369.33),
    ("Set", "corda_enterprise"): PaperValue(13.49, 31.12, 337.67),
    ("Set", "bitshares"): PaperValue(654.12, 8.23, 393.33),
    ("Set", "fabric"): PaperValue(866.64, 0.48, 310.33),
    ("Set", "quorum"): PaperValue(243.13, 14.06, 315.00),
    ("Set", "sawtooth"): PaperValue(88.55, 17.94, 343.33),
    ("Set", "diem"): PaperValue(70.50, 103.67, 322.00),
    ("Get", "corda_os"): PaperValue(0.00, 0.00, 0.00),
    ("Get", "corda_enterprise"): PaperValue(3.09, 120.59, 357.33),
    ("Get", "bitshares"): PaperValue(579.45, 7.64, 389.00),
    ("Get", "fabric"): PaperValue(885.24, 0.44, 310.00),
    ("Get", "quorum"): PaperValue(338.46, 13.27, 209.00),
    ("Get", "sawtooth"): PaperValue(76.86, 11.38, 55.00),
    ("Get", "diem"): PaperValue(67.99, 112.26, 316.00),
    ("CreateAccount", "corda_os"): PaperValue(6.89, 117.16, 349.67),
    ("CreateAccount", "corda_enterprise"): PaperValue(61.92, 3.56, 302.67),
    ("CreateAccount", "bitshares"): PaperValue(1046.87, 3.81, 388.67),
    ("CreateAccount", "fabric"): PaperValue(872.52, 2.48, 311.00),
    ("CreateAccount", "quorum"): PaperValue(258.05, 13.93, 315.67),
    ("CreateAccount", "sawtooth"): PaperValue(64.83, 27.39, 346.00),
    ("CreateAccount", "diem"): PaperValue(74.27, 93.13, 324.33),
    ("SendPayment", "corda_os"): PaperValue(0.00, 0.00, 0.00),
    ("SendPayment", "corda_enterprise"): PaperValue(0.00, 0.00, 0.00),
    ("SendPayment", "bitshares"): PaperValue(6.62, 173.50, 356.00),
    ("SendPayment", "fabric"): PaperValue(866.30, 2.70, 308.33),
    ("SendPayment", "quorum"): PaperValue(320.10, 13.40, 254.33),
    ("SendPayment", "sawtooth"): PaperValue(15.02, 26.04, 338.33),
    ("SendPayment", "diem"): PaperValue(56.82, 128.95, 319.00),
    ("Balance", "corda_os"): PaperValue(0.28, 138.34, 400.67),
    ("Balance", "corda_enterprise"): PaperValue(0.00, 0.00, 0.00),
    ("Balance", "bitshares"): PaperValue(9.96, 148.48, 369.33),
    ("Balance", "fabric"): PaperValue(883.65, 2.48, 307.00),
    ("Balance", "quorum"): PaperValue(362.50, 12.83, 224.67),
    ("Balance", "sawtooth"): PaperValue(30.24, 15.84, 121.00),
    ("Balance", "diem"): PaperValue(46.16, 148.83, 307.00),
}


def fig3_heatmap() -> HeatmapExperiment:
    """Figure 3: best MTPS/MFLS/Duration, no added latency."""
    return HeatmapExperiment(
        "fig3",
        "Figure 3: best MTPS per benchmark and system (data-centre latency)",
        latency=None,
        paper_cells=FIG3_PAPER_CELLS,
    )


def fig4_latency_heatmap() -> HeatmapExperiment:
    """Figure 4: the same grid under netem latency (mu = 12 ms)."""
    return HeatmapExperiment(
        "fig4",
        "Figure 4: best-config grid under emulated European WAN latency",
        latency=EUROPEAN_WAN_LATENCY,
        paper_cells=FIG4_PAPER_CELLS,
    )


@dataclasses.dataclass
class ScalabilityRun:
    """Results of the Figure 5 experiment."""

    #: (system, node_count) -> result.
    cells: typing.Dict[typing.Tuple[str, int], PhaseResult]
    node_counts: typing.Tuple[int, ...]
    systems: typing.Tuple[str, ...]

    def mtps(self, system: str, node_count: int) -> float:
        """Measured MTPS of one cell."""
        return self.cells[(system, node_count)].mtps.mean

    def render(self) -> str:
        """A node-count x system MTPS table (log-style, like Fig. 5)."""
        from repro.coconut.report import format_table

        headers = ["System"] + [f"n={n}" for n in self.node_counts]
        rows = []
        for system in self.systems:
            row = [SYSTEM_LABELS[system]]
            for node_count in self.node_counts:
                result = self.cells.get((system, node_count))
                if result is None or result.received.mean == 0:
                    row.append("FAIL")
                else:
                    row.append(f"{result.mtps.mean:.2f}")
            rows.append(row)
        return "Figure 5: DoNothing MTPS vs network size\n" + format_table(headers, rows)


#: Paper Figure 5 expectations (Section 5.8.2, qualitative).
FIG5_EXPECTATIONS: typing.Dict[str, str] = {
    "corda_os": "declines with n; fails completely at 32 nodes",
    "corda_enterprise": "declines with n, keeps working",
    "bitshares": "flat - marginal fluctuations only",
    "fabric": "works at 8, fails at 16 and 32 (no client confirmations)",
    "quorum": "downward trend from 8 nodes",
    "sawtooth": "works at 8, fails at 16 and 32 (stuck pending)",
    "diem": "downward trend from 8 nodes",
}


class ScalabilityExperiment:
    """Figure 5: DoNothing across 8/16/32 nodes (netem latency)."""

    experiment_id = "fig5"

    def run(
        self,
        runner: typing.Optional[BenchmarkRunner] = None,
        systems: typing.Optional[typing.Sequence[str]] = None,
        node_counts: typing.Sequence[int] = (8, 16, 32),
        scale: typing.Optional[float] = None,
        seed: int = 58,
        executor: typing.Optional["Executor"] = None,
    ) -> ScalabilityRun:
        """Run DoNothing at each network size (same settings as 5.8.1)."""
        systems = tuple(systems or SYSTEM_NAMES)
        specs: typing.List[typing.Tuple[str, int, BenchmarkConfig]] = []
        for system in systems:
            for node_count in node_counts:
                config = BenchmarkConfig(
                    system=system,
                    iel="DoNothing",
                    latency=EUROPEAN_WAN_LATENCY,
                    node_count=node_count,
                    scale=scale if scale is not None else recommended_scale(system),
                    repetitions=1,
                    seed=seed,
                    **best_config_kwargs(system),
                )
                specs.append((system, node_count, config))
        if executor is not None:
            units = [o.result for o in executor.run_units([c for __, __, c in specs])]
        else:
            runner = runner or BenchmarkRunner(keep_last_rig=False)
            units = runner.run_many([config for __, __, config in specs])
        cells: typing.Dict[typing.Tuple[str, int], PhaseResult] = {}
        for (system, node_count, __), unit in zip(specs, units):
            cells[(system, node_count)] = unit.phase("DoNothing")
        return ScalabilityRun(cells=cells, node_counts=tuple(node_counts), systems=systems)
