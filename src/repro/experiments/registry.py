"""Registry of all paper experiments."""

from __future__ import annotations

import typing

from repro.experiments import tables
from repro.experiments.capacity import (
    capacity_bankingapp,
    capacity_donothing,
    capacity_keyvalue,
)
from repro.experiments.figures import (
    ScalabilityExperiment,
    fig3_heatmap,
    fig4_latency_heatmap,
)
from repro.experiments.resilience import resilience_leader_crash, resilience_partition
from repro.experiments.workloads import (
    burst_capacity,
    mix_readwrite_keyvalue,
    skew_sweep_keyvalue,
)

_BUILDERS: typing.Dict[str, typing.Callable[[], object]] = {
    "fig3": fig3_heatmap,
    "fig4": fig4_latency_heatmap,
    "fig5": ScalabilityExperiment,
    **tables.TABLE_BUILDERS,
    "resilience_leader_crash": resilience_leader_crash,
    "resilience_partition": resilience_partition,
    "capacity_donothing": capacity_donothing,
    "capacity_keyvalue": capacity_keyvalue,
    "capacity_bankingapp": capacity_bankingapp,
    "skew_sweep_keyvalue": skew_sweep_keyvalue,
    "burst_capacity": burst_capacity,
    "mix_readwrite_keyvalue": mix_readwrite_keyvalue,
}

#: Every reproducible artifact, in paper order.
EXPERIMENT_IDS: typing.Tuple[str, ...] = tuple(_BUILDERS)


def build_experiment(experiment_id: str) -> object:
    """Construct one experiment by id."""
    if experiment_id not in _BUILDERS:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {list(_BUILDERS)}")
    return _BUILDERS[experiment_id]()
