"""The resilience experiment family: fault injection across all systems.

The paper benchmarks only healthy deployments; these experiments extend
the comparison to failure behaviour, which the simulator can explore
deterministically. Two scenario sets, each run for every system on the
DoNothing benchmark at a deliberately low rate limiter (so no system is
near its saturation cliff and any throughput dip is attributable to the
fault, not to load):

* ``resilience_leader_crash`` — whoever coordinates consensus at 25% of
  the send window is crashed and restarted at 50%. BFT/CFT engines are
  expected to recover (Raft re-election, PBFT view change, IBFT round
  change, DiemBFT pacemaker, DPoS slot skip); because a confirmation
  requires a commit on *all* nodes, throughput dips to zero until the
  crashed node restarts and catches up.
* ``resilience_partition`` — a minority isolation (one node cut off,
  healed at 50%) and a majority 2|2 split (healed at 50%). A 2|2 split
  leaves no side with a BFT quorum, so consensus itself stalls until the
  heal; the minority case stalls only finality.

A scenario's verdict is ``recovered`` when post-fault throughput returns
to within the tolerance of the pre-fault baseline, else ``stalled`` —
a stall is a *finding*, not an error, and stays in the table.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.chains.registry import SYSTEM_NAMES
from repro.coconut.config import BenchmarkConfig
from repro.coconut.results import PhaseResult
from repro.coconut.runner import BenchmarkRunner
from repro.faults import FaultPlan, ResilienceReport

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.executor import Executor

#: Payloads/second per client — low enough that every system runs well
#: below saturation (Quorum's selection stall, Sawtooth's admission
#: contention and Corda's overload knee all stay dormant).
RATE_LIMIT = 5

#: Default window scale (send window 60 s: room for a fault at 15 s, a
#: repair at 30 s and a recovery tail).
DEFAULT_SCALE = 0.2

#: Fault start / repair as fractions of the scaled send window.
FAULT_AT_FRACTION = 0.25
REPAIR_AT_FRACTION = 0.50


def leader_crash_plan(config: BenchmarkConfig) -> FaultPlan:
    """Crash the consensus coordinator at 25%, restart it at 50%."""
    send = config.scaled_send
    plan = FaultPlan()
    plan.kill_leader(at=FAULT_AT_FRACTION * send)
    plan.restart("leader", at=REPAIR_AT_FRACTION * send)
    return plan


def minority_isolation_plan(config: BenchmarkConfig) -> FaultPlan:
    """Cut one node off the network at 25%, reconnect it at 50%."""
    send = config.scaled_send
    plan = FaultPlan()
    plan.isolate("n0", at=FAULT_AT_FRACTION * send)
    plan.heal("n0", at=REPAIR_AT_FRACTION * send)
    return plan


def majority_partition_plan(config: BenchmarkConfig) -> FaultPlan:
    """Split the deployment down the middle at 25%, heal at 50%.

    With four nodes neither half holds a BFT quorum, so consensus loses
    liveness entirely until the heal.
    """
    send = config.scaled_send
    half = config.node_count // 2
    group_a = [f"n{i}" for i in range(half)]
    group_b = [f"n{i}" for i in range(half, config.node_count)]
    plan = FaultPlan()
    plan.partition(group_a, group_b, at=FAULT_AT_FRACTION * send)
    plan.heal_all(at=REPAIR_AT_FRACTION * send)
    return plan


@dataclasses.dataclass
class ResilienceRow:
    """One (system, scenario) outcome."""

    system: str
    scenario: str
    phase_result: PhaseResult
    report: typing.Optional[ResilienceReport]

    @property
    def verdict(self) -> str:
        if self.report is None:
            return "no faults fired"
        return "recovered" if self.report.recovered else "stalled"

    def cells(self) -> typing.List[str]:
        phase = self.phase_result
        if self.report is None:
            return [self.system, self.scenario, f"{phase.mtps.mean:.2f}", "-", "-", "-", "-",
                    self.verdict]
        report = self.report
        recover = (
            f"{report.time_to_recover:.1f}s" if report.time_to_recover is not None else "never"
        )
        return [
            self.system,
            self.scenario,
            f"{phase.mtps.mean:.2f}",
            f"{report.baseline_tps:.1f}",
            f"{report.dip_tps:.1f} ({report.dip_depth:.0%})",
            recover,
            f"{report.committed_in_window}/{report.lost_in_window}",
            self.verdict,
        ]


@dataclasses.dataclass
class ResilienceRun:
    """The outcome of one resilience experiment."""

    experiment_id: str
    title: str
    rows: typing.List[ResilienceRow]

    def row(self, system: str, scenario: str) -> ResilienceRow:
        """Look one (system, scenario) row up."""
        for row in self.rows:
            if row.system == system and row.scenario == scenario:
                return row
        raise KeyError(f"no row for ({system!r}, {scenario!r})")

    def render(self) -> str:
        from repro.coconut.report import format_table

        table = format_table(
            ["System", "Scenario", "MTPS", "Base tps", "Dip", "Recovery",
             "Win comm/lost", "Verdict"],
            [row.cells() for row in self.rows],
        )
        return f"{self.title}\n{table}"


class ResilienceExperiment:
    """Fault scenarios applied uniformly to every system."""

    def __init__(
        self,
        experiment_id: str,
        title: str,
        scenarios: typing.Sequence[
            typing.Tuple[str, typing.Callable[[BenchmarkConfig], FaultPlan]]
        ],
    ) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.scenarios = list(scenarios)

    def run(
        self,
        runner: typing.Optional[BenchmarkRunner] = None,
        systems: typing.Optional[typing.Sequence[str]] = None,
        scale: typing.Optional[float] = None,
        seed: int = 61,
        executor: typing.Optional["Executor"] = None,
    ) -> ResilienceRun:
        systems = tuple(systems or SYSTEM_NAMES)
        specs: typing.List[typing.Tuple[str, str, BenchmarkConfig]] = []
        for system in systems:
            for scenario, plan_factory in self.scenarios:
                config = BenchmarkConfig(
                    system=system,
                    iel="DoNothing",
                    rate_limit=RATE_LIMIT,
                    repetitions=1,
                    scale=scale if scale is not None else DEFAULT_SCALE,
                    seed=seed,
                )
                config.fault_plan = plan_factory(config)
                specs.append((system, scenario, config))
        rows: typing.List[ResilienceRow] = []
        if executor is not None:
            outcomes = executor.run_units([config for __, __, config in specs])
            for (system, scenario, __), outcome in zip(specs, outcomes):
                rows.append(
                    ResilienceRow(
                        system=system,
                        scenario=scenario,
                        phase_result=outcome.result.phase("DoNothing"),
                        report=outcome.resilience.get("DoNothing"),
                    )
                )
        else:
            runner = runner or BenchmarkRunner(keep_last_rig=False)
            for system, scenario, config in specs:
                unit = runner.run(config)
                rows.append(
                    ResilienceRow(
                        system=system,
                        scenario=scenario,
                        phase_result=unit.phase("DoNothing"),
                        report=runner.last_resilience.get("DoNothing"),
                    )
                )
        return ResilienceRun(
            experiment_id=self.experiment_id, title=self.title, rows=rows
        )


def resilience_leader_crash() -> ResilienceExperiment:
    """Leader crash + restart across all seven systems."""
    return ResilienceExperiment(
        "resilience_leader_crash",
        "Resilience: leader crash at 25% of the send window, restart at 50%",
        [("leader-crash", leader_crash_plan)],
    )


def resilience_partition() -> ResilienceExperiment:
    """Minority isolation and majority split across all seven systems."""
    return ResilienceExperiment(
        "resilience_partition",
        "Resilience: minority isolation and majority 2|2 partition (healed at 50%)",
        [
            ("minority-isolated", minority_isolation_plan),
            ("majority-2|2", majority_partition_plan),
        ],
    )
