"""Paper experiment definitions.

One module per artifact of the paper's evaluation (Section 5): every
table and figure is encoded as an :class:`~repro.experiments.base.Experiment`
binding workload, parameters and system to runnable benchmark
configurations, with the paper's reported numbers embedded for
side-by-side comparison. ``repro.experiments.registry`` lists them all.
"""

from repro.experiments.base import Case, Experiment, ExperimentRun, PaperValue
from repro.experiments.registry import EXPERIMENT_IDS, build_experiment

__all__ = [
    "Case",
    "EXPERIMENT_IDS",
    "Experiment",
    "ExperimentRun",
    "PaperValue",
    "build_experiment",
]
