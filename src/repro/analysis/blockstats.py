"""Block statistics over a node's chain.

The paper reads these directly off the systems: whether blocks saturate
the configured maximum (Fabric can, Sawtooth never does, Diem
approximately does — Sections 5.4, 5.6, 5.7), whether block production
keeps its configured pace (BitShares' witnesses "still generate the
blocks correctly", Section 5.3), and how many blocks run empty (Quorum's
stall, Section 5.5).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.storage.chain import Chain


@dataclasses.dataclass
class BlockStats:
    """Summary statistics of one chain replica."""

    block_count: int
    empty_blocks: int
    total_transactions: int
    total_payloads: int
    max_block_payloads: int
    mean_block_payloads: float
    mean_interval: float
    max_interval: float

    @property
    def empty_fraction(self) -> float:
        """Share of blocks carrying no transactions."""
        if self.block_count == 0:
            return 0.0
        return self.empty_blocks / self.block_count

    def saturation(self, configured_max: int) -> float:
        """How full the fullest block got relative to the configured cap.

        Fabric saturates to 1.0 at high load (Section 5.4); Sawtooth
        "cannot be saturated in any scenario" (Section 5.6).
        """
        if configured_max <= 0:
            raise ValueError(f"configured_max must be positive, got {configured_max}")
        return self.max_block_payloads / configured_max

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.block_count} blocks ({self.empty_fraction:.0%} empty), "
            f"mean {self.mean_block_payloads:.1f} payloads/block "
            f"(max {self.max_block_payloads}), "
            f"mean interval {self.mean_interval:.2f}s"
        )


def collect_block_stats(chain: Chain) -> BlockStats:
    """Compute :class:`BlockStats` for one chain replica."""
    blocks = list(chain.blocks())
    if not blocks:
        return BlockStats(
            block_count=0, empty_blocks=0, total_transactions=0, total_payloads=0,
            max_block_payloads=0, mean_block_payloads=0.0,
            mean_interval=0.0, max_interval=0.0,
        )
    payload_counts = [block.payload_count for block in blocks]
    timestamps = [block.header.timestamp for block in blocks]
    intervals = [b - a for a, b in zip(timestamps, timestamps[1:])]
    return BlockStats(
        block_count=len(blocks),
        empty_blocks=sum(1 for block in blocks if block.is_empty),
        total_transactions=sum(len(block.transactions) for block in blocks),
        total_payloads=sum(payload_counts),
        max_block_payloads=max(payload_counts),
        mean_block_payloads=sum(payload_counts) / len(blocks),
        mean_interval=(sum(intervals) / len(intervals)) if intervals else 0.0,
        max_interval=max(intervals) if intervals else 0.0,
    )


def production_pace_held(
    chain: Chain, configured_interval: float, tolerance: float = 0.5
) -> bool:
    """Whether block production kept its configured pace throughout.

    The Section 5.3 check: "whether the witnesses still generate the
    blocks correctly" — no gap may exceed the configured interval by
    more than ``tolerance`` (relative).
    """
    if configured_interval <= 0:
        raise ValueError(f"configured_interval must be positive, got {configured_interval}")
    stats = collect_block_stats(chain)
    if stats.block_count < 2:
        return True
    return stats.max_interval <= configured_interval * (1.0 + tolerance)
