"""Time-series views of client records.

Useful for diagnosing the dynamics behind a benchmark's aggregate
numbers: when a system stalls (Quorum's empty-block latch), how latency
grows with queue depth (Corda OS), when confirmations stop (Fabric at
scale).
"""

from __future__ import annotations

import typing

from repro.coconut.client import PayloadRecord


def throughput_over_time(
    records: typing.Iterable[PayloadRecord], bucket_seconds: float = 10.0
) -> typing.List[typing.Tuple[float, float]]:
    """Confirmed transactions per second, bucketed by confirmation time.

    Returns (bucket_start, tps) pairs, covering the full span including
    empty buckets — a stall shows up as zeros.
    """
    if bucket_seconds <= 0:
        raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
    confirmed = sorted(r.end_time for r in records if r.received)
    if not confirmed:
        return []
    first_bucket = int(confirmed[0] // bucket_seconds)
    last_bucket = int(confirmed[-1] // bucket_seconds)
    counts = {bucket: 0 for bucket in range(first_bucket, last_bucket + 1)}
    for end_time in confirmed:
        counts[int(end_time // bucket_seconds)] += 1
    return [
        (bucket * bucket_seconds, counts[bucket] / bucket_seconds)
        for bucket in range(first_bucket, last_bucket + 1)
    ]


def latency_percentiles(
    records: typing.Iterable[PayloadRecord],
    percentiles: typing.Sequence[float] = (50.0, 90.0, 99.0),
) -> typing.Dict[float, float]:
    """Finalization-latency percentiles of the confirmed records."""
    latencies = sorted(r.latency for r in records if r.received)
    if not latencies:
        return {p: 0.0 for p in percentiles}
    result = {}
    for percentile in percentiles:
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile out of range: {percentile}")
        index = min(len(latencies) - 1, int(round((percentile / 100.0) * len(latencies))) - 1)
        result[percentile] = latencies[max(0, index)]
    return result


def loss_timeline(
    records: typing.Iterable[PayloadRecord], bucket_seconds: float = 10.0
) -> typing.List[typing.Tuple[float, float]]:
    """Fraction of payloads sent per bucket that never confirmed."""
    if bucket_seconds <= 0:
        raise ValueError(f"bucket_seconds must be positive, got {bucket_seconds}")
    buckets: typing.Dict[int, typing.List[int]] = {}
    for record in records:
        bucket = int(record.start_time // bucket_seconds)
        sent, lost = buckets.get(bucket, [0, 0])
        sent += 1
        if not record.received:
            lost += 1
        buckets[bucket] = [sent, lost]
    return [
        (bucket * bucket_seconds, lost / sent)
        for bucket, (sent, lost) in sorted(buckets.items())
    ]
