"""Analysis helpers: shape comparison against the paper, block
statistics, time series, streamed latency histograms."""

from repro.analysis.blockstats import BlockStats, collect_block_stats, production_pace_held
from repro.analysis.histstats import (
    merged_histogram,
    percentile_profile,
    render_histogram,
    unit_latency_report,
)
from repro.analysis.compare import (
    LatencyProfile,
    ShapeCheck,
    latency_profile,
    ordering_preserved,
    tail_check,
    within_factor,
)
from repro.analysis.timeseries import latency_percentiles, throughput_over_time

__all__ = [
    "BlockStats",
    "LatencyProfile",
    "ShapeCheck",
    "collect_block_stats",
    "latency_percentiles",
    "latency_profile",
    "merged_histogram",
    "ordering_preserved",
    "percentile_profile",
    "production_pace_held",
    "render_histogram",
    "tail_check",
    "throughput_over_time",
    "unit_latency_report",
    "within_factor",
]
