"""Analysis helpers: shape comparison against the paper, block
statistics, time series."""

from repro.analysis.blockstats import BlockStats, collect_block_stats, production_pace_held
from repro.analysis.compare import (
    LatencyProfile,
    ShapeCheck,
    latency_profile,
    ordering_preserved,
    tail_check,
    within_factor,
)
from repro.analysis.timeseries import latency_percentiles, throughput_over_time

__all__ = [
    "BlockStats",
    "LatencyProfile",
    "ShapeCheck",
    "collect_block_stats",
    "latency_percentiles",
    "latency_profile",
    "ordering_preserved",
    "production_pace_held",
    "tail_check",
    "throughput_over_time",
    "within_factor",
]
