"""Summary statistics over a trace: where does simulated time go?

Aggregates span records into per-``(category, name)`` rows with count,
total duration and *self time* — the span's duration minus the time
covered by spans nested inside it on the same node — so a fat parent
("block.finality") does not drown out the child actually burning the
time ("raft.replicate"). Works on live :class:`~repro.trace.Tracer`
objects and on dicts loaded from a JSONL trace.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.trace.tracer import SpanRecord, Tracer


@dataclasses.dataclass
class SpanStat:
    """Aggregate for one (category, name) span family."""

    category: str
    name: str
    count: int = 0
    total: float = 0.0
    self_total: float = 0.0
    max_duration: float = 0.0

    @property
    def mean(self) -> float:
        """Mean span duration in simulated seconds."""
        return self.total / self.count if self.count else 0.0


def _self_times(spans: typing.Sequence[SpanRecord]) -> typing.List[float]:
    """Per-span self time: duration minus nested same-node span time.

    Spans are grouped per node and treated as a properly nested forest
    (sorted by start ascending, end descending); overlapping-but-not-
    nested spans are treated as siblings.
    """
    order = sorted(range(len(spans)), key=lambda i: (spans[i].node, spans[i].start, -spans[i].end))
    self_time = [0.0] * len(spans)
    stack: typing.List[int] = []  # indices of currently open ancestors
    current_node: typing.Optional[str] = None
    for index in order:
        span = spans[index]
        if span.node != current_node:
            stack = []
            current_node = span.node
        while stack and spans[stack[-1]].end <= span.start:
            stack.pop()
        self_time[index] = span.duration
        if stack and span.end <= spans[stack[-1]].end:
            # Nested in the innermost open ancestor: charge the child.
            self_time[stack[-1]] -= span.duration
        if not stack or span.end <= spans[stack[-1]].end:
            stack.append(index)
        # A partial overlap (concurrent, not nested) stays off the stack:
        # its time is not double-charged to an unrelated ancestor.
    return self_time


def _as_records(
    spans: typing.Iterable[typing.Union[SpanRecord, dict]]
) -> typing.List[SpanRecord]:
    records = []
    for span in spans:
        if isinstance(span, SpanRecord):
            records.append(span)
        elif span.get("type", "span") == "span":
            records.append(SpanRecord(
                name=span["name"], category=span.get("cat", ""),
                node=span.get("node", ""), start=span["start"], end=span["end"],
                attrs=span.get("attrs", {}),
            ))
    return records


def span_stats(
    source: typing.Union[Tracer, typing.Iterable[typing.Union[SpanRecord, dict]]]
) -> typing.List[SpanStat]:
    """Aggregate spans by (category, name), sorted by self time descending."""
    spans = _as_records(source.spans if isinstance(source, Tracer) else source)
    self_times = _self_times(spans)
    stats: typing.Dict[typing.Tuple[str, str], SpanStat] = {}
    for span, self_time in zip(spans, self_times):
        key = (span.category, span.name)
        stat = stats.get(key)
        if stat is None:
            stat = stats[key] = SpanStat(category=span.category, name=span.name)
        stat.count += 1
        stat.total += span.duration
        stat.self_total += self_time
        if span.duration > stat.max_duration:
            stat.max_duration = span.duration
    return sorted(stats.values(), key=lambda s: s.self_total, reverse=True)


def render_span_stats(
    source: typing.Union[Tracer, typing.Iterable[typing.Union[SpanRecord, dict]]],
    top: int = 10,
) -> str:
    """A top-N table of span families by self time."""
    stats = span_stats(source)[:top]
    if not stats:
        return "trace: no spans recorded"
    header = f"{'category':<10} {'span':<28} {'count':>8} {'self (s)':>10} {'total (s)':>10} {'mean (s)':>10}"
    lines = [header, "-" * len(header)]
    for stat in stats:
        lines.append(
            f"{stat.category:<10} {stat.name:<28} {stat.count:>8} "
            f"{stat.self_total:>10.3f} {stat.total:>10.3f} {stat.mean:>10.4f}"
        )
    return "\n".join(lines)
