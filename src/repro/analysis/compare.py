"""Shape comparison against the paper's numbers.

The reproduction does not target absolute fidelity (the substrate is a
simulator, not the authors' testbed); what must hold is the *shape*: who
wins, by roughly what factor, where the failure onsets are. These
helpers make those checks explicit and testable.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coconut.results import PhaseResult


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """Whether ``measured`` is within ``x factor`` of ``reference``.

    Zero reference requires zero-ish measured (and vice versa).
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if reference == 0.0:
        return measured == 0.0
    if measured == 0.0:
        return False
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor


def ordering_preserved(
    pairs: typing.Sequence[typing.Tuple[float, float]], tolerance: float = 0.0
) -> bool:
    """Whether measured values order the same way the references do.

    ``pairs`` is a list of (reference, measured). For every two entries
    whose references differ by more than ``tolerance`` (relative), the
    measured values must order the same way.
    """
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            ref_a, measured_a = pairs[i]
            ref_b, measured_b = pairs[j]
            baseline = max(abs(ref_a), abs(ref_b))
            if baseline == 0 or abs(ref_a - ref_b) / baseline <= tolerance:
                continue
            if (ref_a > ref_b) != (measured_a > measured_b):
                return False
    return True


@dataclasses.dataclass
class ShapeCheck:
    """One named shape assertion with its outcome."""

    name: str
    passed: bool
    detail: str = ""

    @classmethod
    def factor(
        cls, name: str, measured: float, reference: float, factor: float
    ) -> "ShapeCheck":
        """Check a value is within a multiplicative band of the paper's."""
        passed = within_factor(measured, reference, factor)
        return cls(
            name=name,
            passed=passed,
            detail=f"measured={measured:.2f} paper={reference:.2f} band=x{factor:.1f}",
        )

    @classmethod
    def ordering(
        cls,
        name: str,
        pairs: typing.Sequence[typing.Tuple[float, float]],
        tolerance: float = 0.0,
    ) -> "ShapeCheck":
        """Check the measured ordering matches the paper's."""
        passed = ordering_preserved(pairs, tolerance=tolerance)
        return cls(name=name, passed=passed, detail=f"{len(pairs)} values compared")

    @classmethod
    def failure_mode(cls, name: str, measured_received: float, expect_failure: bool) -> "ShapeCheck":
        """Check a total-failure cell fails (or a working cell works)."""
        failed = measured_received == 0
        return cls(
            name=name,
            passed=failed == expect_failure,
            detail=f"received={measured_received:.0f}, expected "
            + ("failure" if expect_failure else "success"),
        )


@dataclasses.dataclass(frozen=True)
class LatencyProfile:
    """One phase's finalization-latency distribution summary."""

    mean: float
    p50: float
    p95: float
    p99: float

    @property
    def tail_amplification(self) -> float:
        """p99/p50 — how much worse the tail is than the typical case.

        Near 1 means latency is set by batching cadence (every
        transaction waits for the same block timer); large values mean
        queueing or contention stretch the tail. 0.0 when the phase
        received nothing.
        """
        if self.p50 <= 0:
            return 0.0
        return self.p99 / self.p50

    def describe(self) -> str:
        return (
            f"mean={self.mean:.2f}s p50={self.p50:.2f}s p95={self.p95:.2f}s "
            f"p99={self.p99:.2f}s tail x{self.tail_amplification:.2f}"
        )


def latency_profile(phase: "PhaseResult") -> LatencyProfile:
    """The latency profile of one aggregated phase result."""
    return LatencyProfile(
        mean=phase.mfls.mean,
        p50=phase.p50.mean,
        p95=phase.p95.mean,
        p99=phase.p99.mean,
    )


def tail_check(
    name: str, phase: "PhaseResult", max_amplification: float
) -> ShapeCheck:
    """A ShapeCheck asserting the p99/p50 tail stays within a bound."""
    profile = latency_profile(phase)
    amplification = profile.tail_amplification
    return ShapeCheck(
        name=name,
        passed=0.0 < amplification <= max_amplification,
        detail=f"{profile.describe()} bound=x{max_amplification:.1f}",
    )


def render_checks(checks: typing.Sequence[ShapeCheck]) -> str:
    """A pass/fail listing of shape checks."""
    lines = []
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"[{status}] {check.name}: {check.detail}")
    passed = sum(1 for check in checks if check.passed)
    lines.append(f"{passed}/{len(checks)} shape checks passed")
    return "\n".join(lines)
