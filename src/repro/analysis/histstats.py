"""Latency-histogram analysis for streamed results.

Streamed repetitions carry a serialized
:class:`~repro.stream.LogHistogram` next to their scalar metrics; this
module turns those back into distribution views the scalar summaries
cannot express — a cross-repetition percentile profile (the merge is
exact, not an average of averages) and an ASCII density plot of the
latency shape.
"""

from __future__ import annotations

import typing

from repro.coconut.results import PhaseResult, UnitResult
from repro.stream.histogram import LogHistogram


def merged_histogram(phase_result: PhaseResult) -> typing.Optional[LogHistogram]:
    """All repetitions' latencies as one histogram, or None if exact-path.

    Merging is exact (bucket counts add), so percentiles read off the
    merged histogram describe the pooled sample — unlike the scalar
    ``p50``/``p95``/``p99`` summaries, which average per-repetition
    percentiles.
    """
    serialized = phase_result.latency_histograms()
    if not serialized:
        return None
    merged = LogHistogram.from_dict(serialized[0])
    for data in serialized[1:]:
        merged.merge(LogHistogram.from_dict(data))
    return merged


def percentile_profile(
    phase_result: PhaseResult,
    quantiles: typing.Sequence[float] = (50.0, 90.0, 95.0, 99.0, 99.9),
) -> typing.Dict[float, float]:
    """Pooled percentiles across repetitions (streamed results only)."""
    histogram = merged_histogram(phase_result)
    if histogram is None:
        raise ValueError(
            "phase result carries no latency histograms (exact-path run? "
            "re-run with stream_metrics=True)"
        )
    return {q: histogram.percentile(q) for q in quantiles}


def render_histogram(
    histogram: LogHistogram, width: int = 40, max_rows: int = 20
) -> str:
    """An ASCII density plot of a latency histogram.

    Adjacent buckets are coalesced when there are more populated
    buckets than ``max_rows``, so the plot stays one screen tall no
    matter how wide the latency range is.
    """
    if histogram.total == 0:
        return "(empty histogram)"
    buckets = sorted(histogram.counts.items())
    group = max(1, (len(buckets) + max_rows - 1) // max_rows)
    rows: typing.List[typing.Tuple[float, float, int]] = []
    for start in range(0, len(buckets), group):
        chunk = buckets[start : start + group]
        low = histogram.bucket_bounds(chunk[0][0])[0]
        high = histogram.bucket_bounds(chunk[-1][0])[1]
        rows.append((low, high, sum(count for _, count in chunk)))
    peak = max(count for _, _, count in rows)
    lines = []
    for low, high, count in rows:
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"{low:>10.4f}-{high:<10.4f} {count:>8d} {bar}")
    if histogram.underflow:
        lines.append(f"{'<= 0':>21} {histogram.underflow:>8d}")
    return "\n".join(lines)


def unit_latency_report(result: UnitResult) -> str:
    """Per-phase pooled percentile lines for one streamed unit."""
    lines = [f"Latency profile {result.label}"]
    for phase_name, phase_result in result.phases.items():
        histogram = merged_histogram(phase_result)
        if histogram is None:
            lines.append(f"  {phase_name}: (exact path, no histogram)")
            continue
        profile = percentile_profile(phase_result)
        rendered = "  ".join(
            f"p{q:g}={value:.4f}s" for q, value in sorted(profile.items())
        )
        lines.append(f"  {phase_name}: n={histogram.total}  {rendered}")
    return "\n".join(lines)
