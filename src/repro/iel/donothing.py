"""The DoNothing IEL (Table 3): an empty function.

Used to measure the system without execution-layer complexity — the
benchmark that reveals the consensus and networking ceiling.
"""

from __future__ import annotations

import typing

from repro.iel.base import InterfaceExecutionLayer, StateInterface
from repro.storage.transaction import Payload


class DoNothingIEL(InterfaceExecutionLayer):
    """An IEL with a single no-op function."""

    name = "DoNothing"

    def functions(self) -> typing.Tuple[str, ...]:
        return ("DoNothing",)

    def _fn_donothing(self, payload: Payload, state: StateInterface) -> None:
        return None
