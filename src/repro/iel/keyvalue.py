"""The KeyValue IEL (Table 3): Set writes a pair, Get reads by key.

Targets the storage component. The Set benchmark never writes duplicate
keys (Section 4.1); the Get benchmark reads back the keys the preceding
Set unit wrote. ``Rmw`` (read-modify-write) extends the table for
skewed workload specs: it reads the key before upserting it, so its
read set is recorded — on execute-order-validate systems (Fabric)
concurrent Rmws of one hot key genuinely invalidate each other, which
a blind Set never does.
"""

from __future__ import annotations

import typing

from repro.iel.base import IELError, InterfaceExecutionLayer, StateInterface
from repro.storage.transaction import Payload


class KeyValueIEL(InterfaceExecutionLayer):
    """Key-value storage functions."""

    name = "KeyValue"

    def functions(self) -> typing.Tuple[str, ...]:
        return ("Set", "Get", "Rmw")

    def _fn_set(self, payload: Payload, state: StateInterface) -> None:
        key = payload.arg("key")
        if key is None:
            raise IELError("Set requires a 'key' argument")
        state.put(str(key), payload.arg("value"))
        return None

    def _fn_get(self, payload: Payload, state: StateInterface) -> object:
        key = payload.arg("key")
        if key is None:
            raise IELError("Get requires a 'key' argument")
        return state.require(str(key))

    def _fn_rmw(self, payload: Payload, state: StateInterface) -> None:
        key = payload.arg("key")
        if key is None:
            raise IELError("Rmw requires a 'key' argument")
        # The read is the point: it lands in the transaction's read set,
        # making concurrent writers of the same key conflict. A missing
        # key is fine — the first Rmw of a key is a plain insert.
        state.get(str(key))
        state.put(str(key), payload.arg("value"))
        return None
