"""Interface execution layers (IELs).

The paper's standardized term for smart-contract constructs (chaincode,
operations, flows, transaction processors...). Three IELs drive every
benchmark (Table 3): DoNothing, KeyValue and BankingApp. Each is written
against the abstract :class:`~repro.iel.base.StateInterface`, so one IEL
implementation runs on every system model — world-state backed systems
plug in a direct adapter, Fabric a read/write-set recording adapter and
Corda a vault adapter whose reads are linear scans.

Custom IELs register through :mod:`repro.iel.registry`, mirroring
COCONUT's extensibility goal.
"""

from repro.iel.banking import BankingAppIEL
from repro.iel.base import (
    ExecutionResult,
    IELError,
    InterfaceExecutionLayer,
    StateInterface,
    WorldStateAdapter,
)
from repro.iel.donothing import DoNothingIEL
from repro.iel.keyvalue import KeyValueIEL
from repro.iel.registry import available_iels, create_iel, register_iel

__all__ = [
    "BankingAppIEL",
    "DoNothingIEL",
    "ExecutionResult",
    "IELError",
    "InterfaceExecutionLayer",
    "KeyValueIEL",
    "StateInterface",
    "WorldStateAdapter",
    "available_iels",
    "create_iel",
    "register_iel",
]
