"""IEL abstractions: state access, execution results, the layer protocol."""

from __future__ import annotations

import abc
import dataclasses
import typing

from repro.storage.state import ReadWriteSet, WorldState
from repro.storage.transaction import Payload


class IELError(Exception):
    """A payload failed inside the IEL (missing key, insufficient funds...)."""


@dataclasses.dataclass
class ExecutionResult:
    """Outcome and cost accounting of executing one payload."""

    ok: bool
    error: str = ""
    #: Abstract work units consumed; the hosting node converts these to
    #: simulated time using its performance profile. A plain key access is
    #: 1 unit; a Corda vault scan is one unit per state scanned.
    work_units: float = 1.0
    reads: int = 0
    writes: int = 0
    value: object = None


class StateInterface(abc.ABC):
    """What an IEL may do to ledger state.

    Implementations track the abstract work performed in :attr:`work`,
    which execution results report back to the node's cost model.
    """

    def __init__(self) -> None:
        self.work = 0.0
        self.reads = 0
        self.writes = 0

    @abc.abstractmethod
    def get(self, key: str) -> typing.Optional[object]:
        """Read a value (``None`` when absent)."""

    @abc.abstractmethod
    def put(self, key: str, value: object) -> None:
        """Write a value."""

    def require(self, key: str) -> object:
        """Read a value, raising :class:`IELError` when absent."""
        value = self.get(key)
        if value is None:
            raise IELError(f"key not found: {key!r}")
        return value


class WorldStateAdapter(StateInterface):
    """Direct world-state access — the order-execute systems' adapter."""

    def __init__(self, state: WorldState) -> None:
        super().__init__()
        self.state = state

    def get(self, key: str) -> typing.Optional[object]:
        self.reads += 1
        self.work += 1.0
        return self.state.get(key)

    def put(self, key: str, value: object) -> None:
        self.writes += 1
        self.work += 1.0
        self.state.set(key, value)


class ReadWriteSetAdapter(StateInterface):
    """Snapshot simulation recording a read/write set — Fabric's adapter.

    Reads see the snapshot plus the transaction's own writes; nothing
    touches the world state until the validate phase applies the set.
    """

    def __init__(self, state: WorldState) -> None:
        super().__init__()
        self.state = state
        self.rwset = ReadWriteSet()

    def get(self, key: str) -> typing.Optional[object]:
        self.reads += 1
        self.work += 1.0
        if key in self.rwset.writes:
            return self.rwset.writes[key]
        if key in self.rwset.deletes:
            return None
        value, version = self.state.get_versioned(key)
        self.rwset.record_read(key, version)
        return value

    def put(self, key: str, value: object) -> None:
        self.writes += 1
        self.work += 1.0
        self.rwset.record_write(key, value)


class InterfaceExecutionLayer(abc.ABC):
    """One deployed smart contract: a named set of functions."""

    #: The IEL's registry name ("DoNothing", "KeyValue", "BankingApp").
    name: str = ""

    @abc.abstractmethod
    def functions(self) -> typing.Tuple[str, ...]:
        """The function names this IEL exposes."""

    def execute(self, payload: Payload, state: StateInterface) -> ExecutionResult:
        """Run one payload against ``state``.

        Dispatches to ``_fn_<function>``; IEL errors become failed
        results, never exceptions (the node decides what failure means —
        discard, invalidate, reject the batch...).
        """
        handler = getattr(self, f"_fn_{payload.function.lower()}", None)
        if handler is None or payload.function not in self.functions():
            return ExecutionResult(
                ok=False,
                error=f"unknown function {payload.function!r} in IEL {self.name!r}",
                work_units=1.0,
            )
        work_before = state.work
        reads_before, writes_before = state.reads, state.writes
        try:
            value = handler(payload, state)
        except IELError as error:
            return ExecutionResult(
                ok=False,
                error=str(error),
                work_units=max(1.0, state.work - work_before),
                reads=state.reads - reads_before,
                writes=state.writes - writes_before,
            )
        return ExecutionResult(
            ok=True,
            work_units=max(1.0, state.work - work_before),
            reads=state.reads - reads_before,
            writes=state.writes - writes_before,
            value=value,
        )
