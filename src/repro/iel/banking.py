"""The BankingApp IEL (Table 3): accounts, payments, balance checks.

Designed so that side effects occur: SendPayment moves money from
account_n to account_{n+1}, producing overwriting transactions within a
block (or consumed states, on Corda) — the serialisability stress test of
Section 4.1.
"""

from __future__ import annotations

import typing

from repro.iel.base import IELError, InterfaceExecutionLayer, StateInterface
from repro.storage.transaction import Payload

#: Key prefixes for the two account types.
CHECKING_PREFIX = "checking:"
SAVING_PREFIX = "saving:"


def checking_key(account: str) -> str:
    """World-state key of an account's checking balance."""
    return CHECKING_PREFIX + account


def saving_key(account: str) -> str:
    """World-state key of an account's saving balance."""
    return SAVING_PREFIX + account


class BankingAppIEL(InterfaceExecutionLayer):
    """The banking application from the paper's third benchmark."""

    name = "BankingApp"

    def functions(self) -> typing.Tuple[str, ...]:
        return ("CreateAccount", "SendPayment", "Balance")

    def _fn_createaccount(self, payload: Payload, state: StateInterface) -> None:
        account = payload.arg("account")
        if account is None:
            raise IELError("CreateAccount requires an 'account' argument")
        checking = payload.arg("checking", 0)
        saving = payload.arg("saving", 0)
        if checking < 0 or saving < 0:
            raise IELError("initial balances must be non-negative")
        state.put(checking_key(account), checking)
        state.put(saving_key(account), saving)
        return None

    def _fn_sendpayment(self, payload: Payload, state: StateInterface) -> None:
        source = payload.arg("source")
        destination = payload.arg("destination")
        amount = payload.arg("amount", 0)
        if source is None or destination is None:
            raise IELError("SendPayment requires 'source' and 'destination'")
        if amount <= 0:
            raise IELError(f"payment amount must be positive, got {amount}")
        source_balance = state.get(checking_key(source))
        destination_balance = state.get(checking_key(destination))
        if source_balance is None:
            raise IELError(f"unknown source account {source!r}")
        if destination_balance is None:
            raise IELError(f"unknown destination account {destination!r}")
        if source_balance < amount:
            raise IELError(
                f"insufficient funds in {source!r}: {source_balance} < {amount}"
            )
        state.put(checking_key(source), source_balance - amount)
        state.put(checking_key(destination), destination_balance + amount)
        return None

    def _fn_balance(self, payload: Payload, state: StateInterface) -> object:
        account = payload.arg("account")
        if account is None:
            raise IELError("Balance requires an 'account' argument")
        checking = state.get(checking_key(account))
        saving = state.get(saving_key(account))
        if checking is None and saving is None:
            raise IELError(f"unknown account {account!r}")
        return (checking or 0) + (saving or 0)
