"""IEL registry — COCONUT's extensibility point for custom contracts."""

from __future__ import annotations

import typing

from repro.iel.banking import BankingAppIEL
from repro.iel.base import InterfaceExecutionLayer
from repro.iel.donothing import DoNothingIEL
from repro.iel.keyvalue import KeyValueIEL

_REGISTRY: typing.Dict[str, typing.Type[InterfaceExecutionLayer]] = {}


def register_iel(iel_class: typing.Type[InterfaceExecutionLayer]) -> typing.Type[InterfaceExecutionLayer]:
    """Register an IEL class under its ``name`` (usable as a decorator)."""
    if not iel_class.name:
        raise ValueError(f"{iel_class.__name__} has no name")
    existing = _REGISTRY.get(iel_class.name)
    if existing is not None and existing is not iel_class:
        raise ValueError(f"IEL name {iel_class.name!r} already registered by {existing.__name__}")
    _REGISTRY[iel_class.name] = iel_class
    return iel_class


def create_iel(name: str) -> InterfaceExecutionLayer:
    """Instantiate a registered IEL by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown IEL {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name]()


def available_iels() -> typing.List[str]:
    """Names of all registered IELs."""
    return sorted(_REGISTRY)


register_iel(DoNothingIEL)
register_iel(KeyValueIEL)
register_iel(BankingAppIEL)
