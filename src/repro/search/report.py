"""Capacity-search results: probe trajectory and knee summary.

A :class:`CapacityReport` is the searchable analogue of the paper's
per-system table rows: the maximum sustainable throughput (MTPS with the
Student-t confidence interval the rest of the package uses), the knee
configuration that produced it, and the full probe trajectory so the
search itself is auditable.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.coconut.metrics import MetricSummary


@dataclasses.dataclass
class ProbeRecord:
    """One executed probe, in search order."""

    sequence: int
    rate_limit: int
    aggregate_rate: int
    params: typing.Dict[str, object]
    tps: float
    mean_fls: float
    loss_fraction: float
    sustainable: bool
    reasons: typing.Tuple[str, ...] = ()
    cached: bool = False

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        data = dataclasses.asdict(self)
        data["reasons"] = list(self.reasons)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeRecord":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        data["reasons"] = tuple(data.get("reasons", ()))
        return cls(**data)


@dataclasses.dataclass
class CapacityReport:
    """The outcome of one capacity search."""

    system: str
    iel: str
    phase: str
    strategy: str
    space: str
    scale: float
    repetitions: int
    seed: int
    criteria: str
    probes: typing.List[ProbeRecord]
    #: Per-client rate limiter at the knee (None: nothing sustainable).
    knee_rate: typing.Optional[int]
    #: The paper's RL column: knee rate times the client count.
    knee_aggregate_rate: typing.Optional[int]
    #: Swept system parameters at the knee ({} for rate-only spaces).
    knee_params: typing.Dict[str, object]
    #: MTPS at the knee across repetitions (Student-t 95% CI).
    mtps: typing.Optional[MetricSummary]
    #: MFLS at the knee across repetitions.
    mfls: typing.Optional[MetricSummary]

    @property
    def found(self) -> bool:
        """Whether any probed operating point was sustainable."""
        return self.knee_rate is not None

    @property
    def probe_count(self) -> int:
        """Probes issued (cache hits included — they are still probes)."""
        return len(self.probes)

    def verdict(self) -> str:
        """One-line outcome for tables and CLI output."""
        if not self.found:
            return (
                f"no sustainable operating point in {self.space} "
                f"at scale {self.scale}"
            )
        assert self.mtps is not None
        return (
            f"MTPS={self.mtps.format()} at RL={self.knee_aggregate_rate} "
            f"({self.probe_count} probes)"
        )

    def render(self) -> str:
        """Trajectory table plus the knee summary."""
        from repro.coconut.report import format_table

        rows = []
        for probe in self.probes:
            setting = f"RL={probe.aggregate_rate}"
            if probe.params:
                setting += " " + " ".join(
                    f"{key}={value}" for key, value in sorted(probe.params.items())
                )
            rows.append(
                [
                    str(probe.sequence),
                    setting,
                    f"{probe.tps:.2f}",
                    f"{probe.mean_fls:.2f}",
                    f"{probe.loss_fraction:.1%}",
                    ("cached " if probe.cached else "")
                    + ("sustainable" if probe.sustainable else "; ".join(probe.reasons)),
                ]
            )
        table = format_table(
            ["#", "Setting", "TPS", "FLS (s)", "Loss", "Verdict"], rows
        )
        header = (
            f"Capacity search: {self.system} {self.iel}-{self.phase} "
            f"[{self.strategy}] over {self.space}\n"
            f"criteria: {self.criteria}; scale={self.scale} "
            f"repetitions={self.repetitions} seed={self.seed}"
        )
        knee = f"knee: {self.verdict()}"
        if self.found and self.knee_params:
            knee += " " + " ".join(
                f"{key}={value}" for key, value in sorted(self.knee_params.items())
            )
        if self.found:
            assert self.mfls is not None
            knee += f"; MFLS={self.mfls.format()}s"
        return f"{header}\n{table}\n{knee}"

    def to_dict(self) -> dict:
        """JSON-ready representation (deterministic: no wall times)."""
        return {
            "system": self.system,
            "iel": self.iel,
            "phase": self.phase,
            "strategy": self.strategy,
            "space": self.space,
            "scale": self.scale,
            "repetitions": self.repetitions,
            "seed": self.seed,
            "criteria": self.criteria,
            "probes": [probe.to_dict() for probe in self.probes],
            "knee_rate": self.knee_rate,
            "knee_aggregate_rate": self.knee_aggregate_rate,
            "knee_params": self.knee_params,
            "mtps": None if self.mtps is None else dataclasses.asdict(self.mtps),
            "mfls": None if self.mfls is None else dataclasses.asdict(self.mfls),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CapacityReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            system=data["system"],
            iel=data["iel"],
            phase=data["phase"],
            strategy=data["strategy"],
            space=data["space"],
            scale=data["scale"],
            repetitions=data["repetitions"],
            seed=data["seed"],
            criteria=data["criteria"],
            probes=[ProbeRecord.from_dict(item) for item in data["probes"]],
            knee_rate=data["knee_rate"],
            knee_aggregate_rate=data["knee_aggregate_rate"],
            knee_params=data["knee_params"],
            mtps=None if data["mtps"] is None else MetricSummary(**data["mtps"]),
            mfls=None if data["mfls"] is None else MetricSummary(**data["mfls"]),
        )
