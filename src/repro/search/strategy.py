"""Rate-search strategies: how to pick the next probe.

A strategy explores one :class:`~repro.search.space.Domain` of rate
settings, observing a sustainable/saturated verdict per probe, and
converges on the *knee*: the highest grid point judged sustainable.
Strategies are pure state machines over their observations — no RNG, no
clock — so one (space, response) pair always yields one probe sequence,
which is what makes search reports reproducible artifacts.

Two strategies:

* :class:`BisectionStrategy` — the paper's manual procedure mechanized:
  exponential ramp-up from the bottom of the domain until the first
  saturated probe, then bisection of the bracket down to one step.
  O(log n) probes on the monotone response curves saturation produces
  (Gromit, arXiv:2208.11254, uses the same shape for its saturation
  search).
* :class:`GridStrategy` — probe every grid point; the oracle baseline
  the CI smoke compares bisection against, and the right tool for
  non-monotone responses.
"""

from __future__ import annotations

import typing

from repro.search.space import Domain

Rate = typing.Union[int, float]


class RateStrategy:
    """Base class: a resumable probe planner over one rate domain."""

    name = "abstract"

    def __init__(self, domain: Domain) -> None:
        self.domain = domain

    def next_rates(self) -> typing.List[Rate]:
        """Rates to probe next, in order (empty once converged)."""
        raise NotImplementedError

    def observe(self, rate: Rate, sustainable: bool) -> None:
        """Feed one probe's verdict back."""
        raise NotImplementedError

    def done(self) -> bool:
        """Whether the strategy has converged."""
        raise NotImplementedError

    def knee(self) -> typing.Optional[Rate]:
        """The highest sustainable rate found (None: nothing sustainable)."""
        raise NotImplementedError


class BisectionStrategy(RateStrategy):
    """Exponential ramp-up, then bisection on the saturation bracket."""

    name = "bisect"

    def __init__(self, domain: Domain, ramp_factor: float = 2.0) -> None:
        super().__init__(domain)
        if ramp_factor <= 1.0:
            raise ValueError(f"ramp_factor must be > 1, got {ramp_factor}")
        self.ramp_factor = ramp_factor
        #: Highest grid index judged sustainable (None until one is).
        self._lo: typing.Optional[int] = None
        #: Lowest grid index judged saturated (None until one is).
        self._hi: typing.Optional[int] = None
        self._pending: typing.Optional[int] = 0  # start at domain.low
        self._done = False

    def next_rates(self) -> typing.List[Rate]:
        if self._done or self._pending is None:
            return []
        return [self.domain.value_at(self._pending)]

    def observe(self, rate: Rate, sustainable: bool) -> None:
        index = self.domain.index_of(rate)
        if sustainable:
            self._lo = index if self._lo is None else max(self._lo, index)
        else:
            self._hi = index if self._hi is None else min(self._hi, index)
        self._pending = self._plan()
        if self._pending is None:
            self._done = True

    def _plan(self) -> typing.Optional[int]:
        """The next grid index to probe, or None once converged."""
        if self._hi is None:
            # Still ramping: every probe so far was sustainable.
            assert self._lo is not None
            if self._lo >= self.domain.count - 1:
                return None  # the whole domain is sustainable
            value = self.domain.value_at(self._lo) * self.ramp_factor
            # Quantization of a small ramp can land on the same index;
            # force progress by at least one step.
            return max(self.domain.index_of(value), self._lo + 1)
        if self._lo is None:
            # The very first probe (domain.low) already saturated.
            return None if self._hi == 0 else 0
        if self._hi - self._lo <= 1:
            return None  # bracket is one step wide: converged
        return (self._lo + self._hi) // 2

    def done(self) -> bool:
        return self._done

    def knee(self) -> typing.Optional[Rate]:
        if not self._done or self._lo is None:
            return None
        return self.domain.value_at(self._lo)


class GridStrategy(RateStrategy):
    """Probe the whole grid; the exhaustive oracle."""

    name = "grid"

    def __init__(self, domain: Domain) -> None:
        super().__init__(domain)
        self._issued = False
        self._observed: typing.Dict[int, bool] = {}

    def next_rates(self) -> typing.List[Rate]:
        if self._issued:
            return []
        self._issued = True
        return list(self.domain.grid())

    def observe(self, rate: Rate, sustainable: bool) -> None:
        self._observed[self.domain.index_of(rate)] = sustainable

    def done(self) -> bool:
        return self._issued and len(self._observed) >= self.domain.count

    def knee(self) -> typing.Optional[Rate]:
        if not self.done():
            return None
        sustainable = [index for index, ok in self._observed.items() if ok]
        if not sustainable:
            return None
        return self.domain.value_at(max(sustainable))


#: Strategy name -> class, for the CLI and experiment definitions.
STRATEGIES: typing.Dict[str, typing.Type[RateStrategy]] = {
    BisectionStrategy.name: BisectionStrategy,
    GridStrategy.name: GridStrategy,
}


def build_strategy(name: str, domain: Domain) -> RateStrategy:
    """Construct one strategy by name."""
    if name not in STRATEGIES:
        raise KeyError(f"unknown strategy {name!r}; known: {sorted(STRATEGIES)}")
    return STRATEGIES[name](domain)
