"""Saturation detection: is an operating point sustainable?

The paper's manual procedure raises the rate limiter until the system
"can no longer keep up", visible in its tables as lost transactions,
confirmations that run into the listen window, and finalization
latencies that blow up (Sections 4.4-4.5). The judge mechanizes exactly
those three signals, reading them off the :class:`PhaseMetrics` the
measurement path already produces — saturation detection shares the
Section 4.5 formulas with the reported numbers instead of inventing a
parallel metric.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.coconut.config import BenchmarkConfig
from repro.coconut.results import PhaseResult


@dataclasses.dataclass(frozen=True)
class Verdict:
    """One probe's classification with the evidence behind it."""

    sustainable: bool
    tps: float
    mean_fls: float
    loss_fraction: float
    #: Mean phase duration over the send window plus drain allowance
    #: (> 1.0 means the backlog was still draining when clients stopped
    #: listening).
    drain_ratio: float
    reasons: typing.Tuple[str, ...] = ()

    def describe(self) -> str:
        """``ok`` or the joined failure reasons."""
        return "ok" if self.sustainable else "; ".join(self.reasons)


class SustainabilityJudge:
    """Classifies probes from their phase metrics.

    A probe is *sustainable* when all of these hold:

    * **Losses** — at most ``max_loss_fraction`` of the expected
      transactions never confirmed (the even-numbered tables' NoT gap).
    * **Drain** — the measured duration (Formula 3) stays within the
      send window plus ``drain_fraction`` of the listen tail; a system
      still confirming when the listen window closes has an undrained
      backlog, the paper's liveness signal.
    * **Latency SLO** — when ``slo_latency`` is set, the MFLS
      (Formula 1) stays at or below it. BLOCKBENCH-style peak-under-SLO
      searches set this; the default (None) reproduces the paper's
      loss-driven procedure.
    """

    def __init__(
        self,
        max_loss_fraction: float = 0.02,
        drain_fraction: float = 0.95,
        slo_latency: typing.Optional[float] = None,
    ) -> None:
        if not 0.0 <= max_loss_fraction < 1.0:
            raise ValueError(
                f"max_loss_fraction must be in [0, 1), got {max_loss_fraction}"
            )
        if not 0.0 < drain_fraction <= 1.0:
            raise ValueError(f"drain_fraction must be in (0, 1], got {drain_fraction}")
        if slo_latency is not None and slo_latency <= 0:
            raise ValueError(f"slo_latency must be > 0, got {slo_latency}")
        self.max_loss_fraction = max_loss_fraction
        self.drain_fraction = drain_fraction
        self.slo_latency = slo_latency

    def judge(self, phase_result: PhaseResult, config: BenchmarkConfig) -> Verdict:
        """Classify one probe's reported phase."""
        reasons: typing.List[str] = []
        loss = phase_result.loss_fraction
        tps = phase_result.mtps.mean
        mean_fls = phase_result.mfls.mean
        duration = phase_result.duration.mean
        allowed = config.scaled_send + self.drain_fraction * (
            config.scaled_listen - config.scaled_send
        )
        drain_ratio = duration / allowed if allowed > 0 else 0.0
        if phase_result.received.mean == 0:
            reasons.append("no transactions confirmed")
        if loss > self.max_loss_fraction:
            reasons.append(
                f"lost {loss:.1%} of expected transactions "
                f"(> {self.max_loss_fraction:.1%})"
            )
        if drain_ratio > 1.0:
            reasons.append(
                f"confirmations ran into the listen window "
                f"(duration {duration:.1f}s > {allowed:.1f}s)"
            )
        if self.slo_latency is not None and mean_fls > self.slo_latency:
            reasons.append(
                f"MFLS {mean_fls:.2f}s exceeds the {self.slo_latency:.2f}s SLO"
            )
        return Verdict(
            sustainable=not reasons,
            tps=tps,
            mean_fls=mean_fls,
            loss_fraction=loss,
            drain_ratio=drain_ratio,
            reasons=tuple(reasons),
        )

    def describe(self) -> str:
        """One-line criteria rendering for reports."""
        parts = [
            f"loss <= {self.max_loss_fraction:.1%}",
            f"drain <= {self.drain_fraction:.0%} of listen tail",
        ]
        if self.slo_latency is not None:
            parts.append(f"MFLS <= {self.slo_latency:.2f}s")
        return ", ".join(parts)
