"""Automated capacity search: find maximum sustainable throughput.

The paper's headline numbers come from manually sweeping the rate
limiter until each system saturates; this package mechanizes that
procedure as a deterministic operating-point search. A
:class:`CapacitySearch` drives ordinary benchmark units over a
quantized :class:`SearchSpace`, a :class:`SustainabilityJudge`
classifies each probe from the existing Section 4.5 metrics, and a
strategy (exponential ramp-up + bisection, or an exhaustive grid
oracle) converges on the knee. Probes fan out through
:mod:`repro.parallel` and its result cache; the outcome is a
:class:`CapacityReport` with the MTPS confidence interval, the knee
configuration and the full probe trajectory.
"""

from repro.search.engine import REPORTED_PHASES, CapacitySearch
from repro.search.judge import SustainabilityJudge, Verdict
from repro.search.report import CapacityReport, ProbeRecord
from repro.search.space import Domain, SearchSpace, rate_space
from repro.search.strategy import (
    STRATEGIES,
    BisectionStrategy,
    GridStrategy,
    RateStrategy,
    build_strategy,
)

__all__ = [
    "BisectionStrategy",
    "CapacityReport",
    "CapacitySearch",
    "Domain",
    "GridStrategy",
    "ProbeRecord",
    "RateStrategy",
    "REPORTED_PHASES",
    "STRATEGIES",
    "SearchSpace",
    "SustainabilityJudge",
    "Verdict",
    "build_strategy",
    "rate_space",
]
