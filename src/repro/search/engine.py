"""The capacity-search engine: drives benchmark probes to the knee.

One :class:`CapacitySearch` owns a benchmark template (system, IEL,
judged phase, windows, seed), a :class:`~repro.search.space.SearchSpace`
and a strategy name. Running it repeatedly probes operating points —
each probe is an ordinary benchmark unit through the ordinary
measurement path — until the strategy converges on the maximum
sustainable throughput.

Integration points:

* probes fan out through :mod:`repro.parallel` executors (each round's
  probe batch is independent) and land in the content-addressed result
  cache, so a grid-oracle run warms a later bisection run and repeated
  searches are free;
* every probe emits a ``search``-category span through
  :mod:`repro.trace` when a tracer is supplied;
* ``check=True`` composes the :mod:`repro.invariants` oracle layer with
  the search (serial path only — checked units cannot ride the result
  cache, whose fingerprints do not cover checking).

Determinism: strategies are pure state machines and probe configs carry
a fixed seed, so one (space, seed) pair yields one probe sequence and
one report, byte-identical across runs and executor kinds.
"""

from __future__ import annotations

import time
import typing

from repro.coconut.config import BenchmarkConfig, unit_for_iel
from repro.coconut.results import PhaseResult, UnitResult
from repro.coconut.runner import BenchmarkRunner
from repro.search.judge import SustainabilityJudge, Verdict
from repro.search.report import CapacityReport, ProbeRecord
from repro.search.space import SearchSpace
from repro.search.strategy import build_strategy

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.invariants import InvariantReport
    from repro.parallel.executor import Executor
    from repro.trace.tracer import Tracer

#: The phase whose numbers the paper reports per IEL — the phase the
#: judge watches unless told otherwise.
REPORTED_PHASES: typing.Dict[str, str] = {
    "DoNothing": "DoNothing",
    "KeyValue": "Set",
    "BankingApp": "SendPayment",
}


class CapacitySearch:
    """A reproducible maximum-sustainable-throughput search."""

    def __init__(
        self,
        system: str,
        iel: str,
        space: SearchSpace,
        phase: typing.Optional[str] = None,
        strategy: str = "bisect",
        judge: typing.Optional[SustainabilityJudge] = None,
        config_kwargs: typing.Optional[typing.Dict[str, object]] = None,
        scale: float = 0.05,
        repetitions: int = 1,
        seed: int = 0,
        stream_metrics: bool = False,
    ) -> None:
        self.system = system
        self.iel = iel
        self.space = space
        self.phase = phase or REPORTED_PHASES[iel]
        full_unit = unit_for_iel(iel)
        if self.phase not in full_unit:
            raise ValueError(f"phase {self.phase!r} not part of the {iel} unit {full_unit}")
        #: Probes run the unit only up to the judged phase: later phases
        #: cannot influence it, and dropping them keeps probes cheap
        #: while preserving in-unit history effects (a SendPayment probe
        #: still runs CreateAccount first).
        self._phases = full_unit[: full_unit.index(self.phase) + 1]
        self.strategy_name = strategy
        # Validate the name now, not at the first probe round.
        build_strategy(strategy, space.rate)
        self.judge = judge or SustainabilityJudge()
        self.config_kwargs = dict(config_kwargs or {})
        #: Probe through the constant-memory streaming path. High-rate
        #: saturation probes are exactly where per-record retention
        #: peaks (the offered load the search exists to push), so the
        #: judge's loss/latency inputs are computed identically either
        #: way — see tests/stream/test_equivalence.py.
        self.stream_metrics = stream_metrics
        self.scale = scale
        self.repetitions = repetitions
        self.seed = seed
        #: Per-probe merged invariant reports of the last checked run.
        self.last_invariants: typing.List["InvariantReport"] = []

    def build_config(
        self, rate: int, combo: typing.Optional[typing.Dict[str, object]] = None
    ) -> BenchmarkConfig:
        """The benchmark unit one probe runs."""
        kwargs = dict(self.config_kwargs)
        params = dict(typing.cast(dict, kwargs.pop("params", {})))
        if combo:
            params.update(combo)
        return BenchmarkConfig(
            system=self.system,
            iel=self.iel,
            rate_limit=int(rate),
            phases=self._phases if self._phases != unit_for_iel(self.iel) else None,
            params=params,
            scale=self.scale,
            repetitions=self.repetitions,
            seed=self.seed,
            stream_metrics=self.stream_metrics,
            **kwargs,
        )

    def run(
        self,
        executor: typing.Optional["Executor"] = None,
        runner: typing.Optional[BenchmarkRunner] = None,
        tracer: typing.Optional["Tracer"] = None,
        progress: typing.Optional[typing.Callable[[str], None]] = None,
        check: bool = False,
        check_level: str = "basic",
    ) -> CapacityReport:
        """Search the space; returns the capacity report.

        Probes fan out through ``executor`` when given (one batch per
        search round), else run serially through ``runner``. ``check``
        installs the invariant oracles on every probe and requires the
        serial path.
        """
        if check and executor is not None:
            raise ValueError(
                "checked searches run serially: cached/pooled units do not "
                "carry invariant reports (fingerprints do not cover --check)"
            )
        progress = progress or (lambda message: None)
        self.last_invariants = []
        if executor is None:
            runner = runner or BenchmarkRunner(
                keep_last_rig=False, check=check, check_level=check_level
            )
        combos = self.space.combos()
        strategies = [build_strategy(self.strategy_name, self.space.rate) for _ in combos]
        #: (combo index, rate) -> the probe's judged phase result.
        results: typing.Dict[typing.Tuple[int, int], PhaseResult] = {}
        verdicts: typing.Dict[typing.Tuple[int, int], Verdict] = {}
        probes: typing.List[ProbeRecord] = []
        wall_start = time.perf_counter()
        while True:
            requests: typing.List[typing.Tuple[int, int]] = []
            for combo_index, strategy in enumerate(strategies):
                for rate in strategy.next_rates():
                    requests.append((combo_index, int(rate)))
            if not requests:
                break
            configs = [
                self.build_config(rate, combos[combo_index])
                for combo_index, rate in requests
            ]
            round_start = time.perf_counter() - wall_start
            if executor is not None:
                outcomes = executor.run_units(configs)
                units = [(outcome.result, outcome.cached) for outcome in outcomes]
            else:
                assert runner is not None
                units = []
                for config in configs:
                    units.append((runner.run(config), False))
                    if check and runner.last_invariants is not None:
                        self.last_invariants.append(runner.last_invariants)
            for (combo_index, rate), config, (unit, cached) in zip(
                requests, configs, units
            ):
                self._record_probe(
                    combo_index, rate, combos[combo_index], config, unit, cached,
                    strategies[combo_index], results, verdicts, probes,
                    tracer, (round_start, time.perf_counter() - wall_start), progress,
                )
        return self._build_report(combos, strategies, results, probes)

    def _record_probe(
        self,
        combo_index: int,
        rate: int,
        combo: typing.Dict[str, object],
        config: BenchmarkConfig,
        unit: UnitResult,
        cached: bool,
        strategy,
        results: typing.Dict[typing.Tuple[int, int], PhaseResult],
        verdicts: typing.Dict[typing.Tuple[int, int], Verdict],
        probes: typing.List[ProbeRecord],
        tracer: typing.Optional["Tracer"],
        wall_window: typing.Tuple[float, float],
        progress: typing.Callable[[str], None],
    ) -> None:
        """Judge one executed probe and feed its strategy."""
        phase_result = unit.phase(self.phase)
        verdict = self.judge.judge(phase_result, config)
        strategy.observe(rate, verdict.sustainable)
        results[(combo_index, rate)] = phase_result
        verdicts[(combo_index, rate)] = verdict
        probes.append(
            ProbeRecord(
                sequence=len(probes),
                rate_limit=rate,
                aggregate_rate=rate * config.client_count,
                params=dict(combo),
                tps=verdict.tps,
                mean_fls=verdict.mean_fls,
                loss_fraction=verdict.loss_fraction,
                sustainable=verdict.sustainable,
                reasons=verdict.reasons,
                cached=cached,
            )
        )
        if tracer is not None and tracer.enabled:
            # Search spans live on the wall clock (seconds since the
            # search started), not simulated time: each probe is its own
            # simulation with its own clock.
            tracer.record_span(
                "probe", category="search",
                start=wall_window[0], end=wall_window[1],
                system=self.system, iel=self.iel, phase=self.phase,
                strategy=self.strategy_name, rate_limit=rate,
                aggregate_rate=rate * config.client_count,
                sustainable=verdict.sustainable, tps=round(verdict.tps, 2),
                cached=cached, sequence=len(probes) - 1,
            )
        progress(
            f"probe {len(probes)}: RL={rate * config.client_count} -> "
            f"tps={verdict.tps:.1f} {verdict.describe()}"
        )

    def _build_report(
        self,
        combos: typing.Tuple[typing.Dict[str, object], ...],
        strategies: typing.Sequence[typing.Any],
        results: typing.Dict[typing.Tuple[int, int], PhaseResult],
        probes: typing.List[ProbeRecord],
    ) -> CapacityReport:
        """Pick the best knee across combos and assemble the report."""
        best: typing.Optional[typing.Tuple[float, int, int]] = None
        for combo_index, strategy in enumerate(strategies):
            knee = strategy.knee()
            if knee is None:
                continue
            phase_result = results[(combo_index, int(knee))]
            tps = phase_result.mtps.mean
            if best is None or tps > best[0]:
                best = (tps, combo_index, int(knee))
        client_count = self.build_config(int(self.space.rate.low)).client_count
        if best is None:
            knee_rate = None
            knee_aggregate = None
            knee_params: typing.Dict[str, object] = {}
            mtps = mfls = None
        else:
            __, combo_index, knee_rate = best
            knee_aggregate = knee_rate * client_count
            knee_params = dict(combos[combo_index])
            knee_result = results[(combo_index, knee_rate)]
            mtps = knee_result.mtps
            mfls = knee_result.mfls
        return CapacityReport(
            system=self.system,
            iel=self.iel,
            phase=self.phase,
            strategy=self.strategy_name,
            space=self.space.describe(),
            scale=self.scale,
            repetitions=self.repetitions,
            seed=self.seed,
            criteria=self.judge.describe(),
            probes=probes,
            knee_rate=knee_rate,
            knee_aggregate_rate=knee_aggregate,
            knee_params=knee_params,
            mtps=mtps,
            mfls=mfls,
        )
