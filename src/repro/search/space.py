"""Search spaces: typed, quantized parameter domains.

The paper's operators find each system's saturation point by sweeping
the rate limiter over a hand-picked grid (Section 4.4); a
:class:`SearchSpace` makes that grid explicit. Every domain is a closed
interval with a fixed step, so a search can only ever probe points of
the induced grid — probe sequences are reproducible, two strategies
exploring the same space compare like for like, and cache fingerprints
of repeated probes collide (a grid oracle run warms the cache for a
bisection run and vice versa).

The primary axis is the per-client rate limiter; block-finalization
parameters (block size, block time) can be added as secondary domains,
which the engine crosses into a grid of (params, rate-search) problems.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

#: Tolerance for float-step alignment checks.
_EPSILON = 1e-9


@dataclasses.dataclass(frozen=True)
class Domain:
    """One closed, stepped parameter interval: {low, low+step, ..., high}."""

    name: str
    low: float
    high: float
    step: float
    #: Integer domains (the rate limiter, block sizes) yield ints.
    integer: bool = True

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError(f"{self.name}: step must be > 0, got {self.step}")
        if self.low > self.high:
            raise ValueError(
                f"{self.name}: low must be <= high, got [{self.low}, {self.high}]"
            )
        span_steps = (self.high - self.low) / self.step
        if abs(span_steps - round(span_steps)) > 1e-6:
            raise ValueError(
                f"{self.name}: high - low must be a multiple of step, "
                f"got [{self.low}, {self.high}] step {self.step}"
            )
        if self.integer:
            for bound in (self.low, self.high, self.step):
                if abs(bound - round(bound)) > _EPSILON:
                    raise ValueError(
                        f"{self.name}: integer domain needs integer bounds/step, "
                        f"got [{self.low}, {self.high}] step {self.step}"
                    )

    @property
    def count(self) -> int:
        """Number of grid points."""
        return int(round((self.high - self.low) / self.step)) + 1

    def value_at(self, index: int) -> typing.Union[int, float]:
        """The grid point at ``index`` (0 = low)."""
        if not 0 <= index < self.count:
            raise IndexError(f"{self.name}: index {index} outside 0..{self.count - 1}")
        value = self.low + index * self.step
        return int(round(value)) if self.integer else value

    def index_of(self, value: float) -> int:
        """The nearest grid index for ``value``, clamped to the domain."""
        raw = round((value - self.low) / self.step)
        return max(0, min(self.count - 1, int(raw)))

    def quantize(self, value: float) -> typing.Union[int, float]:
        """Snap ``value`` to the nearest grid point, clamped to the domain."""
        return self.value_at(self.index_of(value))

    def grid(self) -> typing.Tuple[typing.Union[int, float], ...]:
        """Every grid point, ascending."""
        return tuple(self.value_at(index) for index in range(self.count))

    def describe(self) -> str:
        """Compact ``name in [low..high] step s`` rendering."""
        if self.integer:
            return f"{self.name} in [{int(self.low)}..{int(self.high)}] step {int(self.step)}"
        return f"{self.name} in [{self.low}..{self.high}] step {self.step}"

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Domain":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class SearchSpace:
    """What a capacity search may vary.

    ``rate`` is the per-client rate limiter (the paper's RL column is
    this times the client count); ``params`` are optional system
    parameters (block size/time) whose grids the engine crosses — each
    combination gets its own rate search, and the report's knee is the
    best (params, rate) point overall.
    """

    rate: Domain
    params: typing.Tuple[Domain, ...] = ()

    def __post_init__(self) -> None:
        if not self.rate.integer or self.rate.low < 1:
            raise ValueError(
                f"rate domain must be integer with low >= 1, got {self.rate.describe()}"
            )
        names = [domain.name for domain in self.params]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate param domains: {names}")

    def combos(self) -> typing.Tuple[typing.Dict[str, object], ...]:
        """Every params combination, in grid order ({} when no params)."""
        if not self.params:
            return ({},)
        grids = [domain.grid() for domain in self.params]
        return tuple(
            dict(zip((domain.name for domain in self.params), values))
            for values in itertools.product(*grids)
        )

    def describe(self) -> str:
        """One-line space description for reports."""
        parts = [self.rate.describe()]
        parts.extend(domain.describe() for domain in self.params)
        return "; ".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "rate": self.rate.to_dict(),
            "params": [domain.to_dict() for domain in self.params],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            rate=Domain.from_dict(data["rate"]),
            params=tuple(Domain.from_dict(item) for item in data.get("params", [])),
        )


def rate_space(low: int, high: int, step: int) -> SearchSpace:
    """A rate-only search space (the common case)."""
    return SearchSpace(rate=Domain(name="rate_limit", low=low, high=high, step=step))
