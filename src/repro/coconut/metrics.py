"""The evaluation metrics of Section 4.5.

* Formula (1) — MFLS: the mean finalization latency, averaged first over
  a repetition's transactions and then over repetitions.
* Formula (2) — MTPS: received transactions divided by the span from the
  first send (t_fstx) to the last confirmation (t_lrtx), across all
  clients, averaged over repetitions.
* Formula (3) — Duration: t_lrtx - t_fstx, which exposes liveness
  violations (a system that stops early, or runs past the send window).
* NoT: expected / received / not received transaction counts.

Per-repetition values carry SD, SEM and the 95% confidence interval
(Student t, matching the paper's r=3 statistics).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.coconut.client import CoconutClient

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stream.accumulator import PhaseAccumulator


#: Two-sided 95% Student-t critical values (t_{0.975, df}) for df 1-30.
#: Built in because the project declares zero dependencies: pulling scipy
#: for one quantile would crash repetitions>1 runs on clean machines.
_T_CRITICAL_95 = (
    12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060,
    2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199,
    2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739, 2.0687, 2.0639,
    2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423,
)

#: The normal-limit value t_{0.975, inf}.
_T_CRITICAL_95_INF = 1.9600


def t_critical(df: int, two_sided_alpha: float = 0.05) -> float:
    """Student-t critical value for a two-sided interval.

    Exact table values for df <= 30, then a 1/df interpolation toward
    the normal limit (accurate to ~1e-3 over the whole tail — e.g.
    df=60 -> 2.001 vs. the true 2.0003). Only alpha=0.05 is supported;
    that is the paper's (and this package's) only confidence level.
    """
    if df < 1:
        return 0.0
    if abs(two_sided_alpha - 0.05) > 1e-9:
        raise ValueError(
            f"only two-sided alpha=0.05 is tabulated, got {two_sided_alpha}"
        )
    if df <= len(_T_CRITICAL_95):
        return _T_CRITICAL_95[df - 1]
    span = _T_CRITICAL_95[-1] - _T_CRITICAL_95_INF
    return _T_CRITICAL_95_INF + span * len(_T_CRITICAL_95) / df


@dataclasses.dataclass(frozen=True)
class MetricSummary:
    """Mean with dispersion statistics across repetitions."""

    mean: float
    sd: float
    sem: float
    ci95: float

    def format(self, digits: int = 2) -> str:
        """``"12.84 ±0.38"`` style rendering."""
        return f"{self.mean:.{digits}f} ±{self.ci95:.{digits}f}"


def aggregate(values: typing.Sequence[float]) -> MetricSummary:
    """Summarise one metric across repetitions (Section 5 statistics)."""
    if not values:
        return MetricSummary(0.0, 0.0, 0.0, 0.0)
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return MetricSummary(mean, 0.0, 0.0, 0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sd = math.sqrt(variance)
    sem = sd / math.sqrt(n)
    ci95 = t_critical(n - 1) * sem
    return MetricSummary(mean, sd, sem, ci95)


def confidence_interval(values: typing.Sequence[float]) -> typing.Tuple[float, float]:
    """The 95% CI bounds for a metric's repetitions."""
    summary = aggregate(values)
    return summary.mean - summary.ci95, summary.mean + summary.ci95


def percentile(sorted_values: typing.Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample.

    Nearest-rank (not interpolated) so the value is always one actually
    observed latency; 0.0 for an empty sample, mirroring the total-
    failure convention of the other metrics.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[max(0, rank - 1)]


@dataclasses.dataclass
class PhaseMetrics:
    """One repetition's end-to-end numbers for one phase."""

    phase: str
    repetition: int
    expected: int
    received: int
    failed: int
    t_first_send: float
    t_last_receive: float
    duration: float
    tps: float
    mean_fls: float
    #: Finalization-latency percentiles (nearest rank) of the
    #: repetition's received transactions — the tail the mean hides.
    p50_fls: float = 0.0
    p95_fls: float = 0.0
    p99_fls: float = 0.0
    #: Received transactions that were appended but marked invalid
    #: (Fabric's MVCC conflicts). The paper counts them as received
    #: (Section 5.4); this keeps the conflict rate visible anyway.
    invalidated: int = 0
    #: :meth:`repro.faults.metrics.ResilienceReport.to_dict` output when
    #: the repetition ran under a fault plan whose window touched this
    #: phase; None for healthy runs.
    resilience: typing.Optional[dict] = None
    #: :meth:`repro.invariants.report.InvariantReport.to_dict` output for
    #: the repetition, attached to its final phase when the run was
    #: checked (the report spans all phases); None otherwise.
    invariants: typing.Optional[dict] = None
    #: Serialized :class:`repro.stream.LogHistogram` of the repetition's
    #: finalization latencies when the run measured through the
    #: streaming path; None on the exact path (and omitted from
    #: :meth:`to_dict`, keeping exact-path result JSON byte-identical
    #: to previous releases).
    latency_histogram: typing.Optional[dict] = None

    @property
    def not_received(self) -> int:
        """Expected transactions that never confirmed."""
        return self.expected - self.received

    @classmethod
    def from_clients(
        cls, clients: typing.Sequence[CoconutClient], phase: str, repetition: int
    ) -> "PhaseMetrics":
        """Compute Formulas (1)-(3) from the clients of one repetition.

        Each client's records are traversed exactly once
        (:meth:`~repro.coconut.client.CoconutClient.phase_summary`); the
        aggregation below is arithmetic over those single-pass
        summaries, byte-identical to the per-quantity rebuild it
        replaced (pinned by the tests/perf seed-equivalence goldens).
        """
        summaries = [client.phase_summary(phase) for client in clients]
        expected = sum(summary.sent for summary in summaries)
        received_records = [
            record for summary in summaries for record in summary.received
        ]
        failed = sum(summary.failed for summary in summaries)
        first_sends = [
            summary.first_send for summary in summaries if summary.first_send is not None
        ]
        last_receives = [
            summary.last_receive
            for summary in summaries
            if summary.last_receive is not None
        ]
        if not received_records or not first_sends or not last_receives:
            # Total failure: the paper reports 0 MTPS / 0 s (Table 15).
            return cls(
                phase=phase,
                repetition=repetition,
                expected=expected,
                received=0,
                failed=failed,
                t_first_send=min(first_sends) if first_sends else 0.0,
                t_last_receive=0.0,
                duration=0.0,
                tps=0.0,
                mean_fls=0.0,
            )
        t_fstx = min(first_sends)
        t_lrtx = max(last_receives)
        duration = t_lrtx - t_fstx
        tps = len(received_records) / duration if duration > 0 else 0.0
        latencies = sorted(record.latency for record in received_records)
        mean_fls = sum(latencies) / len(latencies)
        return cls(
            phase=phase,
            repetition=repetition,
            expected=expected,
            received=len(received_records),
            failed=failed,
            t_first_send=t_fstx,
            t_last_receive=t_lrtx,
            duration=duration,
            tps=tps,
            mean_fls=mean_fls,
            p50_fls=percentile(latencies, 50),
            p95_fls=percentile(latencies, 95),
            p99_fls=percentile(latencies, 99),
            invalidated=sum(1 for record in received_records if record.invalid),
        )

    @classmethod
    def from_stream(
        cls,
        accumulators: typing.Sequence["PhaseAccumulator"],
        phase: str,
        repetition: int,
    ) -> "PhaseMetrics":
        """Formulas (1)-(3) from streaming accumulators, one per client.

        Counts, extremes, duration and TPS equal the exact path's
        bit for bit (sums and min/max are order-insensitive); MFLS is
        the correctly rounded mean of an exact (Shewchuk) latency sum;
        p50/p95/p99 come from the merged log-bucketed histogram and are
        exact to one bucket. ``tests/stream/test_equivalence.py`` pins
        the contract against :meth:`from_clients` run for run.
        """
        from repro.stream.accumulator import PhaseAccumulator

        merged = PhaseAccumulator.merged(list(accumulators), phase)
        if merged.received == 0 or merged.first_send is None or merged.last_receive is None:
            # Total failure: the paper reports 0 MTPS / 0 s (Table 15),
            # mirroring the exact path's shape exactly.
            return cls(
                phase=phase,
                repetition=repetition,
                expected=merged.sent,
                received=0,
                failed=merged.failed,
                t_first_send=merged.first_send if merged.first_send is not None else 0.0,
                t_last_receive=0.0,
                duration=0.0,
                tps=0.0,
                mean_fls=0.0,
                latency_histogram=merged.histogram.to_dict(),
            )
        t_fstx = merged.first_send
        t_lrtx = merged.last_receive
        duration = t_lrtx - t_fstx
        tps = merged.received / duration if duration > 0 else 0.0
        p50, p95, p99 = merged.histogram.percentiles((50, 95, 99))
        return cls(
            phase=phase,
            repetition=repetition,
            expected=merged.sent,
            received=merged.received,
            failed=merged.failed,
            t_first_send=t_fstx,
            t_last_receive=t_lrtx,
            duration=duration,
            tps=tps,
            mean_fls=merged.mean_latency,
            p50_fls=p50,
            p95_fls=p95,
            p99_fls=p99,
            invalidated=merged.invalidated,
            latency_histogram=merged.histogram.to_dict(),
        )

    def to_dict(self) -> dict:
        """JSON-ready representation.

        The histogram field only appears on streamed metrics; dropping
        it when None keeps exact-path result JSON byte-identical to
        files written before the field existed.
        """
        data = dataclasses.asdict(self)
        if data.get("latency_histogram") is None:
            del data["latency_histogram"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseMetrics":
        """Inverse of :meth:`to_dict`, tolerant of unknown keys.

        Result JSON written by a *newer* schema (extra fields) must
        still load: filtering to the known field set means old code can
        read new files, the usual forward-compatibility contract for
        persisted results.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})
