"""Result objects and persistence (Figure 1's database system)."""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import typing

from repro.coconut.metrics import MetricSummary, PhaseMetrics, aggregate


@dataclasses.dataclass
class PhaseResult:
    """One phase of one benchmark unit, aggregated over repetitions."""

    phase: str
    repetitions: typing.List[PhaseMetrics]

    @property
    def mtps(self) -> MetricSummary:
        """Formula (2) across repetitions."""
        return aggregate([rep.tps for rep in self.repetitions])

    @property
    def mfls(self) -> MetricSummary:
        """Formula (1) across repetitions."""
        return aggregate([rep.mean_fls for rep in self.repetitions])

    @property
    def duration(self) -> MetricSummary:
        """Formula (3) across repetitions."""
        return aggregate([rep.duration for rep in self.repetitions])

    @property
    def p50(self) -> MetricSummary:
        """Median finalization latency across repetitions."""
        return aggregate([rep.p50_fls for rep in self.repetitions])

    @property
    def p95(self) -> MetricSummary:
        """95th-percentile finalization latency across repetitions."""
        return aggregate([rep.p95_fls for rep in self.repetitions])

    @property
    def p99(self) -> MetricSummary:
        """99th-percentile finalization latency across repetitions."""
        return aggregate([rep.p99_fls for rep in self.repetitions])

    @property
    def invalidated(self) -> MetricSummary:
        """Appended-but-invalid transactions across repetitions."""
        return aggregate([float(rep.invalidated) for rep in self.repetitions])

    @property
    def received(self) -> MetricSummary:
        """Received NoT across repetitions."""
        return aggregate([float(rep.received) for rep in self.repetitions])

    @property
    def expected(self) -> MetricSummary:
        """Expected NoT across repetitions."""
        return aggregate([float(rep.expected) for rep in self.repetitions])

    @property
    def streamed(self) -> bool:
        """Whether the repetitions were measured through repro.stream."""
        return any(rep.latency_histogram is not None for rep in self.repetitions)

    def latency_histograms(self) -> typing.List[dict]:
        """Serialized per-repetition latency histograms (streamed runs).

        Empty on exact-path results; :mod:`repro.analysis.histstats`
        merges these for cross-repetition percentile curves.
        """
        return [
            rep.latency_histogram
            for rep in self.repetitions
            if rep.latency_histogram is not None
        ]

    @property
    def loss_fraction(self) -> float:
        """Share of expected transactions never confirmed."""
        expected = self.expected.mean
        if expected <= 0:
            return 0.0
        return max(0.0, 1.0 - self.received.mean / expected)

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "repetitions": [rep.to_dict() for rep in self.repetitions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseResult":
        return cls(
            phase=data["phase"],
            repetitions=[PhaseMetrics.from_dict(rep) for rep in data["repetitions"]],
        )


@dataclasses.dataclass
class UnitResult:
    """One benchmark unit: configuration label plus per-phase results."""

    label: str
    system: str
    iel: str
    aggregate_rate: int
    params: typing.Dict[str, object]
    scale: float
    phases: typing.Dict[str, PhaseResult]

    def phase(self, name: str) -> PhaseResult:
        """One phase's result."""
        return self.phases[name]

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "system": self.system,
            "iel": self.iel,
            "aggregate_rate": self.aggregate_rate,
            "params": self.params,
            "scale": self.scale,
            "phases": {name: result.to_dict() for name, result in self.phases.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnitResult":
        return cls(
            label=data["label"],
            system=data["system"],
            iel=data["iel"],
            aggregate_rate=data["aggregate_rate"],
            params=data["params"],
            scale=data["scale"],
            phases={
                name: PhaseResult.from_dict(result) for name, result in data["phases"].items()
            },
        )


class ResultStore:
    """Persists unit results as JSON files in a directory."""

    def __init__(self, directory: typing.Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, label: str) -> pathlib.Path:
        """File path of one result.

        Sanitisation alone maps distinct labels to one file (``rate:100``
        and ``rate_100`` both become ``rate_100``), silently overwriting
        results; whenever a character was replaced, a short hash of the
        original label is appended to keep paths collision-free.
        """
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in label)
        if safe != label:
            digest = hashlib.sha256(label.encode("utf-8")).hexdigest()[:8]
            safe = f"{safe}-{digest}"
        return self.directory / f"{safe}.json"

    def save(self, result: UnitResult) -> pathlib.Path:
        """Write one result; returns its path."""
        path = self.path_for(result.label)
        path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return path

    def load(self, label: str) -> UnitResult:
        """Read one result back."""
        path = self.path_for(label)
        return UnitResult.from_dict(json.loads(path.read_text()))

    def labels(self) -> typing.List[str]:
        """Labels of all stored results."""
        return sorted(path.stem for path in self.directory.glob("*.json"))
