"""Benchmark configuration.

Encodes the experimental settings of Section 4: the benchmark units and
their phase sequences (4.1), the client/thread layout and timing windows
(4.3) and the two primary system parameters plus the per-system extras
(4.4). A ``scale`` factor shortens the simulated windows proportionally
for quick runs; rate-based metrics (MTPS, MFLS) are stable across scale,
which EXPERIMENTS.md verifies.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.faults.plan import FaultPlan
from repro.net.latency import LatencyModel
from repro.workloads.spec import WorkloadSpec

#: Phase sequences of the benchmark units (Section 4.1): a KeyValue-Set
#: benchmark is always followed by KeyValue-Get; BankingApp runs
#: CreateAccount, SendPayment, Balance in order.
UNIT_PHASES: typing.Dict[str, typing.Tuple[str, ...]] = {
    "DoNothing": ("DoNothing",),
    "KeyValue": ("Set", "Get"),
    "BankingApp": ("CreateAccount", "SendPayment", "Balance"),
}


def unit_for_iel(iel: str) -> typing.Tuple[str, ...]:
    """The phase sequence of one IEL's benchmark unit."""
    if iel not in UNIT_PHASES:
        raise KeyError(f"unknown IEL {iel!r}; known: {sorted(UNIT_PHASES)}")
    return UNIT_PHASES[iel]


@dataclasses.dataclass
class BenchmarkConfig:
    """Everything one benchmark unit needs."""

    system: str
    iel: str
    #: Payloads per second per COCONUT client (Section 4.4's rate
    #: limiter; the aggregate offered load is ``rate_limit * client_count``).
    rate_limit: int
    #: Run only these phases of the unit (None = the full unit).
    phases: typing.Optional[typing.Tuple[str, ...]] = None
    #: System-specific parameters (MaxMessageCount, block_interval, ...).
    params: typing.Dict[str, object] = dataclasses.field(default_factory=dict)
    #: BitShares: operations per transaction (Section 4.4: 1, 50, 100).
    ops_per_transaction: int = 1
    #: Sawtooth: transactions per atomic batch (Section 4.4: 1, 50, 100).
    txs_per_batch: int = 1
    node_count: int = 4
    client_count: int = 4
    workload_threads: int = 4
    repetitions: int = 3
    latency: typing.Optional[LatencyModel] = None
    #: Fault actions injected at the first phase's start (action times
    #: are offsets from that instant). None/empty = a healthy run, which
    #: is byte-identical to one without the faults subsystem.
    fault_plan: typing.Optional[FaultPlan] = None
    #: How load is offered (arrival process, access distribution,
    #: operation mix, scenario script). None or the default spec keep
    #: the paper's generator, byte-identical to pre-workloads runs.
    workload: typing.Optional[WorkloadSpec] = None
    #: Measure through the constant-memory streaming path
    #: (:mod:`repro.stream`): payload records retire as they resolve and
    #: percentiles come from a log-bucketed histogram. False keeps the
    #: exact per-record path, byte-identical to previous releases.
    stream_metrics: bool = False
    seed: int = 0
    #: Scales the three timing windows below (0.1 = a 30 s send window).
    scale: float = 1.0
    #: Section 4.3 timing: send for 300 s ...
    send_duration: float = 300.0
    #: ... keep listening for confirmations until 330 s ...
    listen_duration: float = 330.0
    #: ... and terminate the clients at 420 s.
    total_duration: float = 420.0

    def __post_init__(self) -> None:
        if self.iel not in UNIT_PHASES:
            raise ValueError(f"unknown IEL {self.iel!r}; known: {sorted(UNIT_PHASES)}")
        if self.rate_limit < 1:
            raise ValueError(f"rate_limit must be >= 1, got {self.rate_limit}")
        if self.workload_threads < 1:
            raise ValueError(
                f"workload_threads must be >= 1, got {self.workload_threads}"
            )
        if self.client_count < 1:
            raise ValueError(f"client_count must be >= 1, got {self.client_count}")
        if self.node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {self.node_count}")
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.ops_per_transaction < 1 or self.txs_per_batch < 1:
            raise ValueError("bundle sizes must be >= 1")
        if self.ops_per_transaction > 1 and self.system != "bitshares":
            raise ValueError("ops_per_transaction > 1 is a BitShares setting")
        if self.txs_per_batch > 1 and self.system != "sawtooth":
            raise ValueError("txs_per_batch > 1 is a Sawtooth setting")
        if self.send_duration <= 0:
            raise ValueError(
                f"send_duration must be > 0, got {self.send_duration}"
            )
        if not (self.send_duration <= self.listen_duration <= self.total_duration):
            raise ValueError(
                "timing windows must be ordered send <= listen <= total, got "
                f"{self.send_duration}/{self.listen_duration}/{self.total_duration}"
            )
        if self.workload is not None:
            # Fail at construction, naming the offending phase/operation,
            # instead of a KeyError minutes into a run.
            self.workload.validate_for(self.iel, UNIT_PHASES[self.iel])

    @property
    def phase_sequence(self) -> typing.Tuple[str, ...]:
        """The phases this run executes."""
        full = unit_for_iel(self.iel)
        if self.phases is None:
            return full
        unknown = [p for p in self.phases if p not in full]
        if unknown:
            raise ValueError(f"phases {unknown} not part of the {self.iel} unit {full}")
        return tuple(self.phases)

    @property
    def scaled_send(self) -> float:
        """Send window in simulated seconds after scaling."""
        return self.send_duration * self.scale

    @property
    def scaled_listen(self) -> float:
        """Listen window in simulated seconds after scaling."""
        return self.listen_duration * self.scale

    @property
    def scaled_total(self) -> float:
        """Client lifetime in simulated seconds after scaling."""
        return self.total_duration * self.scale

    @property
    def aggregate_rate(self) -> int:
        """Total offered payloads per second across all clients (the RL
        column of the paper's tables)."""
        return self.rate_limit * self.client_count

    @property
    def expected_payloads_per_client(self) -> int:
        """Payloads one client offers during the send window."""
        return int(self.rate_limit * self.scaled_send)

    def label(self) -> str:
        """Short description used in reports and file names."""
        parts = [self.system, self.iel, f"rl{self.aggregate_rate}"]
        for key, value in sorted(self.params.items()):
            short = "".join(ch for ch in str(key) if ch.isupper()) or str(key)[:2]
            parts.append(f"{short}{value}")
        if self.ops_per_transaction > 1:
            parts.append(f"ops{self.ops_per_transaction}")
        if self.txs_per_batch > 1:
            parts.append(f"batch{self.txs_per_batch}")
        if self.latency is not None:
            parts.append("netem")
        if self.fault_plan:
            parts.append(f"faults{len(self.fault_plan)}")
        if self.workload is not None and not self.workload.is_default:
            parts.append(f"wl-{self.workload.short_label()}")
        if self.stream_metrics:
            # Streamed results carry histogram fields; keep their files
            # from overwriting an exact run's.
            parts.append("stream")
        if self.node_count != 4:
            parts.append(f"n{self.node_count}")
        return "-".join(parts)
