"""Workload generation for the three benchmark units.

The legacy (paper) layout: every workload thread owns a disjoint
key/account space so the KeyValue benchmark never writes duplicate keys
(Section 4.1). Later phases of a unit replay the earlier phases'
identifiers: Get reads the keys Set wrote, SendPayment moves money
between consecutively created accounts (account_n -> account_{n+1} —
the serialisability stressor), Balance checks the accounts in order.

A non-default :class:`~repro.workloads.WorkloadSpec` swaps either axis:
an access distribution draws write identifiers from a fixed key
universe (per client, or one shared universe across all clients) so
writes genuinely collide, and read-type operations draw — through the
same distribution — from the history of identifiers this client has
already written, so reads are skewed but never miss. An operation mix
replaces the phase's single function with a weighted draw. All
randomness comes from per-thread ``workloads/...`` RNG streams created
lazily, so spec-free runs never touch them.
"""

from __future__ import annotations

import random
import typing

from repro.workloads.access import Sampler, build_sampler
from repro.workloads.mixes import READ_FALLBACK, MixSampler
from repro.workloads.spec import DEFAULT_WORKLOAD, ResolvedPhase, WorkloadSpec

#: Operations that write an identifier other operations can later read.
_WRITES: typing.Tuple[str, ...] = ("Set", "Rmw", "CreateAccount")


class WorkloadPlan:
    """Deterministic argument streams for one client's workload threads."""

    def __init__(
        self,
        client_id: str,
        threads: int,
        spec: typing.Optional[WorkloadSpec] = None,
        rng_streams: typing.Optional[
            typing.Callable[[str], random.Random]
        ] = None,
    ) -> None:
        if threads < 1:
            raise ValueError(f"need at least one workload thread, got {threads}")
        self.client_id = client_id
        self.threads = threads
        self.spec = spec or DEFAULT_WORKLOAD
        self._rng_streams = rng_streams
        self._counters: typing.Dict[typing.Tuple[int, str], int] = {}
        #: Identifiers written by this client, in write order (rank 0 is
        #: the zipfian-hottest item). Shared across threads so reads see
        #: every thread's writes; per-client even under a shared key
        #: universe, so a client never reads a key it cannot know exists.
        self._history: typing.List[str] = []
        self._mix_samplers: typing.Dict[str, MixSampler] = {}
        self._access_samplers: typing.Dict[str, Sampler] = {}
        self._gen_rngs: typing.Dict[int, random.Random] = {}
        #: phase -> resolved arrival/access/mix. ``for_phase`` is pure
        #: over a frozen spec, but it allocates per call and sits on the
        #: per-payload path; one resolution per phase is enough.
        self._resolved: typing.Dict[str, ResolvedPhase] = {}

    # ------------------------------------------------------------------
    # Legacy disjoint streams

    def _next_index(self, thread: int, phase: str) -> int:
        key = (thread, phase)
        self._counters[key] = self._counters.get(key, 0) + 1
        return self._counters[key]

    def _key(self, thread: int, index: int) -> str:
        return f"{self.client_id}:t{thread}:k{index}"

    def _account(self, thread: int, index: int) -> str:
        return f"{self.client_id}:t{thread}:a{index}"

    def args_for(self, iel: str, phase: str, thread: int) -> typing.Dict[str, object]:
        """The next payload's arguments for one thread in one phase."""
        if not 0 <= thread < self.threads:
            raise IndexError(f"thread {thread} out of range 0..{self.threads - 1}")
        index = self._next_index(thread, phase)
        if iel == "DoNothing":
            return {}
        if iel == "KeyValue":
            if phase == "Set":
                return {"key": self._key(thread, index), "value": f"value-{index}"}
            if phase == "Get":
                return {"key": self._key(thread, index)}
        if iel == "BankingApp":
            if phase == "CreateAccount":
                return {
                    "account": self._account(thread, index),
                    "checking": 1_000,
                    "saving": 500,
                }
            if phase == "SendPayment":
                # account_n pays account_{n+1}: consecutive payments share
                # an account, producing overwriting transactions within a
                # block (or consumed states on Corda) — Section 4.1.
                return {
                    "source": self._account(thread, index),
                    "destination": self._account(thread, index + 1),
                    "amount": 1,
                }
            if phase == "Balance":
                return {"account": self._account(thread, index)}
        raise ValueError(f"no workload for IEL {iel!r} phase {phase!r}")

    # ------------------------------------------------------------------
    # Spec-driven streams

    def _gen_rng(self, thread: int) -> random.Random:
        """This thread's payload-generation stream, created lazily."""
        if thread not in self._gen_rngs:
            if self._rng_streams is None:
                raise ValueError(
                    f"workload {self.spec!r} needs randomness but the plan "
                    "was built without RNG streams"
                )
            self._gen_rngs[thread] = self._rng_streams(
                f"workloads/{self.client_id}/t{thread}"
            )
        return self._gen_rngs[thread]

    def _choose_function(
        self, resolved: ResolvedPhase, phase: str, thread: int
    ) -> str:
        if resolved.mix is None:
            return phase
        if phase not in self._mix_samplers:
            self._mix_samplers[phase] = MixSampler(resolved.mix)
        function = self._mix_samplers[phase].sample(self._gen_rng(thread))
        if not self._history and function in READ_FALLBACK:
            return READ_FALLBACK[function]
        return function

    def _sampler(self, phase: str, resolved: ResolvedPhase) -> Sampler:
        if phase not in self._access_samplers:
            self._access_samplers[phase] = build_sampler(resolved.access)
        return self._access_samplers[phase]

    def _write_key(self, resolved: ResolvedPhase, phase: str, thread: int) -> str:
        """A write target drawn from the spec's key universe."""
        sampler = self._sampler(phase, resolved)
        index = sampler.sample(self._gen_rng(thread), resolved.access.key_space)
        prefix = "shared" if resolved.access.shared else self.client_id
        return f"{prefix}:k{index}"

    def _read_key(
        self, resolved: ResolvedPhase, phase: str, thread: int, seq: int
    ) -> str:
        """A read target drawn from this client's written history."""
        if not self._history:
            raise ValueError(
                f"phase {phase!r} reads before any write; run the unit's "
                "write phase first or add a write share to the mix"
            )
        if resolved.access.kind == "disjoint":
            # No RNG under disjoint access: cycle the history in order,
            # mirroring the legacy replay-the-write-phase behaviour.
            return self._history[(seq - 1) % len(self._history)]
        sampler = self._sampler(phase, resolved)
        index = sampler.sample(self._gen_rng(thread), len(self._history))
        return self._history[index]

    def _spec_args(
        self,
        iel: str,
        resolved: ResolvedPhase,
        function: str,
        phase: str,
        thread: int,
        seq: int,
    ) -> typing.Dict[str, object]:
        if iel == "DoNothing":
            return {}
        if iel == "KeyValue":
            if function in ("Set", "Rmw"):
                if resolved.access.kind == "disjoint":
                    key = self._key(thread, seq)
                else:
                    key = self._write_key(resolved, phase, thread)
                self._history.append(key)
                return {"key": key, "value": f"value-{seq}"}
            if function == "Get":
                return {"key": self._read_key(resolved, phase, thread, seq)}
        if iel == "BankingApp":
            if function == "CreateAccount":
                # Accounts are created once, so creation always uses the
                # sequential disjoint naming; the *other* operations skew.
                account = self._account(thread, seq)
                self._history.append(account)
                return {"account": account, "checking": 1_000, "saving": 500}
            if function == "SendPayment":
                source = self._read_key(resolved, phase, thread, seq)
                destination = self._read_key(resolved, phase, thread, seq)
                if destination == source and len(self._history) > 1:
                    at = (self._history.index(source) + 1) % len(self._history)
                    destination = self._history[at]
                return {"source": source, "destination": destination, "amount": 1}
            if function == "Balance":
                return {"account": self._read_key(resolved, phase, thread, seq)}
        raise ValueError(f"no workload for IEL {iel!r} operation {function!r}")

    def payload_for(
        self, iel: str, phase: str, thread: int
    ) -> typing.Tuple[str, typing.Dict[str, object]]:
        """The next payload's (function, args) for one thread in one phase.

        The default spec resolves to the legacy generator verbatim:
        the phase name is the function and ``args_for`` builds the
        arguments, with no RNG stream ever created.
        """
        resolved = self._resolved.get(phase)
        if resolved is None:
            resolved = self._resolved[phase] = self.spec.for_phase(phase)
        if resolved.mix is None and resolved.access.kind == "disjoint":
            return phase, self.args_for(iel, phase, thread)
        if not 0 <= thread < self.threads:
            raise IndexError(f"thread {thread} out of range 0..{self.threads - 1}")
        function = self._choose_function(resolved, phase, thread)
        seq = self._next_index(thread, phase)
        return function, self._spec_args(iel, resolved, function, phase, thread, seq)

    def generated_count(self, phase: str) -> int:
        """Payloads generated so far in one phase, across threads."""
        return sum(
            count for (__, phase_name), count in self._counters.items() if phase_name == phase
        )
