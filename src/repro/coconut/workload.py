"""Workload generation for the three benchmark units.

Every workload thread owns a disjoint key/account space so the KeyValue
benchmark never writes duplicate keys (Section 4.1). Later phases of a
unit replay the earlier phases' identifiers: Get reads the keys Set
wrote, SendPayment moves money between consecutively created accounts
(account_n -> account_{n+1} — the serialisability stressor), Balance
checks the accounts in order.
"""

from __future__ import annotations

import typing


class WorkloadPlan:
    """Deterministic argument streams for one client's workload threads."""

    def __init__(self, client_id: str, threads: int) -> None:
        if threads < 1:
            raise ValueError(f"need at least one workload thread, got {threads}")
        self.client_id = client_id
        self.threads = threads
        self._counters: typing.Dict[typing.Tuple[int, str], int] = {}

    def _next_index(self, thread: int, phase: str) -> int:
        key = (thread, phase)
        self._counters[key] = self._counters.get(key, 0) + 1
        return self._counters[key]

    def _key(self, thread: int, index: int) -> str:
        return f"{self.client_id}:t{thread}:k{index}"

    def _account(self, thread: int, index: int) -> str:
        return f"{self.client_id}:t{thread}:a{index}"

    def args_for(self, iel: str, phase: str, thread: int) -> typing.Dict[str, object]:
        """The next payload's arguments for one thread in one phase."""
        if not 0 <= thread < self.threads:
            raise IndexError(f"thread {thread} out of range 0..{self.threads - 1}")
        index = self._next_index(thread, phase)
        if iel == "DoNothing":
            return {}
        if iel == "KeyValue":
            if phase == "Set":
                return {"key": self._key(thread, index), "value": f"value-{index}"}
            if phase == "Get":
                return {"key": self._key(thread, index)}
        if iel == "BankingApp":
            if phase == "CreateAccount":
                return {
                    "account": self._account(thread, index),
                    "checking": 1_000,
                    "saving": 500,
                }
            if phase == "SendPayment":
                # account_n pays account_{n+1}: consecutive payments share
                # an account, producing overwriting transactions within a
                # block (or consumed states on Corda) — Section 4.1.
                return {
                    "source": self._account(thread, index),
                    "destination": self._account(thread, index + 1),
                    "amount": 1,
                }
            if phase == "Balance":
                return {"account": self._account(thread, index)}
        raise KeyError(f"no workload for IEL {iel!r} phase {phase!r}")

    def generated_count(self, phase: str) -> int:
        """Payloads generated so far in one phase, across threads."""
        return sum(
            count for (__, phase_name), count in self._counters.items() if phase_name == phase
        )
