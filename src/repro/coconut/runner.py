"""Benchmark orchestration.

Runs one benchmark unit: for each repetition, provision a fresh rig
(Section 4.1), wait out the system's stabilization time (Section 4.4),
then execute the unit's phases back to back — every phase is a full
send/listen/terminate cycle (Section 4.3) — and compute the Section 4.5
metrics from the clients' records.
"""

from __future__ import annotations

import typing

from repro.coconut.config import BenchmarkConfig
from repro.coconut.metrics import PhaseMetrics
from repro.coconut.provisioner import Provisioner, Rig
from repro.coconut.results import PhaseResult, ResultStore, UnitResult
from repro.faults import FaultInjector, ResilienceReport
from repro.invariants import InvariantChecker, InvariantReport
from repro.stream.accumulator import ResilienceAccumulator

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stream.spill import SpillSink
    from repro.trace.tracer import Tracer


class BenchmarkRunner:
    """Executes benchmark units and aggregates their results."""

    def __init__(
        self,
        store: typing.Optional[ResultStore] = None,
        provisioner: typing.Optional[Provisioner] = None,
        progress: typing.Optional[typing.Callable[[str], None]] = None,
        tracer: typing.Optional["Tracer"] = None,
        keep_last_rig: bool = True,
        check: bool = False,
        check_level: str = "basic",
        spill: typing.Optional["SpillSink"] = None,
    ) -> None:
        self.store = store
        self.provisioner = provisioner or Provisioner()
        self.progress = progress or (lambda message: None)
        #: Installed on every repetition's simulator when set, so one
        #: tracer collects the whole unit (phases carry repetition attrs).
        self.tracer = tracer
        #: Whether to install an invariant checker on every repetition's
        #: simulator. Each repetition gets a fresh checker (a fresh rig
        #: restarts every chain at height zero, which a shared checker
        #: would misread as an agreement violation); the unit-level
        #: report is their merge.
        self.check = check
        self.check_level = check_level
        #: Whether to pin the most recent repetition's rig for post-run
        #: inspection (block statistics, chain validation). Sweep drivers
        #: disable this: retaining a full simulated deployment per unit
        #: bloats memory across large parameter sweeps.
        self.keep_last_rig = keep_last_rig
        self.last_rig: typing.Optional[Rig] = None
        #: Phase -> resilience report of the most recent repetition that
        #: ran under a fault plan (empty for healthy runs).
        self.last_resilience: typing.Dict[str, ResilienceReport] = {}
        #: The most recent unit's merged invariant report (None when the
        #: unit ran unchecked).
        self.last_invariants: typing.Optional[InvariantReport] = None
        #: Full-fidelity record sink attached to streaming clients (the
        #: spill path of :mod:`repro.stream`); ignored on exact runs.
        self.spill = spill
        #: Most payload records simultaneously tracked by any client of
        #: the most recent streaming unit — the bounded-memory
        #: observable (None after exact runs, whose live count equals
        #: the total offered load by construction).
        self.last_stream_peak: typing.Optional[int] = None
        #: Records written to the spill sink by the most recent unit.
        self.last_stream_spilled: int = 0

    def run(self, config: BenchmarkConfig) -> UnitResult:
        """Run one benchmark unit, all repetitions, all phases."""
        # Cleared unconditionally: a reused runner must not report the
        # previous unit's resilience data after a healthy run.
        self.last_resilience = {}
        self.last_invariants = None
        self.last_stream_peak = None
        self.last_stream_spilled = 0
        phases = config.phase_sequence
        per_phase: typing.Dict[str, typing.List[PhaseMetrics]] = {p: [] for p in phases}
        reports: typing.List[InvariantReport] = []
        for repetition in range(config.repetitions):
            self.progress(f"{config.label()} repetition {repetition + 1}/{config.repetitions}")
            rig = self.provisioner.provision(config, repetition)
            if config.stream_metrics and self.spill is not None:
                self.spill.set_context(label=config.label(), repetition=repetition)
                for client in rig.clients:
                    assert client.stream is not None
                    client.stream.sink = self.spill
            if self.tracer is not None:
                rig.sim.set_tracer(self.tracer)
            if self.check:
                rig.sim.set_checker(
                    InvariantChecker(
                        level=self.check_level, iel=config.iel, repetition=repetition
                    )
                )
            metrics = self._run_repetition(rig, config, repetition)
            if self.check:
                report = rig.sim.checker.finalize(rig.system)
                reports.append(report)
                # The report spans the whole repetition; it rides on the
                # final phase's metrics next to the resilience data.
                metrics[phases[-1]].invariants = report.to_dict()
                self.progress(f"  invariants: {report.render()}")
            if self.keep_last_rig:
                self.last_rig = rig
            for phase, phase_metrics in metrics.items():
                per_phase[phase].append(phase_metrics)
        if self.check:
            self.last_invariants = InvariantReport.merge(reports)
        result = UnitResult(
            label=config.label(),
            system=config.system,
            iel=config.iel,
            aggregate_rate=config.aggregate_rate,
            params=dict(config.params),
            scale=config.scale,
            phases={
                phase: PhaseResult(phase=phase, repetitions=reps)
                for phase, reps in per_phase.items()
            },
        )
        if self.store is not None:
            self.store.save(result)
        return result

    def _run_repetition(
        self, rig: Rig, config: BenchmarkConfig, repetition: int
    ) -> typing.Dict[str, PhaseMetrics]:
        """One repetition: run every phase of the unit sequentially."""
        clock = rig.system.stabilization_time
        metrics: typing.Dict[str, PhaseMetrics] = {}
        tracer = rig.sim.tracer
        injector: typing.Optional[FaultInjector] = None
        if config.fault_plan:
            # Action times are offsets from the first phase's start.
            injector = FaultInjector(rig.sim, rig.system, config.fault_plan)
            injector.install(epoch=clock)
            self.last_resilience = {}
        checker = rig.sim.checker
        streaming = config.stream_metrics
        for phase in config.phase_sequence:
            if checker.enabled:
                checker.set_phase(phase)
            # All clients wait for each other and start together
            # (Section 4.3: uniform load distribution).
            phase_start = clock
            for client in rig.clients:
                client.run_phase(phase, clock)
            clock += config.scaled_total
            if streaming:
                # Both windows are known before anything executes, so
                # the streaming resilience timeline can be armed now and
                # filled as payloads resolve.
                self._arm_stream_resilience(rig, injector, phase, phase_start, clock)
            rig.sim.run(until=clock)
            if tracer.enabled:
                tracer.record_span(
                    "phase", category="bench", start=phase_start, end=clock,
                    phase=phase, repetition=repetition, system=config.system,
                    iel=config.iel,
                )
            if streaming:
                metrics[phase] = PhaseMetrics.from_stream(
                    [client.stream.accumulator(phase) for client in rig.clients],
                    phase,
                    repetition,
                )
            else:
                metrics[phase] = PhaseMetrics.from_clients(rig.clients, phase, repetition)
            self._attach_resilience(
                metrics[phase], injector, rig, phase, phase_start, clock
            )
            if streaming:
                # Records that never resolved are spilled and dropped so
                # live state cannot accumulate phase over phase.
                for client in rig.clients:
                    client.finish_phase(phase)
            self.progress(
                f"  {phase}: {metrics[phase].received}/{metrics[phase].expected} received, "
                f"tps={metrics[phase].tps:.2f}, fls={metrics[phase].mean_fls:.2f}s"
            )
        if streaming:
            peak = max(client.stream.peak_live for client in rig.clients)
            if self.last_stream_peak is None or peak > self.last_stream_peak:
                self.last_stream_peak = peak
            self.last_stream_spilled += sum(
                client.stream.spilled for client in rig.clients
            )
            self.progress(f"  stream: peak live records/client {peak}")
        return metrics

    def _arm_stream_resilience(
        self,
        rig: Rig,
        injector: typing.Optional[FaultInjector],
        phase: str,
        phase_start: float,
        phase_end: float,
    ) -> None:
        """Arm per-client streaming resilience accumulators for a phase
        the fault window touches (same gate as ``_attach_resilience``)."""
        if injector is None:
            return
        window = injector.fault_window()
        if window is None or window[0] >= phase_end or window[1] <= phase_start:
            return
        for client in rig.clients:
            assert client.stream is not None
            client.stream.accumulator(phase).resilience = ResilienceAccumulator(
                fault_start=max(window[0], phase_start),
                fault_end=min(window[1], phase_end),
                phase_start=phase_start,
                phase_end=phase_end,
            )

    def _attach_resilience(
        self,
        phase_metrics: PhaseMetrics,
        injector: typing.Optional[FaultInjector],
        rig: Rig,
        phase: str,
        phase_start: float,
        phase_end: float,
    ) -> None:
        """Compute the fault-window report for a phase the faults touched."""
        if injector is None:
            return
        window = injector.fault_window()
        if window is None or window[0] >= phase_end or window[1] <= phase_start:
            return
        if rig.clients and rig.clients[0].stream is not None:
            # Streaming path: merge the armed per-client accumulators;
            # their counters feed the same arithmetic from_records runs
            # over retained records, so the report is byte-identical.
            merged: typing.Optional[ResilienceAccumulator] = None
            for client in rig.clients:
                assert client.stream is not None
                accumulator = client.stream.accumulator(phase).resilience
                assert accumulator is not None
                if merged is None:
                    merged = ResilienceAccumulator(
                        fault_start=accumulator.fault_start,
                        fault_end=accumulator.fault_end,
                        phase_start=accumulator.phase_start,
                        phase_end=accumulator.phase_end,
                        bucket_width=accumulator.bucket_width,
                        tolerance=accumulator.tolerance,
                    )
                merged.merge(accumulator)
            assert merged is not None
            report = merged.report()
        else:
            records = [
                record for client in rig.clients for record in client.phase_records(phase)
            ]
            report = ResilienceReport.from_records(
                records,
                fault_start=max(window[0], phase_start),
                fault_end=min(window[1], phase_end),
                phase_start=phase_start,
                phase_end=phase_end,
            )
        phase_metrics.resilience = report.to_dict()
        self.last_resilience[phase] = report
        self.progress(f"  {phase} resilience: {report.render()}")

    def run_many(self, configs: typing.Iterable[BenchmarkConfig]) -> typing.List[UnitResult]:
        """Run a batch of units, dropping rigs between them.

        Multi-unit drivers never keep rigs: retaining one full simulated
        deployment per unit accumulates every deployment in memory over
        a batch. ``keep_last_rig`` is restored afterwards so a reused
        runner keeps its single-unit behaviour.
        """
        keep = self.keep_last_rig
        self.keep_last_rig = False
        try:
            return [self.run(config) for config in configs]
        finally:
            self.keep_last_rig = keep
