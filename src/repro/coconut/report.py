"""Text rendering of results: the paper's tables and heat maps."""

from __future__ import annotations

import typing

from repro.coconut.results import PhaseResult, UnitResult


def format_table(
    headers: typing.Sequence[str], rows: typing.Sequence[typing.Sequence[str]]
) -> str:
    """A plain aligned text table."""
    columns = [list(column) for column in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    def render(cells: typing.Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [render(headers), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def metrics_table(results: typing.Sequence[typing.Tuple[str, PhaseResult]]) -> str:
    """The paper's MTPS/MFLS table shape (e.g. Tables 7, 9, 11...)."""
    headers = ["Config", "MTPS", "SD", "SEM", "95% CI", "MFLS", "SD", "SEM", "95% CI"]
    rows = []
    for label, phase in results:
        mtps, mfls = phase.mtps, phase.mfls
        rows.append(
            [
                label,
                f"{mtps.mean:.2f}",
                f"{mtps.sd:.2f}",
                f"{mtps.sem:.2f}",
                f"±{mtps.ci95:.2f}",
                f"{mfls.mean:.2f}",
                f"{mfls.sd:.2f}",
                f"{mfls.sem:.2f}",
                f"±{mfls.ci95:.2f}",
            ]
        )
    return format_table(headers, rows)


def transactions_table(results: typing.Sequence[typing.Tuple[str, PhaseResult]]) -> str:
    """The paper's NoT table shape (e.g. Tables 8, 10, 12...)."""
    headers = ["Config", "Received NoT", "Expected NoT", "SD", "SEM", "95% CI"]
    rows = []
    for label, phase in results:
        received = phase.received
        rows.append(
            [
                label,
                f"{received.mean:.2f}",
                f"{phase.expected.mean:.2f}",
                f"{received.sd:.2f}",
                f"{received.sem:.2f}",
                f"±{received.ci95:.2f}",
            ]
        )
    return format_table(headers, rows)


def heatmap(
    cell_results: typing.Mapping[typing.Tuple[str, str], PhaseResult],
    row_labels: typing.Sequence[str],
    column_labels: typing.Sequence[str],
) -> str:
    """The Figure 3/4 heat-map grid: benchmarks x systems.

    ``cell_results`` maps (row, column) to the phase result whose best
    MTPS the cell shows; missing cells render as failed (0.00).
    """
    headers = ["Benchmark"] + list(column_labels)
    rows = []
    for row_label in row_labels:
        cells = [row_label]
        for column_label in column_labels:
            phase = cell_results.get((row_label, column_label))
            if phase is None or phase.received.mean == 0:
                cells.append("MTPS=0.00 FAIL")
                continue
            cells.append(
                f"MTPS={phase.mtps.mean:.2f} "
                f"MFLS={phase.mfls.mean:.2f}s "
                f"D={phase.duration.mean:.2f}s"
            )
        rows.append(cells)
    return format_table(headers, rows)


def latency_table(results: typing.Sequence[typing.Tuple[str, PhaseResult]]) -> str:
    """Finalization-latency profile: mean plus nearest-rank tail."""
    headers = ["Config", "MFLS", "p50", "p95", "p99", "p99/p50"]
    rows = []
    for label, phase in results:
        p50, p99 = phase.p50.mean, phase.p99.mean
        amplification = p99 / p50 if p50 > 0 else 0.0
        rows.append(
            [
                label,
                f"{phase.mfls.mean:.2f}",
                f"{p50:.2f}",
                f"{phase.p95.mean:.2f}",
                f"{p99:.2f}",
                f"{amplification:.2f}",
            ]
        )
    return format_table(headers, rows)


def unit_summary(result: UnitResult) -> str:
    """A readable multi-phase summary of one unit."""
    lines = [f"Unit {result.label} (RL={result.aggregate_rate}, scale={result.scale})"]
    for phase_name, phase in result.phases.items():
        line = (
            f"  {phase_name:>14}: MTPS={phase.mtps.format()}  MFLS={phase.mfls.format()}s  "
            f"p99={phase.p99.mean:.2f}s  "
            f"D={phase.duration.mean:.2f}s  "
            f"NoT={phase.received.mean:.0f}/{phase.expected.mean:.0f}"
        )
        if phase.invalidated.mean > 0:
            line += f"  invalid={phase.invalidated.mean:.0f}"
        if phase.streamed:
            # Percentiles are histogram-backed (exact to one bucket).
            line += "  [streamed]"
        lines.append(line)
    return "\n".join(lines)
