"""Deployment provisioning.

Section 4.1: the system under test is re-provisioned after every
benchmark unit, so each unit (and each repetition) starts from a freshly
deployed network; the clients are re-provisioned per benchmark. A
provisioned rig mirrors the paper's testbed: the system's servers plus
two client servers running two COCONUT clients each, every client
pointed at a different blockchain node (Section 4.3).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.chains.base import DeploymentSpec, SystemModel
from repro.chains.registry import create_system
from repro.coconut.client import CoconutClient
from repro.coconut.config import BenchmarkConfig
from repro.net import Host
from repro.sim.kernel import Simulator

#: The testbed's two dedicated client servers (Section 4.2).
CLIENT_SERVER_COUNT = 2


@dataclasses.dataclass
class Rig:
    """One freshly provisioned deployment plus its clients."""

    sim: Simulator
    system: SystemModel
    clients: typing.List[CoconutClient]


class Provisioner:
    """Builds fresh rigs, one per repetition."""

    def provision(self, config: BenchmarkConfig, repetition: int) -> Rig:
        """Deploy the system and its clients for one repetition."""
        sim = Simulator(seed=config.seed * 1000 + repetition)
        spec = DeploymentSpec(
            node_count=config.node_count,
            latency=config.latency,
            seed=config.seed,
            params=dict(config.params),
        )
        system = create_system(config.system, sim, spec, config.iel)
        client_hosts = [Host(f"client-server-{i}") for i in range(CLIENT_SERVER_COUNT)]
        clients = []
        for index in range(config.client_count):
            gateway = system.gateway_for(index)
            client = CoconutClient(f"client-{index}", sim, config, gateway)
            system.attach_client(client, client_hosts[index % CLIENT_SERVER_COUNT])
            system.subscribe(client.endpoint_id, gateway)
            clients.append(client)
        system.start()
        return Rig(sim=sim, system=system, clients=clients)
