"""The blockchain access layer (BAL).

Figure 1's driver component: maps client payloads onto each system's
transaction structure (Table 2). Most systems take one payload per
transaction; BitShares packs ``ops_per_transaction`` payloads into one
atomic transaction; Sawtooth packs ``txs_per_batch`` single-payload
transactions into one atomic batch.
"""

from __future__ import annotations

import abc
import typing

from repro.storage import Batch, Payload, Transaction


class Driver(abc.ABC):
    """Wraps payload groups into one system's submission bundles."""

    #: How many payloads one submission carries.
    group_size: int = 1

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id

    @abc.abstractmethod
    def wrap(self, payloads: typing.Sequence[Payload]) -> object:
        """Bundle a payload group into the wire object for submission."""

    def describe(self) -> str:
        """One-line driver summary for logs."""
        return f"{type(self).__name__}(group={self.group_size})"


class SingleTransactionDriver(Driver):
    """One payload per transaction (Corda, Fabric, Quorum, Diem)."""

    def wrap(self, payloads: typing.Sequence[Payload]) -> Transaction:
        if len(payloads) != 1:
            raise ValueError(f"expected one payload, got {len(payloads)}")
        return Transaction.wrap(list(payloads), submitter=self.client_id)


class BitSharesDriver(Driver):
    """Multiple operations per atomic transaction (Table 2)."""

    def __init__(self, client_id: str, ops_per_transaction: int = 1) -> None:
        super().__init__(client_id)
        if not 1 <= ops_per_transaction <= 100:
            raise ValueError(f"ops_per_transaction must be 1..100, got {ops_per_transaction}")
        self.group_size = ops_per_transaction

    def wrap(self, payloads: typing.Sequence[Payload]) -> Transaction:
        return Transaction.wrap(list(payloads), submitter=self.client_id, kind="bitshares")


class SawtoothDriver(Driver):
    """Multiple single-payload transactions per atomic batch (Table 2)."""

    def __init__(self, client_id: str, txs_per_batch: int = 1) -> None:
        super().__init__(client_id)
        if not 1 <= txs_per_batch <= 100:
            raise ValueError(f"txs_per_batch must be 1..100, got {txs_per_batch}")
        self.group_size = txs_per_batch

    def wrap(self, payloads: typing.Sequence[Payload]) -> Batch:
        transactions = [
            Transaction.wrap([payload], submitter=self.client_id) for payload in payloads
        ]
        return Batch.wrap(transactions, submitter=self.client_id)


def make_driver(
    system: str,
    client_id: str,
    ops_per_transaction: int = 1,
    txs_per_batch: int = 1,
) -> Driver:
    """Build the right driver for a system."""
    if system == "bitshares":
        return BitSharesDriver(client_id, ops_per_transaction)
    if system == "sawtooth":
        return SawtoothDriver(client_id, txs_per_batch)
    return SingleTransactionDriver(client_id)
