"""The COCONUT client application.

One client (Section 4.3) runs four workload threads that send payload
bundles sequentially — without waiting for finalization confirmations —
for the send window, rate-limited to the configured payloads/second per
client. The client keeps listening for finalization notifications for a
grace period after sending stops and terminates at the total deadline.
All timestamps of Figure 2 are taken here, on the client: ``starttime``
just before a payload is sent, ``endtime`` when its confirmation (a
commit on *all* nodes) arrives.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.coconut.bal import Driver, make_driver
from repro.coconut.config import BenchmarkConfig
from repro.coconut.workload import WorkloadPlan
from repro.net import Endpoint, Message
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.storage import Payload
from repro.storage.receipts import TxStatus
from repro.stream.accumulator import ClientStream
from repro.workloads.arrivals import build_schedule


@dataclasses.dataclass
class PayloadRecord:
    """The client-side life of one payload."""

    payload_id: str
    phase: str
    start_time: float
    end_time: typing.Optional[float] = None
    status: str = "pending"
    #: Confirmed but flagged invalid on-chain (Fabric MVCC conflicts);
    #: still counts as received per Section 5.4.
    invalid: bool = False

    @property
    def received(self) -> bool:
        """Whether a finalization confirmation arrived in time."""
        return self.status == "received"

    @property
    def latency(self) -> float:
        """End-to-end finalization latency (FLS)."""
        if self.end_time is None:
            raise ValueError(f"payload {self.payload_id} has no end time")
        return self.end_time - self.start_time


class CoconutClient(Endpoint):
    """One COCONUT client application endpoint."""

    def __init__(
        self,
        client_id: str,
        sim: Simulator,
        config: BenchmarkConfig,
        gateway_id: str,
    ) -> None:
        super().__init__(client_id)
        self.sim = sim
        self.config = config
        self.gateway_id = gateway_id
        self.driver: Driver = make_driver(
            config.system,
            client_id,
            ops_per_transaction=config.ops_per_transaction,
            txs_per_batch=config.txs_per_batch,
        )
        self.plan = WorkloadPlan(
            client_id,
            config.workload_threads,
            spec=config.workload,
            rng_streams=sim.rng.stream,
        )
        #: phase -> payload_id -> record. On the exact path this holds
        #: every payload ever offered; with ``config.stream_metrics`` it
        #: holds only payloads still in flight (records are retired into
        #: ``self.stream`` the moment they resolve).
        self.records: typing.Dict[str, typing.Dict[str, PayloadRecord]] = {}
        self._payload_phase: typing.Dict[str, str] = {}
        self._listen_deadline: typing.Dict[str, float] = {}
        self.ignored_late_receipts = 0
        #: Streaming accumulators (None = exact path).
        self.stream: typing.Optional[ClientStream] = (
            ClientStream(client_id) if config.stream_metrics else None
        )

    # ------------------------------------------------------------------
    # Driving a phase

    def run_phase(self, phase: str, start_at: float) -> Event:
        """Launch the phase's workload threads; fires at client shutdown."""
        config = self.config
        self.records.setdefault(phase, {})
        if self.stream is not None:
            self.stream.begin_phase(phase)
        send_deadline = start_at + config.scaled_send
        self._listen_deadline[phase] = start_at + config.scaled_listen
        threads = [
            self.sim.spawn(
                self._workload_thread(phase, thread, start_at, send_deadline),
                name=f"{self.endpoint_id}-{phase}-t{thread}",
            )
            for thread in range(config.workload_threads)
        ]
        done = self.sim.event(name=f"{self.endpoint_id}-{phase}-done")
        shutdown_at = start_at + config.scaled_total
        # The threads stop at the send deadline; the client itself (and
        # its event listening) terminates at the total deadline.
        self.sim.schedule(max(0.0, shutdown_at - self.sim.now), lambda: done.succeed(threads))
        return done

    def _workload_thread(
        self, phase: str, thread: int, start_at: float, send_deadline: float
    ) -> typing.Generator:
        config = self.config
        group = self.driver.group_size
        # Each thread carries its share of the client's rate limit; a
        # submission carries `group` payloads, so submissions are spaced
        # by group * threads / rate.
        interval = group * config.workload_threads / config.rate_limit
        arrival = self.plan.spec.for_phase(phase).arrival
        schedule = build_schedule(
            arrival,
            interval,
            config.scaled_send,
            thread,
            config.workload_threads,
            lambda: self.sim.rng.stream(
                f"workloads/{self.endpoint_id}/t{thread}/arrival"
            ),
        )
        sim = self.sim
        if sim.now < start_at:
            yield sim.timeout(start_at - sim.now)
        initial = schedule.initial_delay()
        if initial is None:
            return
        if initial > 0:
            # Only replay defers the first send; every other kind fires
            # at phase start exactly like the pre-workloads loop.
            yield sim.timeout(initial)
        # Send-loop invariants hoisted out of the loop: the tracer and
        # its category filter are fixed for the run, the phase's record
        # dict and the plan/RNG-stream lookups never change identity.
        endpoint_id = self.endpoint_id
        iel = config.iel
        payload_for = self.plan.payload_for
        phase_records = self.records[phase]
        payload_phase = self._payload_phase
        wrap = self.driver.wrap
        tracer = sim.tracer
        trace_txs = tracer.enabled and tracer.wants("client")
        stream = self.stream
        accumulator = stream.accumulator(phase) if stream is not None else None
        while sim.now < send_deadline:
            payloads = []
            for __ in range(group):
                function, args = payload_for(iel, phase, thread)
                payloads.append(Payload.create(endpoint_id, iel, function, args))
            now = sim.now
            if accumulator is not None:
                accumulator.on_send(now, count=len(payloads))
            for payload in payloads:
                payload_id = payload.payload_id
                phase_records[payload_id] = PayloadRecord(
                    payload_id=payload_id,
                    phase=phase,
                    start_time=now,
                )
                payload_phase[payload_id] = phase
                if trace_txs and tracer.sampled(payload_id):
                    # Submit -> confirm, closed in _record_end; payloads
                    # that never confirm stay open (drained at export).
                    tracer.begin(
                        ("tx", payload_id), "tx", category="client",
                        node=endpoint_id, phase=phase,
                    )
            if trace_txs:
                tracer.metrics.counter("client.sent", node=endpoint_id).inc(len(payloads))
            if stream is not None:
                stream.note_live(len(phase_records))
            bundle = wrap(payloads)
            self.send(
                self.gateway_id,
                "client/submit",
                bundle,
                size_bytes=getattr(bundle, "size_bytes", 256),
            )
            delay = schedule.next_delay(sim.now - start_at)
            if delay is None:
                return
            yield sim.timeout(delay)

    # ------------------------------------------------------------------
    # Event collection

    def on_message(self, message: Message) -> None:
        if message.kind == "client/receipt":
            for receipt in message.payload:
                self._record_end(
                    receipt.payload_id,
                    "received" if receipt.is_success else "failed",
                    invalid=receipt.status is TxStatus.INVALIDATED,
                )
        elif message.kind == "client/reject":
            reject = message.payload
            for payload_id in reject.payload_ids:
                self._record_end(payload_id, "failed")

    def _record_end(self, payload_id: str, status: str, invalid: bool = False) -> None:
        phase = self._payload_phase.get(payload_id)
        if phase is None:
            return
        tracer = self.sim.tracer
        if self.sim.now > self._listen_deadline.get(phase, float("inf")):
            self.ignored_late_receipts += 1
            if tracer.enabled:
                tracer.end(("tx", payload_id), status="late")
            return
        record = self.records[phase][payload_id]
        if record.end_time is not None:
            return
        record.end_time = self.sim.now
        record.status = status
        record.invalid = invalid
        if tracer.enabled:
            tracer.end(("tx", payload_id), status=status)
            if tracer.wants("client"):
                tracer.metrics.counter(f"client.{status}", node=self.endpoint_id).inc()
                tracer.metrics.histogram("client.fls", node=self.endpoint_id).record(
                    record.latency
                )
        if self.stream is not None:
            # Streaming path: the record's contribution is folded into
            # the phase accumulator and the record itself is dropped —
            # live records track in-flight payloads, not offered load.
            self.stream.retire(phase, record)
            del self.records[phase][payload_id]
            del self._payload_phase[payload_id]

    # ------------------------------------------------------------------
    # Phase accounting

    def phase_records(self, phase: str) -> typing.List[PayloadRecord]:
        """All records of one phase (in flight only on the stream path)."""
        return list(self.records.get(phase, {}).values())

    def phase_summary(self, phase: str) -> "PhaseSummary":
        """Counts, extremes and received records of one phase, one pass.

        The metrics layer needs five quantities per client per phase;
        computing them in a single traversal replaces the ~6 fresh list
        materializations the per-quantity helpers below would perform
        (they now all read from this). Exact path only — with
        ``stream_metrics`` the same quantities live in the accumulators.
        """
        sent = 0
        failed = 0
        received: typing.List[PayloadRecord] = []
        first_send: typing.Optional[float] = None
        last_receive: typing.Optional[float] = None
        for record in self.records.get(phase, {}).values():
            sent += 1
            if first_send is None or record.start_time < first_send:
                first_send = record.start_time
            if record.received:
                received.append(record)
                if last_receive is None or record.end_time > last_receive:
                    last_receive = record.end_time
            elif record.status == "failed":
                failed += 1
        return PhaseSummary(
            sent=sent,
            failed=failed,
            received=received,
            first_send=first_send,
            last_receive=last_receive,
        )

    def sent_count(self, phase: str) -> int:
        """Payloads this client offered in one phase."""
        if self.stream is not None and phase in self.stream.accumulators:
            return self.stream.accumulator(phase).sent
        return len(self.records.get(phase, {}))

    def received_records(self, phase: str) -> typing.List[PayloadRecord]:
        """Records that got a timely finalization confirmation."""
        return self.phase_summary(phase).received

    def first_send_time(self, phase: str) -> typing.Optional[float]:
        """t_fstx contribution of this client."""
        if self.stream is not None and phase in self.stream.accumulators:
            return self.stream.accumulator(phase).first_send
        return self.phase_summary(phase).first_send

    def last_receive_time(self, phase: str) -> typing.Optional[float]:
        """t_lrtx contribution of this client."""
        if self.stream is not None and phase in self.stream.accumulators:
            return self.stream.accumulator(phase).last_receive
        return self.phase_summary(phase).last_receive

    def finish_phase(self, phase: str) -> int:
        """Streaming teardown: spill and drop still-pending records.

        Called by the runner after the phase's metrics are taken. Any
        record left is a payload that never resolved inside the listen
        window; it already counts in ``sent`` (and as an in-window loss
        when resilience is armed), so it only needs spilling — keeping
        it would grow memory phase over phase. Returns how many records
        were dropped. No-op on the exact path.
        """
        if self.stream is None:
            return 0
        leftover = self.records.get(phase)
        if not leftover:
            return 0
        for payload_id, record in leftover.items():
            self.stream.expire(phase, record)
            self._payload_phase.pop(payload_id, None)
        dropped = len(leftover)
        leftover.clear()
        return dropped


@dataclasses.dataclass
class PhaseSummary:
    """One client's single-pass phase accounting (exact path)."""

    sent: int
    failed: int
    received: typing.List[PayloadRecord]
    first_send: typing.Optional[float]
    last_receive: typing.Optional[float]
