"""COCONUT — the automatiC blOckChain perfOrmaNce evalUation sysTem.

The paper's contribution (Section 3): an end-to-end blockchain
benchmarking framework. Clients (:mod:`repro.coconut.client`) drive
workloads (:mod:`repro.coconut.workload`) through per-system drivers
(:mod:`repro.coconut.bal`, the blockchain access layer), collect
finalization notifications and compute the end-to-end metrics of Section
4.5 (:mod:`repro.coconut.metrics`). The runner
(:mod:`repro.coconut.runner`) provisions a fresh deployment per
benchmark unit (:mod:`repro.coconut.provisioner`), executes the unit's
phases and persists results (:mod:`repro.coconut.results`), which the
report module renders as the paper's tables and heat maps
(:mod:`repro.coconut.report`).
"""

from repro.coconut.bal import make_driver
from repro.coconut.client import CoconutClient
from repro.coconut.config import BenchmarkConfig, UNIT_PHASES, unit_for_iel
from repro.coconut.metrics import MetricSummary, PhaseMetrics, aggregate, confidence_interval
from repro.coconut.provisioner import Provisioner
from repro.coconut.results import PhaseResult, ResultStore, UnitResult
from repro.coconut.runner import BenchmarkRunner
from repro.coconut.workload import WorkloadPlan

__all__ = [
    "BenchmarkConfig",
    "BenchmarkRunner",
    "CoconutClient",
    "MetricSummary",
    "PhaseMetrics",
    "PhaseResult",
    "Provisioner",
    "ResultStore",
    "UNIT_PHASES",
    "UnitResult",
    "WorkloadPlan",
    "aggregate",
    "confidence_interval",
    "make_driver",
    "unit_for_iel",
]
