"""Corda Open Source — block-free UTXO flows with a notary.

Corda has no blocks and no global ordering (Section 2): a *flow* on the
initiating node builds a transaction over input/output states, collects
a signature from every other node (serially, in Corda OS — the paper's
reason (2) for its weak performance), asks the notary to check the
inputs for double spends, and finally broadcasts the signed transaction
for every node to record. The client's confirmation arrives once all
nodes have recorded it.

Paper behaviours that emerge from this model:

* Reads iterate the vault (reason (1) of Section 5.1): a KeyValue-Get
  flow costs ``scan_cost * len(vault)``, which after the Set phase
  exceeds the flow timeout — every Get fails, exactly as reported.
* Corda OS degrades under load: flow service time scales with the
  recent submission rate (checkpointing pressure), reproducing the drop
  from 4.08 MTPS at RL=20 to ~1 MTPS at RL=160.
* Chained SendPayments race for the same account states, so the notary
  rejects most of them as double spends.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.chains.base import BaseNode, SystemModel
from repro.iel.base import StateInterface
from repro.net import Endpoint, Message
from repro.sim.events import AllOf, AnyOf
from repro.sim.resources import Resource
from repro.storage import Payload, Transaction, TxStatus
from repro.storage.utxo import StateRef

#: Notary signing service time and parallelism (overridden by Enterprise).
NOTARY_SERVICE_TIME = 0.04
NOTARY_WORKERS = 1

#: Flows that run longer than this are aborted (client-side timeout).
FLOW_TIMEOUT = 30.0

#: Window for the Corda OS submission-rate estimate driving degradation.
RATE_WINDOW = 10.0

#: Initiator-side time to process one counterparty's signature response
#: (parallel collection still pays this per counterparty).
SIGNATURE_RESPONSE_COST = 0.012

#: Sentinel returned by :meth:`CordaSystemBase._flow_wait` when a reply
#: never arrived within the flow timeout (fault injection only).
FLOW_WAIT_TIMED_OUT = object()


@dataclasses.dataclass
class VaultEntry:
    """The current unconsumed state behind one key."""

    ref: StateRef
    value: object


class VaultAdapter(StateInterface):
    """IEL state access backed by a Corda vault.

    Reads are linear scans over the whole vault (H2 via the state
    machine, not native queries — Section 5.1 reason (1)); writes create
    output states, consuming the previous state of an existing key.
    """

    def __init__(self, vault: typing.Dict[str, VaultEntry]) -> None:
        super().__init__()
        self.vault = vault
        self.outputs: typing.List[typing.Tuple[str, object]] = []
        self.consumed: typing.List[StateRef] = []

    def get(self, key: str) -> typing.Optional[object]:
        self.reads += 1
        self.work += max(1.0, float(len(self.vault)))  # full vault scan
        entry = self.vault.get(key)
        return entry.value if entry else None

    def put(self, key: str, value: object) -> None:
        self.writes += 1
        self.work += 1.0
        entry = self.vault.get(key)
        if entry is not None:
            self.consumed.append(entry.ref)
        self.outputs.append((key, value))


class CordaNode(BaseNode):
    """One Corda node: vault plus a bounded flow-worker pool."""

    def __init__(self, system: "CordaSystemBase", node_id: str) -> None:
        super().__init__(system, node_id)
        self.vault: typing.Dict[str, VaultEntry] = {}
        self.flow_pool = Resource(
            self.sim, capacity=self.profile.flow_workers, name=f"{node_id}-flows"
        )
        self._arrival_times: typing.Deque[float] = collections.deque()
        self.flows_started = 0
        self.flows_timed_out = 0
        self.notary_rejections = 0

    def record_arrival(self) -> float:
        """Track a submission; returns the current arrivals/second rate."""
        now = self.sim.now
        self._arrival_times.append(now)
        while self._arrival_times and now - self._arrival_times[0] > RATE_WINDOW:
            self._arrival_times.popleft()
        return len(self._arrival_times) / RATE_WINDOW

    def degradation(self) -> float:
        """Service-time multiplier under load (1.0 when knee disabled)."""
        knee = self.profile.overload_knee
        if knee <= 0:
            return 1.0
        now = self.sim.now
        while self._arrival_times and now - self._arrival_times[0] > RATE_WINDOW:
            self._arrival_times.popleft()
        rate = len(self._arrival_times) / RATE_WINDOW
        return 1.0 + rate / knee

    def record_transaction(
        self,
        tx_id: str,
        outputs: typing.Sequence[typing.Tuple[str, object]],
        consumed: typing.Sequence[StateRef],
    ) -> None:
        """Apply a finalized transaction to this node's vault."""
        consumed_set = set(consumed)
        if consumed_set:
            stale = [key for key, entry in self.vault.items() if entry.ref in consumed_set]
            for key in stale:
                del self.vault[key]
        for index, (key, value) in enumerate(outputs):
            self.vault[key] = VaultEntry(ref=StateRef(tx_id, index), value=value)
        checker = self.sim.checker
        if checker.enabled:
            checker.on_vault_record(self.endpoint_id, tx_id, outputs, consumed)


class CordaNotary(Endpoint):
    """One notary instance of the cluster (Table 4: one per server).

    The instances share the uniqueness service's spent-state set; the
    check-and-mark runs inside a shared mutual exclusion plus a small
    ``cluster_commit_latency`` modelling the cluster's internal
    agreement, so two instances racing for the same state still produce
    exactly one winner.
    """

    def __init__(
        self,
        system: "CordaSystemBase",
        notary_id: str,
        workers: int,
        service_time: float,
        spent: typing.Set[StateRef],
        uniqueness_lock: Resource,
        cluster_commit_latency: float = 0.004,
    ) -> None:
        super().__init__(notary_id)
        self.system = system
        self.sim = system.sim
        self.service_time = service_time
        self.pool = Resource(self.sim, capacity=workers, name=f"{notary_id}-workers")
        self.spent = spent
        self.uniqueness_lock = uniqueness_lock
        self.cluster_commit_latency = cluster_commit_latency
        self.accepted = 0
        self.rejected = 0
        self.stopped = False

    def on_crash(self) -> None:
        """The spent-state set is shared and durable: a restarted notary
        still rejects double spends notarised before the crash."""
        self.stopped = True

    def on_restart(self) -> None:
        self.stopped = False

    def on_message(self, message: Message) -> None:
        if message.kind != "corda/notarise":
            raise AssertionError(f"notary got unexpected {message.kind!r}")
        self.sim.spawn(self._serve(message))

    def _serve(self, message: Message) -> typing.Generator:
        request = typing.cast(dict, message.payload)
        yield self.pool.acquire()
        try:
            yield self.sim.timeout(self.service_time)
            yield self.uniqueness_lock.acquire()
            try:
                if self.cluster_commit_latency > 0:
                    yield self.sim.timeout(self.cluster_commit_latency)
                conflicts = [ref for ref in request["consumed"] if ref in self.spent]
                if conflicts:
                    self.rejected += 1
                    ok = False
                else:
                    self.spent.update(request["consumed"])
                    self.accepted += 1
                    ok = True
                checker = self.sim.checker
                if checker.enabled:
                    checker.on_notarise(
                        self.endpoint_id, request["tx_id"],
                        list(request["consumed"]), ok,
                    )
            finally:
                self.uniqueness_lock.release()
        finally:
            self.pool.release()
        self.send(
            message.src,
            "corda/notarise_reply",
            {"tx_id": request["tx_id"], "ok": ok},
        )


class CordaSystemBase(SystemModel):
    """Shared machinery of the two Corda editions."""

    engine_prefixes = ()
    stabilization_time = 0.0
    #: Whether counterparties sign serially (OS) or in parallel (Ent).
    serial_signing = True
    notary_workers = NOTARY_WORKERS
    notary_service_time = NOTARY_SERVICE_TIME

    def default_params(self) -> typing.Dict[str, object]:
        # Corda exposes no block-size/-time parameters (Section 4.4).
        # RequiredSigners=None reproduces the paper's setup (every node
        # signs every transaction); an integer k explores the Section 6
        # hypothesis that subset signing would let Corda scale ("in a
        # network that consists of many peers, where only a small subset
        # of nodes need to sign, Corda could achieve higher performance
        # than Fabric").
        return {"FlowTimeout": FLOW_TIMEOUT, "RequiredSigners": None}

    def signing_counterparties(self, initiator_id: str) -> typing.List[str]:
        """The nodes that must counter-sign a flow from ``initiator_id``."""
        others = [nid for nid in self.node_ids if nid != initiator_id]
        required = self.params.get("RequiredSigners")
        if required is None:
            return others
        count = int(typing.cast(int, required))
        if count < 0:
            raise ValueError(f"RequiredSigners must be >= 0, got {count}")
        return others[: min(count, len(others))]

    def make_node(self, node_id: str) -> CordaNode:
        return CordaNode(self, node_id)

    def build(self) -> None:
        # One notary instance per server (Table 4), all sharing one
        # uniqueness service.
        shared_spent: typing.Set[StateRef] = set()
        uniqueness_lock = Resource(self.sim, capacity=1, name=f"{self.name}-uniqueness")
        self.notaries: typing.List[CordaNotary] = []
        for index, host in enumerate(self.server_hosts):
            notary = CordaNotary(
                self,
                f"{self.name}-notary{index}",
                workers=self.notary_workers,
                service_time=self.notary_service_time,
                spent=shared_spent,
                uniqueness_lock=uniqueness_lock,
            )
            self.network.attach(notary, host)
            self.notaries.append(notary)
        #: (tx_id, kind) -> event used by flows awaiting replies.
        self._pending_replies: typing.Dict[typing.Tuple[str, str], object] = {}

    @property
    def notary(self) -> CordaNotary:
        """The first notary instance (compatibility accessor)."""
        return self.notaries[0]

    def notary_for(self, node_id: str) -> CordaNotary:
        """The notary instance co-located with a node's server."""
        index = self.node_ids.index(node_id)
        return self.notaries[index % len(self.notaries)]

    @property
    def notary_accepted(self) -> int:
        """Cluster-wide accepted notarisations."""
        return sum(n.accepted for n in self.notaries)

    @property
    def notary_rejected(self) -> int:
        """Cluster-wide double-spend rejections."""
        return sum(n.rejected for n in self.notaries)

    def start(self) -> None:
        self.started = True  # flows are demand-driven; nothing to arm

    def engine_of(self, endpoint_id: str) -> typing.Optional[object]:
        for notary in self.notaries:
            if notary.endpoint_id == endpoint_id:
                return notary
        return super().engine_of(endpoint_id)

    def leader_id(self) -> typing.Optional[str]:
        """Corda has no consensus leader; the closest coordinating role
        is the notary cluster, so "kill the leader" targets its first
        instance."""
        return self.notaries[0].endpoint_id

    # ------------------------------------------------------------------
    # Flow plumbing

    def await_reply(self, tx_id: str, kind: str):
        """An event that fires when the matching reply arrives."""
        event = self.sim.event(name=f"{kind}:{tx_id}")
        self._pending_replies[(tx_id, kind)] = event
        return event

    def resolve_reply(self, tx_id: str, kind: str, value: object) -> None:
        """Fire the event a flow is waiting on (no-op when none is)."""
        event = self._pending_replies.pop((tx_id, kind), None)
        if event is not None:
            event.succeed(value)

    def _flow_wait(self, event) -> typing.Generator:
        """Wait on a reply event; under fault injection, give up after
        the flow timeout.

        A crashed counterparty or notary never replies, which would pin
        the flow (and its worker slot) forever. Healthy runs never reach
        the timer branch, so fault-free schedules stay byte-identical.
        """
        if not self.fault_mode:
            value = yield event
            return value
        waited = yield AnyOf(
            self.sim, [event, self.sim.timeout(float(self.params["FlowTimeout"]))]
        )
        if event in waited:
            return waited[event]
        return FLOW_WAIT_TIMED_OUT

    def _abort_flow(
        self, node: CordaNode, client_id: str, transaction: Transaction, kinds: typing.List[str]
    ) -> None:
        """A reply never came: drop the stale wait entries and fail the flow."""
        for kind in kinds:
            self._pending_replies.pop((transaction.tx_id, kind), None)
        node.flows_timed_out += 1
        node.reject_client(
            client_id, [p.payload_id for p in transaction.payloads], "flow timed out"
        )

    def handle_node_message(self, node: BaseNode, message: Message) -> None:
        corda_node = typing.cast(CordaNode, node)
        if message.kind == "corda/sign_request":
            request = typing.cast(dict, message.payload)
            # The counterparty checks and signs; cost is part of the
            # calibrated flow time, the wire round trip is real.
            self.sim.schedule(
                self.profile.signing_cost * corda_node.degradation(),
                lambda: node.send(
                    message.src, "corda/sign_reply", {"tx_id": request["tx_id"]}
                ),
            )
        elif message.kind == "corda/sign_reply":
            request = typing.cast(dict, message.payload)
            self.resolve_reply(request["tx_id"], f"sign:{message.src}", True)
        elif message.kind == "corda/notarise_reply":
            request = typing.cast(dict, message.payload)
            self.resolve_reply(request["tx_id"], "notarise", request["ok"])
        elif message.kind == "corda/record":
            request = typing.cast(dict, message.payload)
            corda_node.record_transaction(
                request["tx_id"], request["outputs"], request["consumed"]
            )
            self.record_commit(request["tx_id"], node.endpoint_id)
        else:
            super().handle_node_message(node, message)

    # ------------------------------------------------------------------
    # Submission -> flow

    def handle_submit(self, node: BaseNode, message: Message) -> None:
        corda_node = typing.cast(CordaNode, node)
        transaction = typing.cast(Transaction, message.payload)
        corda_node.record_arrival()
        capacity = self.profile.mempool_capacity
        if capacity is not None and corda_node.flow_pool.queued >= capacity:
            corda_node.reject_client(
                message.src,
                [p.payload_id for p in transaction.payloads],
                "flow backlog full",
            )
            return
        self.remember_owner(transaction.payloads)
        self.sim.spawn(
            self._run_flow(corda_node, message.src, transaction),
            name=f"flow:{transaction.tx_id}",
        )

    def _flow_service_time(self, node: CordaNode, payload: Payload, scan_work: float) -> float:
        """Local execution + signature collection time for one flow."""
        profile = self.profile
        execute = profile.execute_cost * profile.function_multiplier(payload.function)
        counterparties = len(self.signing_counterparties(node.endpoint_id))
        if self.serial_signing:
            # Corda OS signs with each counterparty one after the other.
            signing = profile.signing_cost * counterparties
        else:
            # Enterprise overlaps the waves but still processes each
            # counterparty's response on the initiator.
            signing = profile.signing_cost + SIGNATURE_RESPONSE_COST * counterparties
        scans = profile.scan_cost * scan_work
        return (execute + signing + scans) * node.degradation()

    def _run_flow(
        self, node: CordaNode, client_id: str, transaction: Transaction
    ) -> typing.Generator:
        payload = transaction.payloads[0]
        yield node.flow_pool.acquire()
        node.flows_started += 1
        try:
            # Execute the IEL against the vault to learn outputs/inputs.
            adapter = VaultAdapter(node.vault)
            result = node.iel.execute(payload, adapter)
            scan_work = adapter.work - adapter.writes  # scans only
            service = self._flow_service_time(node, payload, scan_work)
            if service > float(self.params["FlowTimeout"]):
                node.flows_timed_out += 1
                yield self.sim.timeout(float(self.params["FlowTimeout"]))
                node.reject_client(client_id, [payload.payload_id], "flow timed out")
                return
            yield self.sim.timeout(service)
            if not result.ok:
                node.reject_client(client_id, [payload.payload_id], result.error)
                return
            # Serial signing means the waves happen one after another on
            # the wire too; parallel signing overlaps them. The service
            # time above covers CPU; here we pay the network round trips.
            others = self.signing_counterparties(node.endpoint_id)
            if self.serial_signing:
                for other in others:
                    reply = self.await_reply(transaction.tx_id, f"sign:{other}")
                    node.send(other, "corda/sign_request", {"tx_id": transaction.tx_id})
                    signed = yield from self._flow_wait(reply)
                    if signed is FLOW_WAIT_TIMED_OUT:
                        self._abort_flow(node, client_id, transaction, [f"sign:{other}"])
                        return
            else:
                replies = [
                    self.await_reply(transaction.tx_id, f"sign:{other}") for other in others
                ]
                for other in others:
                    node.send(other, "corda/sign_request", {"tx_id": transaction.tx_id})
                signed = yield from self._flow_wait(AllOf(self.sim, replies))
                if signed is FLOW_WAIT_TIMED_OUT:
                    self._abort_flow(
                        node, client_id, transaction, [f"sign:{other}" for other in others]
                    )
                    return
            # Notarisation: the double-spend check.
            notarise_reply = self.await_reply(transaction.tx_id, "notarise")
            node.send(
                self.notary_for(node.endpoint_id).endpoint_id,
                "corda/notarise",
                {"tx_id": transaction.tx_id, "consumed": list(adapter.consumed)},
            )
            ok = yield from self._flow_wait(notarise_reply)
            if ok is FLOW_WAIT_TIMED_OUT:
                self._abort_flow(node, client_id, transaction, ["notarise"])
                return
            if not ok:
                node.notary_rejections += 1
                node.reject_client(client_id, [payload.payload_id], "notary double spend")
                return
            # Finality: every node records the transaction.
            outcome = {payload.payload_id: (TxStatus.COMMITTED, "")}
            self.stage_finality(transaction.tx_id, outcome, None)
            record = {
                "tx_id": transaction.tx_id,
                "outputs": list(adapter.outputs),
                "consumed": list(adapter.consumed),
            }
            for node_id in self.node_ids:
                if node_id == node.endpoint_id:
                    node.record_transaction(
                        record["tx_id"], record["outputs"], record["consumed"]
                    )
                    self.record_commit(record["tx_id"], node_id)
                else:
                    node.send(node_id, "corda/record", record, size_bytes=transaction.size_bytes)
        finally:
            node.flow_pool.release()


class CordaOsSystem(CordaSystemBase):
    """Corda Open Source: serial signing, one flow worker, slow vault."""

    name = "corda_os"
    serial_signing = True
    notary_workers = 1
    notary_service_time = NOTARY_SERVICE_TIME
