"""BitShares — Graphene's DPoS with multi-operation transactions.

Witnesses (n - 1 of the nodes, Table 4) take turns producing a block
every ``block_interval`` seconds. A transaction carries 1..100
*operations* (the paper counts each operation as a transaction in the
MTPS metric, Section 4.5) and is atomic: one failing operation discards
the whole transaction.

The serialisability behaviour of Section 5.3 comes from the scheduling
rule modelled here: while assembling a block, the witness walks the
pending queue in order and defers any transaction whose accounts
intersect the accounts touched by transactions already *examined* in
this round ("BitShares does not include interacting operations or
transactions in a block"). With the BankingApp-SendPayment workload —
payments chained account_n -> account_{n+1} — this admits roughly one
transaction per workload thread per block, clogging the pending queue:
throughput collapses, the experiment outlasts its send window, and the
follow-up Balance benchmark finds the queue still full (the paper's
"almost exclusively lost transactions").
"""

from __future__ import annotations

import collections
import typing

from repro.chains.base import BaseNode, BlockProposal, SystemModel
from repro.consensus.base import Decision, EngineContext
from repro.consensus.dpos import DposEngine
from repro.net import Message
from repro.sim.stores import Store
from repro.storage import Transaction

#: Fraction of the block interval budgeted for applying transactions.
EXECUTION_BUDGET_FRACTION = 0.9

#: Pending transactions expire after this long without inclusion
#: (Graphene's transaction expiration).
PENDING_EXPIRATION = 60.0


def accounts_touched(transaction: Transaction) -> typing.Set[str]:
    """The accounts a transaction's operations write to."""
    touched: typing.Set[str] = set()
    for payload in transaction.payloads:
        if payload.function == "SendPayment":
            touched.add(str(payload.arg("source")))
            touched.add(str(payload.arg("destination")))
    return touched


def has_interacting_operations(transaction: Transaction) -> bool:
    """Whether two operations inside the transaction touch one account.

    Chained payments packed into one atomic transaction interact with
    each other (payment n's destination is payment n+1's source); the
    paper observes that such transactions are discarded wholesale
    (Section 5.3: one failing operation discards the transaction, and
    interacting operations are not included in a block).
    """
    seen: typing.Set[str] = set()
    for payload in transaction.payloads:
        if payload.function != "SendPayment":
            continue
        accounts = {str(payload.arg("source")), str(payload.arg("destination"))}
        if accounts & seen:
            return True
        seen |= accounts
    return False


class BitSharesNode(BaseNode):
    """One BitShares node (a witness when scheduled)."""

    def __init__(self, system: "BitSharesSystem", node_id: str) -> None:
        super().__init__(system, node_id)
        self.engine: typing.Optional[DposEngine] = None
        self._commit_queue: Store = Store(self.sim, name=f"{node_id}-commits")
        self.sim.spawn(self._commit_loop(), name=f"{node_id}-committer")

    def enqueue_commit(self, decision: Decision) -> None:
        """A witness block arrived; queue it for application."""
        self._commit_queue.try_put(decision)

    def _commit_loop(self) -> typing.Generator:
        system = typing.cast("BitSharesSystem", self.system)
        while True:
            decision = yield self._commit_queue.get()
            proposal = typing.cast(BlockProposal, decision.proposal)
            if proposal.is_empty:
                self.seal_and_append(proposal, decision.proposer)
                continue
            yield from self.busy(
                self.profile.block_overhead + self.execution_time(proposal.transactions)
            )
            outcome = self.apply_payloads(proposal.transactions, atomic_tx=True)
            self.seal_and_append(proposal, decision.proposer)
            system.stage_finality(proposal.proposal_id, outcome, self.chain.height)
            system.record_commit(proposal.proposal_id, self.endpoint_id)


class BitSharesSystem(SystemModel):
    """A BitShares deployment (Table 4: n nodes, n-1 witnesses)."""

    name = "bitshares"
    engine_prefixes = ("dpos",)
    #: Section 4.4: BitShares needs 180 s to stabilise after start.
    stabilization_time = 180.0

    def default_params(self) -> typing.Dict[str, object]:
        return {
            # Table 6: block_interval, default 5 s, used {1, 2, 5, 10}.
            "block_interval": 5.0,
            # Pending pool capacity in payloads (maximum_transaction_size
            # analogue; keeps the SendPayment clog from growing unbounded).
            "PendingPoolCapacity": 60_000,
        }

    def make_node(self, node_id: str) -> BitSharesNode:
        return BitSharesNode(self, node_id)

    def build(self) -> None:
        #: Shared pending queue of (transaction, admitted_at).
        self.pending: typing.Deque[typing.Tuple[Transaction, float]] = collections.deque()
        self.pending_payloads = 0
        self.pool_rejections = 0
        self.expired_transactions = 0
        self.deferred_inclusions = 0
        self.deferred_interacting = 0
        witness_ids = self.node_ids[: max(1, self.spec.node_count - 1)]
        interval = float(self.params["block_interval"])
        for node_id, node in self.nodes.items():
            bits_node = typing.cast(BitSharesNode, node)
            context = EngineContext(
                sim=self.sim,
                replica_id=node_id,
                peers=self.node_ids,
                send_fn=lambda dst, kind, payload, size, src=node_id: self.network.send(
                    Message(src, dst, kind, payload, size)
                ),
                broadcast_fn=lambda kind, payload, size, src=node_id: self.network.broadcast(
                    src, self.node_ids, kind, payload, size
                ),
                decide_fn=bits_node.enqueue_commit,
                rng=self.sim.rng.stream(f"dpos:{node_id}"),
            )
            bits_node.engine = DposEngine(
                context,
                witnesses=witness_ids,
                block_interval=interval,
                proposal_factory=lambda slot, me=node_id: self._produce_block(me),
            )

    def start(self) -> None:
        self.started = True
        for node in self.nodes.values():
            engine = typing.cast(BitSharesNode, node).engine
            assert engine is not None
            engine.start()

    def leader_id(self) -> typing.Optional[str]:
        """The witness scheduled for the slot in progress."""
        for node in self.nodes.values():
            engine = typing.cast(BitSharesNode, node).engine
            if engine is not None and not engine.stopped:
                slot = int(self.sim.now / engine.block_interval)
                return engine.witness_for_slot(slot)
        return None

    # ------------------------------------------------------------------
    # Block production

    def _produce_block(self, witness_id: str) -> typing.Optional[BlockProposal]:
        """The scheduled witness assembles its block from the pending queue."""
        self._expire_pending()
        if not self.pending:
            return None
        node = self.nodes[witness_id]
        interval = float(self.params["block_interval"])
        budget = interval * EXECUTION_BUDGET_FRACTION
        selected: typing.List[Transaction] = []
        deferred: typing.List[typing.Tuple[Transaction, float]] = []
        touched: typing.Set[str] = set()
        spent = 0.0
        while self.pending:
            tx, admitted_at = self.pending.popleft()
            # Examining a pending transaction means (re-)applying it to
            # pending state, so every examined transaction — kept or
            # deferred — consumes the block's execution budget. A pool
            # clogged with interacting transactions therefore starves
            # later benchmarks of the unit (the paper's failing
            # BankingApp-Balance after SendPayment, Section 5.3).
            cost = node.profile.per_tx_overhead + sum(
                node.execute_cost_of(p) for p in tx.payloads
            )
            if spent + cost > budget:
                deferred.append((tx, admitted_at))
                break
            spent += cost
            accounts = accounts_touched(tx)
            if has_interacting_operations(tx):
                # Operations inside the transaction interact with each
                # other: it can never apply, and keeps being retried
                # until it expires.
                self.deferred_interacting += 1
                deferred.append((tx, admitted_at))
                continue
            if accounts & touched:
                # Interacts with an earlier pending transaction of this
                # round: deferred, but its accounts still taint the round.
                touched |= accounts
                deferred.append((tx, admitted_at))
                self.deferred_inclusions += 1
                continue
            touched |= accounts
            selected.append(tx)
        # Deferred transactions return to the front, preserving order.
        for item in reversed(deferred):
            self.pending.appendleft(item)
        self.pending_payloads -= sum(len(tx.payloads) for tx in selected)
        if not selected:
            return None
        return BlockProposal.cut(selected, self.sim.now)

    def _expire_pending(self) -> None:
        """Drop pending transactions older than the expiration window."""
        now = self.sim.now
        while self.pending and now - self.pending[0][1] > PENDING_EXPIRATION:
            tx, __ = self.pending.popleft()
            self.pending_payloads -= len(tx.payloads)
            self.expired_transactions += 1

    # ------------------------------------------------------------------
    # Message routing and submission

    def route_engine_message(self, node: BaseNode, message: Message) -> None:
        engine = typing.cast(BitSharesNode, node).engine
        assert engine is not None
        engine.on_message(message.kind, message.src, message.payload)

    def handle_submit(self, node: BaseNode, message: Message) -> None:
        transaction = typing.cast(Transaction, message.payload)
        self.sim.spawn(self._admit(node, message.src, transaction))

    def _admit(self, node: BaseNode, client_id: str, transaction: Transaction) -> typing.Generator:
        yield from node.busy(self.profile.admission_cost * len(transaction.payloads))
        capacity = int(self.params["PendingPoolCapacity"])
        if self.pending_payloads + len(transaction.payloads) > capacity:
            self.pool_rejections += 1
            node.reject_client(
                client_id, [p.payload_id for p in transaction.payloads], "pending pool full"
            )
            return
        self.remember_owner(transaction.payloads)
        self.pending.append((transaction, self.sim.now))
        self.pending_payloads += len(transaction.payloads)
