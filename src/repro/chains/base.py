"""Shared machinery of the seven system models.

A :class:`SystemModel` owns one deployment: the simulated servers, the
network, the blockchain nodes (plus auxiliary components such as Fabric's
orderers or Corda's notaries), the per-system parameters (Table 5/6) and
the finality bookkeeping that implements the paper's end-to-end
confirmation rule — a client is notified only once a transaction is
persisted on *all* nodes (Figure 2).

Nodes are :class:`BaseNode` endpoints: each has its own chain replica,
world state, a single-threaded CPU (service times serialise on it) and an
event-delivery queue through which all client notifications flow, so an
overloaded delivery path loses notifications exactly the way the paper
observes on Fabric (Sections 5.4, 5.8.2).
"""

from __future__ import annotations

import abc
import dataclasses
import itertools
import typing

from repro.chains.profiles import PerformanceProfile, profile_for
from repro.iel import create_iel
from repro.iel.base import InterfaceExecutionLayer
from repro.net import Endpoint, Host, Message, Network
from repro.net.latency import DATACENTER_LATENCY, LatencyModel
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.sim.stores import Store
from repro.storage import Block, Chain, Payload, Receipt, Transaction, TxStatus, WorldState

_proposal_counter = itertools.count(1)


def reset_proposal_counter() -> None:
    """Restart the proposal-id sequence (deterministic ids for tests)."""
    global _proposal_counter
    _proposal_counter = itertools.count(1)

#: The paper's testbed packs at most four blockchain nodes per server
#: (Section 5.8.2).
MAX_NODES_PER_SERVER = 4


@dataclasses.dataclass
class DeploymentSpec:
    """How a system is deployed for one benchmark run."""

    node_count: int = 4
    latency: typing.Optional[LatencyModel] = None
    seed: int = 0
    #: System-specific parameters overriding the defaults (Table 5/6
    #: names: MaxMessageCount, istanbul.blockperiod, block_interval, ...).
    params: typing.Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def server_count(self) -> int:
        """Servers carrying blockchain nodes.

        The base deployment puts one node per server on four servers
        (Table 4); the scalability study distributes 8/16/32 nodes over
        eight servers round-robin, at most four nodes per server
        (Section 5.8.2).
        """
        return min(8, self.node_count) if self.node_count > 4 else self.node_count


@dataclasses.dataclass(frozen=True)
class BlockProposal:
    """A cut block on its way through consensus (sealed on commit)."""

    proposal_id: str
    transactions: typing.Tuple[Transaction, ...]
    created_at: float
    #: System-specific annotations riding along (e.g. Fabric's rwsets).
    metadata: typing.Dict[str, object] = dataclasses.field(default_factory=dict)

    @classmethod
    def cut(
        cls,
        transactions: typing.Sequence[Transaction],
        created_at: float,
        proposal_id: typing.Optional[str] = None,
    ) -> "BlockProposal":
        """Make a proposal (fresh id unless the caller provides a
        deterministic one, e.g. Kafka-ordered cutting where every
        orderer must produce the identical block)."""
        return cls(
            proposal_id=proposal_id or f"prop{next(_proposal_counter)}",
            transactions=tuple(transactions),
            created_at=created_at,
        )

    @property
    def payload_count(self) -> int:
        """Payloads across all transactions."""
        return sum(len(tx.payloads) for tx in self.transactions)

    @property
    def size_bytes(self) -> int:
        """Wire size of the proposal."""
        return 512 + sum(tx.size_bytes for tx in self.transactions)

    @property
    def is_empty(self) -> bool:
        """Whether the proposal carries no transactions."""
        return not self.transactions


@dataclasses.dataclass(frozen=True)
class ClientReject:
    """An immediate rejection notice (queue full, double spend...)."""

    payload_ids: typing.Tuple[str, ...]
    reason: str


class FinalityTracker:
    """Implements "persisted on all nodes" (paper Figure 2, T3).

    Keys are proposal or transaction ids; once every required node has
    recorded a commit for a key, the registered callback fires with the
    time of the *last* commit.
    """

    def __init__(self, required_nodes: typing.Sequence[str]) -> None:
        self.required: typing.Set[str] = set(required_nodes)
        if not self.required:
            raise ValueError("finality requires at least one node")
        self._commits: typing.Dict[str, typing.Set[str]] = {}
        self._callback: typing.Optional[typing.Callable[[str, float], None]] = None
        self.finalized_count = 0

    def on_final(self, callback: typing.Callable[[str, float], None]) -> None:
        """Register the single finality callback ``(key, last_commit_time)``."""
        self._callback = callback

    def record_commit(self, key: str, node_id: str, now: float) -> bool:
        """Note that ``node_id`` persisted ``key``; returns True on finality."""
        if node_id not in self.required:
            raise ValueError(f"unexpected node {node_id!r} for finality of {key!r}")
        seen = self._commits.setdefault(key, set())
        seen.add(node_id)
        if seen == self.required:
            del self._commits[key]
            self.finalized_count += 1
            if self._callback is not None:
                self._callback(key, now)
            return True
        return False

    def pending_keys(self) -> int:
        """Keys committed somewhere but not yet everywhere."""
        return len(self._commits)


class BaseNode(Endpoint):
    """One blockchain node: chain replica, state, CPU, event delivery."""

    def __init__(self, system: "SystemModel", node_id: str) -> None:
        super().__init__(node_id)
        self.system = system
        self.sim: Simulator = system.sim
        self.profile: PerformanceProfile = system.profile
        self.chain = Chain(owner=node_id)
        self.state = WorldState()
        self.iel: InterfaceExecutionLayer = create_iel(system.iel_name)
        self.cpu = Resource(self.sim, capacity=1, name=f"{node_id}-cpu")
        self._event_queue: Store = Store(self.sim, name=f"{node_id}-events")
        self._event_backlog_payloads = 0
        self.dropped_notifications = 0
        self.rejected_submissions = 0
        self.executed_payloads = 0
        self.sim.spawn(self._event_emitter(), name=f"{node_id}-emitter")

    # ------------------------------------------------------------------
    # Cost helpers

    def busy(self, duration: float) -> typing.Generator:
        """Occupy this node's CPU for ``duration`` (generator helper)."""
        yield self.cpu.acquire()
        try:
            if duration > 0:
                yield self.sim.timeout(duration)
        finally:
            self.cpu.release()

    def execute_cost_of(self, payload: Payload) -> float:
        """Calibrated execution time of one payload on this system."""
        return self.profile.execute_cost * self.profile.function_multiplier(payload.function)

    def execution_time(self, transactions: typing.Iterable[Transaction]) -> float:
        """Execution + per-tx overhead time for a set of transactions."""
        total = 0.0
        for tx in transactions:
            total += self.profile.per_tx_overhead
            for payload in tx.payloads:
                total += self.execute_cost_of(payload)
        return total

    # ------------------------------------------------------------------
    # State application

    def apply_payloads(
        self, transactions: typing.Iterable[Transaction], atomic_tx: bool = True
    ) -> typing.Dict[str, typing.Tuple[TxStatus, str]]:
        """Order-execute application: run every payload on world state.

        Returns ``payload_id -> (status, detail)``. With ``atomic_tx``, a
        failing payload discards its whole transaction (BitShares
        operations, Sawtooth batches map batches separately).
        """
        from repro.iel.base import ReadWriteSetAdapter

        outcome: typing.Dict[str, typing.Tuple[TxStatus, str]] = {}
        for tx in transactions:
            # Buffer each transaction's writes so an atomic failure
            # leaves the world state untouched. Payloads inside the
            # transaction see each other's writes through the buffer.
            adapter = ReadWriteSetAdapter(self.state)
            results = [(payload, self.iel.execute(payload, adapter)) for payload in tx.payloads]
            failed = [(p, r) for p, r in results if not r.ok]
            if failed and atomic_tx:
                for payload in tx.payloads:
                    outcome[payload.payload_id] = (TxStatus.DISCARDED, failed[0][1].error)
                continue
            self.state.apply(adapter.rwset)
            for payload, result in results:
                if result.ok:
                    self.executed_payloads += 1
                    outcome[payload.payload_id] = (TxStatus.COMMITTED, "")
                else:
                    outcome[payload.payload_id] = (TxStatus.DISCARDED, result.error)
        self._trace_execution(len(outcome))
        checker = self.sim.checker
        if checker.enabled:
            checker.on_apply(self.endpoint_id, outcome)
        return outcome

    def _trace_execution(self, payload_count: int) -> None:
        """Account one IEL application batch on this node."""
        tracer = self.sim.tracer
        if tracer.enabled and tracer.wants("iel") and payload_count:
            tracer.event(
                "iel.apply", category="iel", node=self.endpoint_id,
                payloads=payload_count, iel=self.system.iel_name,
            )
            tracer.metrics.counter("iel.payloads", system=self.system.name,
                                   node=self.endpoint_id).inc(payload_count)

    def try_apply_batch(
        self, transactions: typing.Iterable[Transaction]
    ) -> typing.Tuple[bool, typing.Dict[str, typing.Tuple[TxStatus, str]]]:
        """Batch-atomic application (Sawtooth semantics).

        All payloads of all transactions execute against one buffer; if
        any payload fails, nothing is applied and every payload reports
        DISCARDED. Otherwise the buffer is applied and all report
        COMMITTED.
        """
        from repro.iel.base import ReadWriteSetAdapter

        adapter = ReadWriteSetAdapter(self.state)
        outcome: typing.Dict[str, typing.Tuple[TxStatus, str]] = {}
        ok = True
        first_error = ""
        for tx in transactions:
            for payload in tx.payloads:
                result = self.iel.execute(payload, adapter)
                outcome[payload.payload_id] = (
                    (TxStatus.COMMITTED, "") if result.ok else (TxStatus.DISCARDED, result.error)
                )
                if not result.ok and ok:
                    ok = False
                    first_error = result.error
        if not ok:
            outcome = {
                payload_id: (TxStatus.DISCARDED, first_error) for payload_id in outcome
            }
            return False, outcome
        self.state.apply(adapter.rwset)
        self.executed_payloads += len(outcome)
        self._trace_execution(len(outcome))
        checker = self.sim.checker
        if checker.enabled:
            checker.on_apply(self.endpoint_id, outcome)
        return True, outcome

    def seal_and_append(self, proposal: BlockProposal, proposer: str) -> Block:
        """Turn a decided proposal into a block on this node's chain.

        The header timestamp is the proposal's creation time — part of
        the agreed content — so every replica seals a byte-identical
        block.
        """
        block = Block.seal(
            height=self.chain.height + 1,
            parent_hash=self.chain.head_hash,
            transactions=list(proposal.transactions),
            proposer=proposer,
            timestamp=proposal.created_at,
        )
        # Sealed here from the decided proposal, so its Merkle root is
        # correct by construction; skip the per-transaction re-hash.
        self.chain.append(block, verify_merkle=False)
        checker = self.sim.checker
        if checker.enabled:
            checker.on_block(self.endpoint_id, block)
        tracer = self.sim.tracer
        if tracer.enabled and tracer.wants("storage"):
            tracer.event(
                "block.append", category="storage", node=self.endpoint_id,
                height=block.height, txs=len(proposal.transactions),
                payloads=proposal.payload_count, bytes=proposal.size_bytes,
            )
            tracer.metrics.counter("storage.blocks", system=self.system.name,
                                   node=self.endpoint_id).inc()
            tracer.metrics.histogram(
                "storage.block_payloads", system=self.system.name, base=1.0,
            ).record(proposal.payload_count)
        return block

    # ------------------------------------------------------------------
    # Messaging

    def on_message(self, message: Message) -> None:
        if message.kind == "client/submit":
            self.system.handle_submit(self, message)
        elif message.kind.split("/", 1)[0] in self.system.engine_prefixes:
            self.system.route_engine_message(self, message)
        else:
            self.system.handle_node_message(self, message)

    # ------------------------------------------------------------------
    # Event delivery (the end-to-end notification path)

    def notify_client(self, client_id: str, receipts: typing.Sequence[Receipt]) -> None:
        """Queue finalization notifications for delivery to a client.

        When the backlog exceeds the profile's event-queue capacity the
        notifications are dropped — committed on chain, never observed by
        the client (the paper's Fabric failure mode).
        """
        if not receipts:
            return
        capacity = self.profile.event_queue_capacity
        if capacity is not None and self._event_backlog_payloads + len(receipts) > capacity:
            self.dropped_notifications += len(receipts)
            tracer = self.sim.tracer
            if tracer.enabled and tracer.wants("chain"):
                tracer.event(
                    "notify.drop", category="chain", node=self.endpoint_id,
                    client=client_id, count=len(receipts),
                    backlog=self._event_backlog_payloads,
                )
                tracer.metrics.counter(
                    "chain.dropped_notifications",
                    system=self.system.name, node=self.endpoint_id,
                ).inc(len(receipts))
            return
        self._event_backlog_payloads += len(receipts)
        self._event_queue.try_put((client_id, list(receipts)))

    def reject_client(self, client_id: str, payload_ids: typing.Sequence[str], reason: str) -> None:
        """Send an immediate rejection notice."""
        self.rejected_submissions += len(payload_ids)
        self.send(
            client_id,
            "client/reject",
            ClientReject(tuple(payload_ids), reason),
            size_bytes=64 + 16 * len(payload_ids),
        )

    def _event_emitter(self) -> typing.Generator:
        while True:
            client_id, receipts = yield self._event_queue.get()
            emit_time = self.profile.event_emit_cost * len(receipts)
            if emit_time > 0:
                yield self.sim.timeout(emit_time)
            self._event_backlog_payloads -= len(receipts)
            self.send(
                client_id,
                "client/receipt",
                receipts,
                size_bytes=64 + 48 * len(receipts),
            )


class SystemModel(abc.ABC):
    """One deployed blockchain system under test."""

    #: Registry name ("fabric", "quorum", ...).
    name: str = ""
    #: First path segments of this system's consensus message kinds.
    engine_prefixes: typing.Tuple[str, ...] = ()
    #: Seconds the system needs to stabilise before serving workloads
    #: (Section 4.4: 180 s BitShares/Quorum, 60 s Sawtooth, 0 otherwise).
    stabilization_time: float = 0.0

    def __init__(self, sim: Simulator, spec: DeploymentSpec, iel_name: str) -> None:
        self.sim = sim
        self.spec = spec
        self.iel_name = iel_name
        self.profile = profile_for(self.name)
        self.params: typing.Dict[str, object] = {**self.default_params(), **spec.params}
        latency = spec.latency or DATACENTER_LATENCY
        self.network = Network(sim, default_latency=latency, name=self.name)
        self.server_hosts = [Host(f"server-{i}") for i in range(spec.server_count)]
        self.node_ids = [f"{self.name}-n{i}" for i in range(spec.node_count)]
        self.nodes: typing.Dict[str, BaseNode] = {}
        for index, node_id in enumerate(self.node_ids):
            node = self.make_node(node_id)
            host = self.server_hosts[index % len(self.server_hosts)]
            self.network.attach(node, host)
            self.nodes[node_id] = node
        self.finality = FinalityTracker(self.node_ids)
        self.finality.on_final(self._on_final)
        #: client_id -> gateway node id (set on subscribe).
        self.subscriptions: typing.Dict[str, str] = {}
        #: proposal/tx id -> pending finalization context.
        self._pending_final: typing.Dict[str, typing.Dict[str, typing.Tuple[TxStatus, str]]] = {}
        self._pending_height: typing.Dict[str, typing.Optional[int]] = {}
        self.started = False
        #: True when a fault plan is installed on this deployment. Systems
        #: whose failure handling would perturb calibrated healthy-run
        #: behaviour (Corda's flow reply timeouts) only arm it when set,
        #: keeping fault-free runs byte-identical.
        self.fault_mode = False
        self.build()

    # ------------------------------------------------------------------
    # Subclass hooks

    @abc.abstractmethod
    def default_params(self) -> typing.Dict[str, object]:
        """The system's default parameter values (Tables 5/6)."""

    def make_node(self, node_id: str) -> BaseNode:
        """Create one node (subclasses return their node subclass)."""
        return BaseNode(self, node_id)

    @abc.abstractmethod
    def build(self) -> None:
        """Wire consensus engines and auxiliary components."""

    @abc.abstractmethod
    def start(self) -> None:
        """Begin operation (engines, block timers)."""

    @abc.abstractmethod
    def handle_submit(self, node: BaseNode, message: Message) -> None:
        """Admit one client submission arriving at ``node``."""

    def route_engine_message(self, node: BaseNode, message: Message) -> None:
        """Deliver a consensus message to the node's engine (override)."""
        raise NotImplementedError(f"{self.name} has no engine router")

    def handle_node_message(self, node: BaseNode, message: Message) -> None:
        """Handle non-engine, non-submit node traffic (override as needed)."""
        raise NotImplementedError(f"{self.name}: unhandled message kind {message.kind!r}")

    # ------------------------------------------------------------------
    # Fault injection (crash/restart lifecycle)

    def engine_of(self, endpoint_id: str) -> typing.Optional[object]:
        """The consensus engine behind an endpoint, if it has one.

        Systems whose consensus lives off the node (Fabric's orderers,
        Corda's notaries) override this to cover those endpoints too.
        """
        node = self.nodes.get(endpoint_id)
        return getattr(node, "engine", None) if node is not None else None

    def leader_id(self) -> typing.Optional[str]:
        """The endpoint currently coordinating consensus, if the system
        has such a role (Raft leader, PBFT primary, IBFT proposer, DPoS
        slot witness, Corda notary). ``None`` for leaderless systems."""
        return None

    def enter_fault_mode(self) -> None:
        """Arm the defensive paths that stay cold in healthy runs.

        Sets :attr:`fault_mode` and switches every consensus engine into
        recovery mode (vote re-broadcast, gap sync — behaviours that
        would perturb calibrated fault-free schedules).
        """
        self.fault_mode = True
        for node_id in self.node_ids:
            engine = self.engine_of(node_id)
            if engine is not None and hasattr(engine, "enable_recovery"):
                engine.enable_recovery()

    def crash_node(self, endpoint_id: str) -> None:
        """Crash one endpoint: it stops sending, receiving and deciding.

        Messages already in flight toward it are dropped. Durable state
        (chain replica, world state, decided logs) survives — the model's
        crashes are process crashes, not disk loss.
        """
        self.network.set_endpoint_down(endpoint_id)
        engine = self.engine_of(endpoint_id)
        if engine is not None:
            engine.on_crash()
        self._post_crash(endpoint_id)

    def restart_node(self, endpoint_id: str) -> None:
        """Restart a crashed endpoint; its engine runs its recovery path."""
        self.network.set_endpoint_up(endpoint_id)
        engine = self.engine_of(endpoint_id)
        if engine is not None:
            engine.on_restart()
        self._post_restart(endpoint_id)

    def _post_crash(self, endpoint_id: str) -> None:
        """System-specific crash side effects (override as needed)."""

    def _post_restart(self, endpoint_id: str) -> None:
        """System-specific restart side effects (override as needed)."""

    # ------------------------------------------------------------------
    # Client attachment

    def attach_client(self, client: Endpoint, host: Host) -> None:
        """Put a client endpoint on the network."""
        self.network.attach(client, host)

    def gateway_for(self, client_index: int) -> str:
        """The node a client connects to (one client per server, paper 4.3)."""
        return self.node_ids[client_index % len(self.node_ids)]

    def subscribe(self, client_id: str, gateway_node_id: str) -> None:
        """Register a client for finalization notifications via a gateway."""
        if gateway_node_id not in self.nodes:
            raise KeyError(f"unknown gateway node {gateway_node_id!r}")
        self.subscriptions[client_id] = gateway_node_id

    # ------------------------------------------------------------------
    # Finality plumbing

    def stage_finality(
        self,
        key: str,
        outcome: typing.Dict[str, typing.Tuple[TxStatus, str]],
        block_height: typing.Optional[int],
    ) -> None:
        """Record the payload outcomes that finality of ``key`` will report."""
        self._pending_final[key] = outcome
        self._pending_height[key] = block_height
        tracer = self.sim.tracer
        if tracer.enabled:
            # First local commit -> persisted on all nodes (Figure 2, T3).
            tracer.begin(
                ("finality", self.name, key), "block.finality", category="chain",
                key=key, payloads=len(outcome), height=block_height,
            )

    def record_commit(self, key: str, node_id: str) -> None:
        """A node persisted ``key``; fires finality when it is the last."""
        self.finality.record_commit(key, node_id, self.sim.now)

    def _on_final(self, key: str, commit_time: float) -> None:
        outcome = self._pending_final.pop(key, None)
        height = self._pending_height.pop(key, None)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.end(("finality", self.name, key), at=commit_time)
        if not outcome:
            return
        by_client: typing.Dict[str, typing.List[Receipt]] = {}
        owners = self._owners
        for payload_id, (status, detail) in outcome.items():
            client_id = owners.pop(payload_id, "")
            receipt = Receipt(
                payload_id=payload_id,
                tx_id=key,
                status=status,
                block_height=height,
                commit_time=commit_time,
                detail=detail,
            )
            by_client.setdefault(client_id, []).append(receipt)
        for client_id, receipts in by_client.items():
            gateway_id = self.subscriptions.get(client_id)
            if gateway_id is None:
                continue
            self.nodes[gateway_id].notify_client(client_id, receipts)

    #: payload_id -> submitting client id, maintained by subclasses on
    #: admission (needed to route receipts).
    @property
    def _owners(self) -> typing.Dict[str, str]:
        if not hasattr(self, "_owner_map"):
            self._owner_map: typing.Dict[str, str] = {}
        return self._owner_map

    def remember_owner(self, payloads: typing.Iterable[Payload]) -> None:
        """Record which client each payload belongs to."""
        owners = self._owners
        checker = self.sim.checker
        for payload in payloads:
            owners[payload.payload_id] = payload.client_id
            if checker.enabled:
                checker.on_payload(payload)

    # ------------------------------------------------------------------
    # Diagnostics

    def total_chain_height(self) -> typing.Dict[str, int]:
        """Chain height per node (diagnostic)."""
        return {node_id: node.chain.height for node_id, node in self.nodes.items()}

    def validate_all_chains(self) -> None:
        """Full tamper-evidence validation of every replica, plus mutual
        prefix consistency — the safety check integration tests run."""
        nodes = list(self.nodes.values())
        for node in nodes:
            node.chain.validate()
        for other in nodes[1:]:
            if not nodes[0].chain.same_prefix(other.chain):
                raise AssertionError(
                    f"chains diverged between {nodes[0].endpoint_id} and {other.endpoint_id}"
                )
