"""System registry: name -> model class."""

from __future__ import annotations

import typing

from repro.chains.base import DeploymentSpec, SystemModel
from repro.chains.bitshares import BitSharesSystem
from repro.chains.corda_enterprise import CordaEnterpriseSystem
from repro.chains.corda_os import CordaOsSystem
from repro.chains.diem import DiemSystem
from repro.chains.fabric import FabricSystem
from repro.chains.quorum import QuorumSystem
from repro.chains.sawtooth import SawtoothSystem

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

_SYSTEMS: typing.Dict[str, typing.Type[SystemModel]] = {
    cls.name: cls
    for cls in (
        CordaOsSystem,
        CordaEnterpriseSystem,
        BitSharesSystem,
        FabricSystem,
        QuorumSystem,
        SawtoothSystem,
        DiemSystem,
    )
}

#: The seven systems, in the paper's presentation order (Figure 3 columns).
SYSTEM_NAMES: typing.Tuple[str, ...] = (
    "corda_os",
    "corda_enterprise",
    "bitshares",
    "fabric",
    "quorum",
    "sawtooth",
    "diem",
)

#: Human-readable labels matching the paper's figures.
SYSTEM_LABELS: typing.Dict[str, str] = {
    "corda_os": "Corda OS",
    "corda_enterprise": "Corda Enterprise",
    "bitshares": "BitShares",
    "fabric": "Fabric",
    "quorum": "Quorum",
    "sawtooth": "Sawtooth",
    "diem": "Diem",
}


def create_system(
    name: str, sim: "Simulator", spec: DeploymentSpec, iel_name: str
) -> SystemModel:
    """Instantiate a system model by registry name."""
    if name not in _SYSTEMS:
        raise KeyError(f"unknown system {name!r}; known: {sorted(_SYSTEMS)}")
    return _SYSTEMS[name](sim, spec, iel_name)


def system_class(name: str) -> typing.Type[SystemModel]:
    """Look up a system model class by name."""
    if name not in _SYSTEMS:
        raise KeyError(f"unknown system {name!r}; known: {sorted(_SYSTEMS)}")
    return _SYSTEMS[name]
