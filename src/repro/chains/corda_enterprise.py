"""Corda Enterprise — the commercial edition of the Corda node.

Identical flow architecture to Corda OS (the paper deliberately uses the
same configuration for both, Section 4.4) with the documented
performance work: multithreaded flow workers, parallel signature
collection and a faster vault [48]. The paper's observations reproduced
here: roughly constant ~13 MTPS on KeyValue-Set across rate limiters
(the flow backlog is bounded, so latency stays in the 20-30 s band
instead of growing without limit), best results on the benchmarks that
read nothing, and notary-rejected chained payments.
"""

from __future__ import annotations

from repro.chains.corda_os import CordaSystemBase


class CordaEnterpriseSystem(CordaSystemBase):
    """Corda Enterprise: parallel signing, four flow workers per node."""

    name = "corda_enterprise"
    serial_signing = False
    notary_workers = 4
    notary_service_time = 0.02
