"""Calibrated per-system performance profiles.

The paper measures real binaries on AMD Ryzen 7 3700X servers; we replace
the binaries with protocol models, so each system's *service times* must
come from somewhere. This module is that somewhere — one reviewable place
holding every calibration constant, fitted so that the model's operating
points land near the paper's reported numbers (Sections 5.1–5.7 and the
Figure 4 grid). All times are seconds; costs are per payload unless noted.

Fitting anchors (paper values the constants were tuned against):

==============  =====================================================
System          Anchors
==============  =====================================================
Corda OS        KV-Set: 4.08 MTPS @ RL20, 1.04 @ RL160 (overload
                degradation); KV-Get fails completely (vault scans).
Corda Ent.      KV-Set: ~13 MTPS flat across RL; DoNothing/Create up
                to 64.6; Get slow but nonzero (3.09 in Fig. 4).
BitShares       DoNothing 1599.9 MTPS @ RL1600/BI1 (100 ops/tx, no
                loss); ~590 ceiling @ 1 op/tx; SendPayment conflicts.
Fabric          1285-1461 MTPS ceiling; 801.4 @ RL800 with MFLS
                0.22 s; event loss at RL1600; blocks every second.
Quorum          DoNothing 773.6; others 235-365; MFLS 9.7-16.1 s @
                BP5; total stall at BP<=2 under RL400.
Sawtooth        103.5 MTPS best (100 tx/batch); 26-35 @ 1 tx/batch;
                queue-full rejections dominate losses; RL1600
                degrades to ~14-16 MTPS.
Diem            50-96 MTPS; MFLS 93-145 s (deep mempool); heavy
                losses; "spiking" validator pauses.
==============  =====================================================
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class PerformanceProfile:
    """Service times and capacities of one system's node implementation."""

    system: str

    #: CPU time to admit one client submission into the pending pool
    #: (deserialisation, signature check, mempool insert).
    admission_cost: float = 0.0002

    #: CPU time to execute one payload, before IEL multipliers.
    execute_cost: float = 0.001

    #: Per-transaction (envelope) overhead during block assembly/validation.
    per_tx_overhead: float = 0.0

    #: Fixed CPU time to assemble or validate one block.
    block_overhead: float = 0.002

    #: CPU time to emit one payload's event notification to a client.
    event_emit_cost: float = 0.0002

    #: Pending pool capacity in payloads (None = unbounded).
    mempool_capacity: typing.Optional[int] = None

    #: Event-delivery backlog (payloads) beyond which notifications drop.
    event_queue_capacity: typing.Optional[int] = None

    #: Multipliers applied to ``execute_cost`` per IEL function. Reads on
    #: vault-scan systems are handled separately via ``scan_cost``.
    function_cost: typing.Mapping[str, float] = dataclasses.field(default_factory=dict)

    #: Corda only - seconds per vault state scanned on a read.
    scan_cost: float = 0.0

    #: Corda only - flow session/signing time per counterparty signature.
    signing_cost: float = 0.0

    #: Corda only - concurrent flow workers per node.
    flow_workers: int = 1

    #: Corda OS only - overload degradation: service time is multiplied by
    #: ``1 + queue_depth / overload_knee`` (checkpoint pressure). 0 = off.
    overload_knee: float = 0.0

    #: Diem only - mean seconds between validator "spiking" pauses and the
    #: mean pause length (Balster's observation, Section 5.7).
    spike_interval: float = 0.0
    spike_duration: float = 0.0

    def function_multiplier(self, function: str) -> float:
        """Cost multiplier for one IEL function (1.0 when unlisted)."""
        return self.function_cost.get(function, 1.0)


#: Corda OS: every node signs serially, single-threaded flow workers, H2
#: vault reads are linear scans (Section 5.1). Aggregate write ceiling
#: ~5/s; queueing degrades it further through checkpoint overhead.
CORDA_OS = PerformanceProfile(
    system="corda_os",
    admission_cost=0.002,
    execute_cost=0.35,
    signing_cost=0.06,
    scan_cost=0.025,
    flow_workers=1,
    overload_knee=7.3,
    mempool_capacity=None,
    event_emit_cost=0.001,
    function_cost={"DoNothing": 0.35, "CreateAccount": 0.9, "Balance": 1.2},
)

#: Corda Enterprise: parallel signature collection, multithreaded flow
#: workers, faster vault (Section 5.2). Write ceiling ~13/s on KV-Set,
#: up to ~65/s on the no-read benchmarks; stable under overload.
CORDA_ENTERPRISE = PerformanceProfile(
    system="corda_enterprise",
    admission_cost=0.0008,
    execute_cost=1.1,
    signing_cost=0.08,
    scan_cost=0.00035,
    flow_workers=4,
    overload_knee=0.0,
    mempool_capacity=100,
    event_emit_cost=0.0005,
    function_cost={"DoNothing": 0.13, "CreateAccount": 0.15, "Balance": 1.1},
)

#: BitShares: witness assembly cost per transaction dominates; operations
#: inside a transaction are cheap (Section 5.3). 1-op ceiling ~590/s,
#: 100-op transactions easily reach the offered 1600 payloads/s.
BITSHARES = PerformanceProfile(
    system="bitshares",
    admission_cost=0.00008,
    execute_cost=0.00035,
    per_tx_overhead=0.0012,
    block_overhead=0.004,
    event_emit_cost=0.00004,
    mempool_capacity=60_000,
    function_cost={"DoNothing": 0.8, "SendPayment": 1.3, "Balance": 1.1},
)

#: Fabric: endorsement + validation pipeline ceiling ~1450 payloads/s;
#: Raft ordering with 1-second block cutting; the event-delivery path
#:  overflows at RL=1600 (Section 5.4).
FABRIC = PerformanceProfile(
    system="fabric",
    admission_cost=0.00012,
    execute_cost=0.00055,
    per_tx_overhead=0.00008,
    block_overhead=0.003,
    event_emit_cost=0.00006,
    mempool_capacity=120_000,
    event_queue_capacity=12_000,
    function_cost={"DoNothing": 0.8, "SendPayment": 1.0, "Balance": 0.9},
)

#: Quorum: EVM execution ~773/s on empty transactions, ~365/s on state-
#: touching ones; bounded txpool produces the observed losses; proposer
#: tx-selection time against a deep pool causes the blockperiod <= 2 s
#: stall (Section 5.5).
QUORUM = PerformanceProfile(
    system="quorum",
    admission_cost=0.00015,
    execute_cost=0.00118,
    per_tx_overhead=0.0,
    block_overhead=0.004,
    event_emit_cost=0.00008,
    mempool_capacity=4_096,
    function_cost={"DoNothing": 0.5, "SendPayment": 1.05, "Balance": 1.0},
)

#: Sawtooth: heavy per-batch overhead (transaction processor round trips)
#: plus a small bounded pending queue that rejects batches under load
#: (Section 5.6). ~30 batches/s ceiling; admission work steals cycles
#: from publishing under very high load.
SAWTOOTH = PerformanceProfile(
    system="sawtooth",
    admission_cost=0.00055,
    execute_cost=0.0115,
    per_tx_overhead=0.0,
    block_overhead=0.010,
    event_emit_cost=0.0002,
    mempool_capacity=25,  # pending-queue capacity in batches
    function_cost={"DoNothing": 0.8, "SendPayment": 1.15, "Balance": 1.0},
)

#: Diem: ~100 payloads/s execution ceiling, a deep mempool (so confirmed
#: transactions wait ~100 s), heavy queue losses and periodic validator
#: "spiking" pauses (Section 5.7).
DIEM = PerformanceProfile(
    system="diem",
    admission_cost=0.0006,
    execute_cost=0.0095,
    per_tx_overhead=0.0004,
    block_overhead=0.006,
    event_emit_cost=0.0002,
    mempool_capacity=9_000,
    spike_interval=30.0,
    spike_duration=8.0,
    function_cost={"DoNothing": 0.9, "SendPayment": 1.1, "Balance": 1.0},
)

_PROFILES: typing.Dict[str, PerformanceProfile] = {
    profile.system: profile
    for profile in (CORDA_OS, CORDA_ENTERPRISE, BITSHARES, FABRIC, QUORUM, SAWTOOTH, DIEM)
}


def profile_for(system: str) -> PerformanceProfile:
    """The calibrated profile of one system."""
    if system not in _PROFILES:
        raise KeyError(f"no profile for system {system!r}; known: {sorted(_PROFILES)}")
    return _PROFILES[system]


@contextlib.contextmanager
def profile_overrides(
    mapping: typing.Mapping[str, PerformanceProfile]
) -> typing.Iterator[None]:
    """Temporarily replace some systems' profiles (ablation studies)."""
    saved = dict(_PROFILES)
    try:
        _PROFILES.update(mapping)
        yield
    finally:
        _PROFILES.clear()
        _PROFILES.update(saved)


def uniform_profile(system: str) -> PerformanceProfile:
    """A deliberately uncalibrated profile (ablation baseline).

    Every system gets the same generic costs; the ablation bench shows
    that the paper's between-system ordering disappears without
    calibration.
    """
    return PerformanceProfile(system=system)
