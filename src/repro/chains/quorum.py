"""ConsenSys Quorum — Ethereum's account model with Istanbul BFT.

Order-execute (Section 5.5): transactions enter a bounded, fully
gossiped transaction pool; every ``istanbul.blockperiod`` seconds the
rotating IBFT proposer selects transactions from the pool into a block,
the validators run the three-phase IBFT instance, and each validator
executes the block's payloads against its world state on commit.

The paper's headline Quorum finding emerges from the model rather than
being scripted: the proposer's transaction-selection work grows with the
pool depth, and once selecting takes longer than the block period the
proposer ships *empty* blocks while the pool keeps growing — the
permanent liveness failure observed for ``blockperiod <= 2 s`` combined
with a high rate limiter (empty blocks, zero received transactions).
"""

from __future__ import annotations

import collections
import typing

from repro.chains.base import BaseNode, BlockProposal, SystemModel
from repro.consensus.base import Decision, EngineContext
from repro.consensus.ibft import IbftEngine
from repro.net import Message
from repro.sim.stores import Store
from repro.storage import Transaction

#: Seconds of proposer CPU per pooled transaction scanned during block
#: assembly (go-ethereum's pending-sorting path).
TX_SELECTION_COST = 0.0009

#: Fraction of the block period available for executing a block's payloads.
EXECUTION_BUDGET_FRACTION = 0.5

#: Fixed per-block work (assembly, sealing, IBFT bookkeeping) that comes
#: out of the execution budget — why small block periods have sharply
#: lower capacity.
BLOCK_FIXED_OVERHEAD = 0.3

#: Per-consensus-message handling time; IBFT exchanges ~3n messages per
#: validator per block, so capacity falls as validators are added
#: (Section 5.8.2's downward trend).
IBFT_MESSAGE_COST = 0.005


class QuorumValidator(BaseNode):
    """One Quorum validator node."""

    def __init__(self, system: "QuorumSystem", node_id: str) -> None:
        super().__init__(system, node_id)
        self.engine: typing.Optional[IbftEngine] = None
        self._commit_queue: Store = Store(self.sim, name=f"{node_id}-commits")
        self.empty_blocks = 0
        self.sim.spawn(self._commit_loop(), name=f"{node_id}-committer")

    def enqueue_commit(self, decision: Decision) -> None:
        """IBFT decided a block; queue it for execution."""
        self._commit_queue.try_put(decision)

    def _commit_loop(self) -> typing.Generator:
        system = typing.cast("QuorumSystem", self.system)
        while True:
            decision = yield self._commit_queue.get()
            proposal = typing.cast(BlockProposal, decision.proposal)
            if proposal.is_empty:
                self.empty_blocks += 1
                self.seal_and_append(proposal, decision.proposer)
                continue
            yield from self.busy(
                self.profile.block_overhead + self.execution_time(proposal.transactions)
            )
            outcome = self.apply_payloads(proposal.transactions)
            self.seal_and_append(proposal, decision.proposer)
            system.stage_finality(proposal.proposal_id, outcome, self.chain.height)
            system.record_commit(proposal.proposal_id, self.endpoint_id)


class QuorumSystem(SystemModel):
    """A Quorum deployment (Table 4: four validators, nothing else)."""

    name = "quorum"
    engine_prefixes = ("ibft",)
    #: Section 4.4: Quorum needs 180 s to stabilise after start.
    stabilization_time = 180.0

    def default_params(self) -> typing.Dict[str, object]:
        return {
            # Table 6: istanbul.blockperiod, default 1 s, used {1,2,5,10}.
            "istanbul.blockperiod": 1.0,
            # go-ethereum txpool: 4096 executable-slot default.
            "TxPoolCapacity": 4096,
        }

    def make_node(self, node_id: str) -> QuorumValidator:
        return QuorumValidator(self, node_id)

    def build(self) -> None:
        #: The fully gossiped transaction pool (FIFO of Transaction).
        self.txpool: typing.Deque[Transaction] = collections.deque()
        self.pool_rejections = 0
        self.stalled_proposals = 0
        self._stall_latched = False
        for node_id, node in self.nodes.items():
            validator = typing.cast(QuorumValidator, node)
            context = EngineContext(
                sim=self.sim,
                replica_id=node_id,
                peers=self.node_ids,
                send_fn=lambda dst, kind, payload, size, src=node_id: self.network.send(
                    Message(src, dst, kind, payload, size)
                ),
                broadcast_fn=lambda kind, payload, size, src=node_id: self.network.broadcast(
                    src, self.node_ids, kind, payload, size
                ),
                decide_fn=validator.enqueue_commit,
                rng=self.sim.rng.stream(f"ibft:{node_id}"),
            )
            validator.engine = IbftEngine(
                context,
                proposal_factory=lambda height, me=node_id: self._make_proposal(me),
                round_timeout=max(10.0, 2.0 * float(self.params["istanbul.blockperiod"])),
            )

    def start(self) -> None:
        self.started = True
        for node in self.nodes.values():
            validator = typing.cast(QuorumValidator, node)
            assert validator.engine is not None
            validator.engine.start()
            self.sim.spawn(
                self._blockperiod_ticker(validator), name=f"{node.endpoint_id}-ticker"
            )

    def leader_id(self) -> typing.Optional[str]:
        """The proposer of the current (height, round), as the first live
        validator sees it."""
        for node in self.nodes.values():
            engine = typing.cast(QuorumValidator, node).engine
            if engine is not None and not engine.stopped:
                return engine.proposer_for(engine.height, engine.round)
        return None

    def _blockperiod_ticker(self, validator: QuorumValidator) -> typing.Generator:
        period = float(self.params["istanbul.blockperiod"])
        while True:
            yield self.sim.timeout(period)
            assert validator.engine is not None
            validator.engine.maybe_propose()

    # ------------------------------------------------------------------
    # Block assembly

    def _make_proposal(self, proposer_id: str) -> BlockProposal:
        """The IBFT proposer's block-assembly path.

        Returns an empty proposal when transaction selection cannot
        finish within the block period — and once that happens the pool
        processing never recovers (the paper's Section 5.5: transactions
        keep queueing but "the queue is no longer processed"), so the
        stall latches.
        """
        period = float(self.params["istanbul.blockperiod"])
        selection_time = TX_SELECTION_COST * len(self.txpool)
        if self._stall_latched or selection_time > period:
            self._stall_latched = True
            self.stalled_proposals += 1
            return BlockProposal.cut([], self.sim.now)
        node = self.nodes[proposer_id]
        consensus_overhead = IBFT_MESSAGE_COST * 3 * self.spec.node_count
        budget = max(
            0.0,
            period * EXECUTION_BUDGET_FRACTION - BLOCK_FIXED_OVERHEAD - consensus_overhead,
        )
        selected: typing.List[Transaction] = []
        spent = 0.0
        while self.txpool:
            tx = self.txpool[0]
            cost = node.profile.per_tx_overhead + sum(
                node.execute_cost_of(p) for p in tx.payloads
            )
            if spent + cost > budget:
                break
            self.txpool.popleft()
            selected.append(tx)
            spent += cost
        return BlockProposal.cut(selected, self.sim.now)

    # ------------------------------------------------------------------
    # Message routing and submission

    def route_engine_message(self, node: BaseNode, message: Message) -> None:
        engine = typing.cast(QuorumValidator, node).engine
        assert engine is not None
        engine.on_message(message.kind, message.src, message.payload)

    def handle_submit(self, node: BaseNode, message: Message) -> None:
        transaction = typing.cast(Transaction, message.payload)
        self.sim.spawn(self._admit(node, message.src, transaction))

    def _admit(self, node: BaseNode, client_id: str, transaction: Transaction) -> typing.Generator:
        yield from node.busy(self.profile.admission_cost * len(transaction.payloads))
        capacity = int(self.params["TxPoolCapacity"])
        if len(self.txpool) >= capacity:
            self.pool_rejections += 1
            node.reject_client(
                client_id, [p.payload_id for p in transaction.payloads], "txpool full"
            )
            return
        self.remember_owner(transaction.payloads)
        self.txpool.append(transaction)
