"""Diem (formerly Libra) — DiemBFT rounds over a deep shared mempool.

The model reproduces the Section 5.7 behaviour:

* Transactions enter a bounded, gossiped mempool; they stay there until
  committed (dedup by id), so under load the pool pins at capacity and
  admissions are rejected — the paper's large lost-transaction counts.
* The rotating DiemBFT leader pulls up to ``max_block_size`` uncommitted
  transactions per round; commits go through the two-chain rule and each
  validator executes committed blocks serially. Execution plus a heavy
  per-block commit/state-sync overhead caps end-to-end throughput near
  100 payloads/s, and makes small ``max_block_size`` values distinctly
  slower (Table 19: BS=100 underperforms BS=2000).
* Validators "spike": they periodically pause processing (Balster [40]);
  during a pause the paused validator proposes nothing and executes
  nothing, so blocks are not saturated even when the pool is full.
"""

from __future__ import annotations

import collections
import typing

from repro.chains.base import BaseNode, BlockProposal, SystemModel
from repro.consensus.base import Decision, EngineContext
from repro.consensus.diembft import DiemBftEngine
from repro.net import Message
from repro.sim.stores import Store
from repro.storage import Transaction

#: Pacing between chained rounds.
ROUND_INTERVAL = 0.25

#: Heavy per-block commit overhead (executor + state sync + certificates);
#: the reason small max_block_size hurts throughput.
PER_BLOCK_COMMIT_OVERHEAD = 1.9

#: Additional commit overhead per validator beyond the base four
#: (certificate verification and sync fan-out grow with the validator
#: set), producing Section 5.8.2's downward trend.
PER_VALIDATOR_COMMIT_OVERHEAD = 0.08


def commit_overhead(node_count: int) -> float:
    """Per-block commit/state-sync overhead for a validator-set size."""
    extra = max(0, node_count - 4)
    return PER_BLOCK_COMMIT_OVERHEAD * (1.0 + PER_VALIDATOR_COMMIT_OVERHEAD * extra)


class DiemValidator(BaseNode):
    """One Diem validator."""

    def __init__(self, system: "DiemSystem", node_id: str) -> None:
        super().__init__(system, node_id)
        self.engine: typing.Optional[DiemBftEngine] = None
        self._commit_queue: Store = Store(self.sim, name=f"{node_id}-commits")
        self.spiking_until = 0.0
        self.spike_count = 0
        self.sim.spawn(self._commit_loop(), name=f"{node_id}-committer")
        if system.profile.spike_interval > 0:
            self.sim.spawn(self._spike_loop(), name=f"{node_id}-spiker")

    @property
    def is_spiking(self) -> bool:
        """Whether the validator is inside a processing pause."""
        return self.sim.now < self.spiking_until

    def _spike_loop(self) -> typing.Generator:
        rng = self.sim.rng.stream(f"spike:{self.endpoint_id}")
        interval = self.profile.spike_interval
        duration = self.profile.spike_duration
        while True:
            yield self.sim.timeout(rng.expovariate(1.0 / interval))
            self.spiking_until = self.sim.now + rng.uniform(0.5 * duration, 1.5 * duration)
            self.spike_count += 1

    def enqueue_commit(self, decision: Decision) -> None:
        """DiemBFT committed a block; queue it for execution."""
        proposal = decision.proposal
        if proposal is None:
            return  # NIL round
        self._commit_queue.try_put(decision)

    def _commit_loop(self) -> typing.Generator:
        system = typing.cast("DiemSystem", self.system)
        while True:
            decision = yield self._commit_queue.get()
            proposal = typing.cast(BlockProposal, decision.proposal)
            if self.is_spiking:
                # Execution stalls until the pause ends.
                yield self.sim.timeout(max(0.0, self.spiking_until - self.sim.now))
            if proposal.is_empty:
                self.seal_and_append(proposal, decision.proposer)
                continue
            yield from self.busy(
                commit_overhead(self.system.spec.node_count)
                + self.execution_time(proposal.transactions)
            )
            outcome = self.apply_payloads(proposal.transactions)
            self.seal_and_append(proposal, decision.proposer)
            system.release_committed(proposal)
            system.stage_finality(proposal.proposal_id, outcome, self.chain.height)
            system.record_commit(proposal.proposal_id, self.endpoint_id)


class DiemSystem(SystemModel):
    """A Diem deployment (Table 4: four validators)."""

    name = "diem"
    engine_prefixes = ("diem",)
    stabilization_time = 0.0

    def default_params(self) -> typing.Dict[str, object]:
        return {
            # Table 5: max_block_size, default 3000, used {100,500,1000,2000}.
            "max_block_size": 3000,
            # Shared mempool capacity in transactions.
            "MempoolCapacity": 9_000,
        }

    def make_node(self, node_id: str) -> DiemValidator:
        return DiemValidator(self, node_id)

    def build(self) -> None:
        #: Shared mempool: transactions stay until committed.
        self.mempool: "collections.OrderedDict[str, Transaction]" = collections.OrderedDict()
        self._in_flight: typing.Set[str] = set()
        self.pool_rejections = 0
        for node_id, node in self.nodes.items():
            validator = typing.cast(DiemValidator, node)
            context = EngineContext(
                sim=self.sim,
                replica_id=node_id,
                peers=self.node_ids,
                send_fn=lambda dst, kind, payload, size, src=node_id: self.network.send(
                    Message(src, dst, kind, payload, size)
                ),
                broadcast_fn=lambda kind, payload, size, src=node_id: self.network.broadcast(
                    src, self.node_ids, kind, payload, size
                ),
                decide_fn=validator.enqueue_commit,
                rng=self.sim.rng.stream(f"diembft:{node_id}"),
            )
            validator.engine = DiemBftEngine(
                context,
                proposal_factory=lambda round_number, me=node_id: self._make_proposal(me),
                round_interval=ROUND_INTERVAL,
                round_timeout=5.0,
            )

    def start(self) -> None:
        self.started = True
        for node in self.nodes.values():
            engine = typing.cast(DiemValidator, node).engine
            assert engine is not None
            engine.start()

    def leader_id(self) -> typing.Optional[str]:
        """The pacemaker leader of the current round, as the first live
        validator sees it."""
        for node in self.nodes.values():
            engine = typing.cast(DiemValidator, node).engine
            if engine is not None and not engine.stopped:
                return engine.leader_for(engine.current_round)
        return None

    # ------------------------------------------------------------------
    # Block assembly

    def _make_proposal(self, leader_id: str) -> typing.Optional[BlockProposal]:
        """The round leader pulls uncommitted transactions from the pool."""
        validator = typing.cast(DiemValidator, self.nodes[leader_id])
        if validator.is_spiking:
            return None  # paused validators propose NIL rounds
        if len(validator._commit_queue) >= 2:
            # Execution backpressure: the proposal generator stops
            # filling blocks while the executor is behind, letting the
            # pool accumulate into larger blocks.
            return None
        max_block = int(self.params["max_block_size"])
        selected: typing.List[Transaction] = []
        for tx_id, tx in self.mempool.items():
            if tx_id in self._in_flight:
                continue
            selected.append(tx)
            if len(selected) >= max_block:
                break
        if not selected:
            return None
        for tx in selected:
            self._in_flight.add(tx.tx_id)
        return BlockProposal.cut(selected, self.sim.now)

    def release_committed(self, proposal: BlockProposal) -> None:
        """Remove committed transactions from the mempool."""
        for tx in proposal.transactions:
            self.mempool.pop(tx.tx_id, None)
            self._in_flight.discard(tx.tx_id)

    # ------------------------------------------------------------------
    # Message routing and submission

    def route_engine_message(self, node: BaseNode, message: Message) -> None:
        engine = typing.cast(DiemValidator, node).engine
        assert engine is not None
        engine.on_message(message.kind, message.src, message.payload)

    def handle_submit(self, node: BaseNode, message: Message) -> None:
        transaction = typing.cast(Transaction, message.payload)
        self.sim.spawn(self._admit(node, message.src, transaction))

    def _admit(self, node: BaseNode, client_id: str, transaction: Transaction) -> typing.Generator:
        yield from node.busy(self.profile.admission_cost * len(transaction.payloads))
        capacity = int(self.params["MempoolCapacity"])
        if len(self.mempool) >= capacity:
            self.pool_rejections += 1
            node.reject_client(
                client_id, [p.payload_id for p in transaction.payloads], "mempool full"
            )
            return
        self.remember_owner(transaction.payloads)
        self.mempool[transaction.tx_id] = transaction
