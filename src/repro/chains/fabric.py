"""Hyperledger Fabric v2.x — execute-order-validate with Raft ordering.

The model follows the real pipeline (Androulaki et al., EuroSys '18):

1. *Endorsement*: the gateway peer simulates the chaincode against its
   current world state, recording a read/write set per transaction.
2. *Ordering*: endorsed envelopes go to the ordering service — three
   orderer endpoints on servers 1–3 (Table 4) running the real
   :class:`~repro.consensus.raft.RaftEngine`. The Raft leader cuts blocks
   at ``MaxMessageCount`` envelopes or the batch timeout, whichever is
   first.
3. *Validation*: every peer receives delivered blocks, re-checks each
   read set against its world state (MVCC) and appends the block —
   including transactions that failed validation, which are flagged
   invalid but remain on chain (Section 5.4: the paper counts them as
   received).

Known behaviour reproduced by an explicit mechanism: with 16 or more
peers the client event-delivery service breaks down — peers and orderers
keep finalising but clients receive no confirmations (Section 5.8.2).
The paper observed this without isolating a root cause; we model it as
the gateway event service dropping all notifications above that size.
"""

from __future__ import annotations

import collections
import typing

from repro.chains.base import BaseNode, BlockProposal, SystemModel
from repro.consensus.base import Decision, EngineContext
from repro.consensus.raft import RaftEngine
from repro.iel.base import ReadWriteSetAdapter
from repro.net import Endpoint, Message
from repro.sim.kernel import Simulator
from repro.sim.stores import Store
from repro.storage import Transaction, TxStatus

#: Peer count at which the client event service collapses (Section 5.8.2).
EVENT_SERVICE_PEER_LIMIT = 16

#: Number of ordering-service nodes (Table 4: "3 orderers, servers 1-3").
ORDERER_COUNT = 3

#: Flow-control window of the peer -> orderer broadcast stream: at most
#: this many unacknowledged envelopes in flight. Harmless inside the
#: data centre (sub-millisecond acks) but it caps per-peer submission at
#: window/RTT under WAN latency — the paper's 33-40% Fabric drop under
#: netem (Section 5.8.1).
BROADCAST_WINDOW = 6


class FabricEnvelope:
    """An endorsed transaction on its way to the orderers."""

    __slots__ = ("transaction", "rwset", "endorsed_at")

    def __init__(self, transaction: Transaction, rwset, endorsed_at: float) -> None:
        self.transaction = transaction
        self.rwset = rwset
        self.endorsed_at = endorsed_at

    @property
    def size_bytes(self) -> int:
        return self.transaction.size_bytes + 128


class FabricPeer(BaseNode):
    """An endorsing/committing peer."""

    def __init__(self, system: "FabricSystem", node_id: str) -> None:
        super().__init__(system, node_id)
        self.in_flight = 0
        self._delivery_queue: Store = Store(self.sim, name=f"{node_id}-deliver")
        self._stream_inflight = 0
        self._stream_backlog: typing.Deque[FabricEnvelope] = collections.deque()
        self._seen_proposals: typing.Set[str] = set()
        self._next_deliver_seq = 0
        self.sim.spawn(self._commit_loop(), name=f"{node_id}-committer")

    def forward_envelope(self, envelope: FabricEnvelope) -> None:
        """Push an envelope onto the flow-controlled orderer stream."""
        if self._stream_inflight < BROADCAST_WINDOW:
            self._stream_send(envelope)
        else:
            self._stream_backlog.append(envelope)

    def _stream_send(self, envelope: FabricEnvelope) -> None:
        system = typing.cast("FabricSystem", self.system)
        target = system.stream_target_for(self.endpoint_id)
        if target is None:
            return  # whole ordering service down; the envelope is lost
        self._stream_inflight += 1
        self.send(target, "fabric/envelope", envelope, size_bytes=envelope.size_bytes)

    def reset_stream(self) -> None:
        """The broadcast stream's orderer died: reconnect.

        Unacknowledged envelopes were on the dead orderer's side of the
        stream and are lost; the backlog re-streams to a live orderer.
        """
        self._stream_inflight = 0
        while self._stream_backlog and self._stream_inflight < BROADCAST_WINDOW:
            self._stream_send(self._stream_backlog.popleft())

    def on_stream_ack(self) -> None:
        """The orderer acknowledged one envelope; release the window."""
        self._stream_inflight -= 1
        if self._stream_backlog:
            self._stream_send(self._stream_backlog.popleft())

    def endorse(self, transaction: Transaction) -> typing.Generator:
        """Simulate the chaincode, producing the envelope (a process body)."""
        cost = self.profile.admission_cost + sum(
            self.execute_cost_of(payload) for payload in transaction.payloads
        )
        yield from self.busy(cost)
        adapter = ReadWriteSetAdapter(self.state)
        for payload in transaction.payloads:
            self.iel.execute(payload, adapter)
        return FabricEnvelope(transaction, adapter.rwset, self.sim.now)

    def enqueue_block(self, seq: int, proposal: BlockProposal, proposer: str) -> None:
        """A block arrived from the ordering service.

        The deliver stream is sequenced: ``seq`` is the block's position
        in the ordering service's output. Receiving block ``seq`` while
        an earlier one is still outstanding means deliveries were lost —
        the peer's link was cut by a partition, or its orderer died after
        committing but before delivering. The real deliver service reads
        blocks by number from the peer's ledger height, so the gap is
        filled from the orderers' durable block log before the new block
        is admitted; without this the peer would seal later blocks at its
        own (lower) heights and fork its ledger.

        Duplicates are dropped: after an orderer failover, a peer
        restart, or a gap fill racing an in-flight delivery, the same
        block can be offered twice.
        """
        if seq > self._next_deliver_seq:
            system = typing.cast("FabricSystem", self.system)
            for missed_seq in range(self._next_deliver_seq, seq):
                missed, missed_proposer = system.block_log[missed_seq]
                self._admit(missed_seq, missed, missed_proposer)
        self._admit(seq, proposal, proposer)

    def _admit(self, seq: int, proposal: BlockProposal, proposer: str) -> None:
        if proposal.proposal_id in self._seen_proposals:
            return
        self._seen_proposals.add(proposal.proposal_id)
        self._next_deliver_seq = seq + 1
        self._delivery_queue.try_put((proposal, proposer))

    def _commit_loop(self) -> typing.Generator:
        system = typing.cast("FabricSystem", self.system)
        while True:
            proposal, proposer = yield self._delivery_queue.get()
            validation_cost = self.profile.block_overhead + self.execution_time(
                proposal.transactions
            )
            yield from self.busy(validation_cost)
            outcome: typing.Dict[str, typing.Tuple[TxStatus, str]] = {}
            rwsets = proposal.metadata["rwsets"]
            for tx in proposal.transactions:
                applied = self.state.apply(rwsets[tx.tx_id])
                status = TxStatus.COMMITTED if applied else TxStatus.INVALIDATED
                detail = "" if applied else "mvcc read conflict"
                for payload in tx.payloads:
                    outcome[payload.payload_id] = (status, detail)
                    if applied:
                        self.executed_payloads += 1
            checker = self.sim.checker
            if checker.enabled:
                checker.on_apply(self.endpoint_id, outcome)
            self.seal_and_append(proposal, proposer)
            system.stage_finality(proposal.proposal_id, outcome, self.chain.height)
            system.record_commit(proposal.proposal_id, self.endpoint_id)


class FabricOrderer(Endpoint):
    """One ordering-service node.

    Runs in one of two modes (Section 5.4 compares them): ``raft``
    (the default) embeds a Raft replica and the leader cuts blocks;
    ``kafka`` publishes envelopes plus time-to-cut markers to the broker
    and every orderer cuts identical blocks from the totally ordered
    stream.
    """

    def __init__(self, system: "FabricSystem", orderer_id: str) -> None:
        super().__init__(orderer_id)
        self.system = system
        self.sim: Simulator = system.sim
        self.engine: typing.Optional[RaftEngine] = None
        self.pending: typing.List[FabricEnvelope] = []
        self.blocks_cut = 0
        self.crashed = False
        # Kafka mode state: the consumed stream's cursor.
        self._kafka_pending: typing.List[FabricEnvelope] = []
        self._kafka_first_offset = 0
        self._kafka_last_ttc = -1
        #: Next broker offset this consumer expects; a restarted orderer
        #: replays the log from here.
        self._kafka_consumed = 0
        self._kafka_future: typing.Dict[int, typing.Tuple[str, object]] = {}

    @property
    def uses_kafka(self) -> bool:
        return self.system.ordering_service == "kafka"

    def on_message(self, message: Message) -> None:
        if message.kind.startswith("raft/"):
            assert self.engine is not None
            self.engine.on_message(message.kind, message.src, message.payload)
        elif message.kind == "fabric/envelope":
            if message.src in self.system.nodes:
                # Acknowledge the peer's stream slot (relays between
                # orderers are not flow controlled).
                self.send(message.src, "fabric/envelope_ack", None, size_bytes=32)
            self._accept_envelope(message.payload)
        else:
            raise AssertionError(f"orderer got unexpected {message.kind!r}")

    # ------------------------------------------------------------------
    # Raft mode

    def _accept_envelope(self, envelope: FabricEnvelope) -> None:
        if self.uses_kafka:
            assert self.system.broker is not None
            self.system.broker.publish(("envelope", envelope))
            return
        assert self.engine is not None
        if not self.engine.is_leader:
            leader = self.engine.leader_id
            if leader and leader != self.endpoint_id:
                # Relay to the known leader.
                self.send(leader, "fabric/envelope", envelope, size_bytes=envelope.size_bytes)
            else:
                # No leader known (election in progress): hold briefly
                # and retry, as the real broadcast client reconnects.
                self.sim.schedule(0.1, lambda: self._accept_envelope(envelope))
            return
        self.pending.append(envelope)
        max_count = int(self.system.params["MaxMessageCount"])
        if len(self.pending) >= max_count:
            self.cut_block()

    def cut_block(self) -> None:
        """Form a block from pending envelopes and hand it to Raft."""
        assert self.engine is not None
        if not self.pending or not self.engine.is_leader:
            return
        max_count = int(self.system.params["MaxMessageCount"])
        batch, self.pending = self.pending[:max_count], self.pending[max_count:]
        proposal = BlockProposal.cut([e.transaction for e in batch], self.sim.now)
        proposal.metadata["rwsets"] = {e.transaction.tx_id: e.rwset for e in batch}
        self.blocks_cut += 1
        self.engine.submit_proposal(proposal)

    def batch_timer(self) -> typing.Generator:
        """Drive block cutting every BatchTimeout seconds.

        Raft mode cuts locally on the leader; Kafka mode publishes a
        time-to-cut marker so all orderers cut at the same log position.
        """
        timeout = float(self.system.params["BatchTimeout"])
        while True:
            yield self.sim.timeout(timeout)
            if self.uses_kafka:
                assert self.system.broker is not None
                if self._kafka_pending:
                    self.system.broker.publish(("ttc", self.endpoint_id))
            else:
                self.cut_block()

    def on_decision(self, decision: Decision) -> None:
        """Raft committed a block: deliver it to this orderer's peers."""
        self._deliver(typing.cast(BlockProposal, decision.proposal), decision.proposer)

    def _deliver(self, proposal: BlockProposal, proposer: str) -> None:
        seq = self.system.note_block(proposal, proposer)
        for peer_id in self.system.peers_of_orderer(self.endpoint_id):
            self.send(
                peer_id,
                "fabric/deliver",
                (seq, proposal, proposer),
                size_bytes=proposal.size_bytes,
            )

    # ------------------------------------------------------------------
    # Kafka mode

    def on_kafka_message(self, offset: int, message: typing.Tuple[str, object]) -> None:
        """Consume one totally ordered broker message.

        Cutting is a pure function of the log, so every orderer cuts the
        identical block sequence with identical deterministic ids. A
        crashed orderer consumes nothing (its cursor stays put); offsets
        ahead of the cursor are buffered so a restart's replay and live
        deliveries interleave without reordering the stream.
        """
        if self.crashed or offset < self._kafka_consumed:
            return
        if offset > self._kafka_consumed:
            self._kafka_future[offset] = message
            return
        self._consume_kafka(offset, message)
        while self._kafka_consumed in self._kafka_future:
            buffered_offset = self._kafka_consumed
            self._consume_kafka(buffered_offset, self._kafka_future.pop(buffered_offset))

    def _consume_kafka(self, offset: int, message: typing.Tuple[str, object]) -> None:
        self._kafka_consumed = offset + 1
        kind, payload = message
        if kind == "envelope":
            if not self._kafka_pending:
                self._kafka_first_offset = offset
            self._kafka_pending.append(typing.cast(FabricEnvelope, payload))
            if len(self._kafka_pending) >= int(self.system.params["MaxMessageCount"]):
                self._kafka_cut(offset)
        elif kind == "ttc":
            # Only the first marker after the last cut triggers; later
            # duplicates from other orderers' timers are no-ops.
            if self._kafka_pending and offset > self._kafka_last_ttc:
                self._kafka_cut(offset)
            self._kafka_last_ttc = offset

    def _kafka_cut(self, offset: int) -> None:
        batch, self._kafka_pending = self._kafka_pending, []
        proposal = BlockProposal.cut(
            [e.transaction for e in batch],
            self.sim.now,
            proposal_id=f"kafka-{self._kafka_first_offset}-{offset}",
        )
        proposal.metadata["rwsets"] = {e.transaction.tx_id: e.rwset for e in batch}
        self.blocks_cut += 1
        # The proposer must be deterministic across orderers or the
        # sealed blocks would hash differently on different peers.
        self._deliver(proposal, "ordering-service")


class FabricSystem(SystemModel):
    """A Fabric deployment: peers, orderers, Raft, MVCC validation."""

    name = "fabric"
    engine_prefixes = ()  # peers never receive raw consensus traffic
    stabilization_time = 0.0

    def default_params(self) -> typing.Dict[str, object]:
        return {
            # Table 5: default 500, evaluated {100, 500, 1000, 2000}.
            "MaxMessageCount": 500,
            # Fabric's BatchTimeout; clients observe a block event every
            # second in the paper's runs (Section 5.4).
            "BatchTimeout": 1.0,
            # In-flight endorsement limit per peer.
            "EndorsementBacklog": 30_000,
            # "raft" (the paper's main runs) or "kafka" (Section 5.4's
            # comparison point).
            "OrderingService": "raft",
        }

    @property
    def ordering_service(self) -> str:
        """Which ordering backend this deployment runs."""
        service = str(self.params["OrderingService"])
        if service not in ("raft", "kafka"):
            raise ValueError(f"unknown OrderingService {service!r}")
        return service

    def make_node(self, node_id: str) -> FabricPeer:
        return FabricPeer(self, node_id)

    def build(self) -> None:
        from repro.consensus.kafka import KafkaBroker

        self.orderer_ids = [f"{self.name}-orderer{i}" for i in range(ORDERER_COUNT)]
        self.orderers: typing.Dict[str, FabricOrderer] = {}
        self.broker: typing.Optional[KafkaBroker] = None
        for index, orderer_id in enumerate(self.orderer_ids):
            orderer = FabricOrderer(self, orderer_id)
            # Orderers live on servers 1..3 (hosts 0..2), Table 4.
            host = self.server_hosts[index % len(self.server_hosts)]
            self.network.attach(orderer, host)
            self.orderers[orderer_id] = orderer
        if self.ordering_service == "kafka":
            self.broker = KafkaBroker(self.sim, name=f"{self.name}-kafka")
            for orderer in self.orderers.values():
                self.broker.subscribe(orderer.on_kafka_message)
        else:
            for orderer_id, orderer in self.orderers.items():
                context = EngineContext(
                    sim=self.sim,
                    replica_id=orderer_id,
                    peers=self.orderer_ids,
                    send_fn=self._engine_sender(orderer_id),
                    broadcast_fn=self._engine_broadcaster(orderer_id, self.orderer_ids),
                    decide_fn=orderer.on_decision,
                    rng=self.sim.rng.stream(f"raft:{orderer_id}"),
                )
                orderer.engine = RaftEngine(context)
        self._event_service_broken = self.spec.node_count >= EVENT_SERVICE_PEER_LIMIT
        #: Every distinct block the ordering service delivered, in order.
        #: A restarted peer's deliver stream resumes from here (the
        #: ledger is durable on the orderers).
        self.block_log: typing.List[typing.Tuple[BlockProposal, str]] = []
        self._block_log_index: typing.Dict[str, int] = {}

    def _engine_sender(self, src: str):
        def sender(dst: str, kind: str, payload: object, size_bytes: int) -> None:
            self.network.send(Message(src, dst, kind, payload, size_bytes))

        return sender

    def _engine_broadcaster(self, src: str, peers: typing.Sequence[str]):
        def poster(kind: str, payload: object, size_bytes: int) -> None:
            self.network.broadcast(src, peers, kind, payload, size_bytes)

        return poster

    def start(self) -> None:
        self.started = True
        for orderer in self.orderers.values():
            if orderer.engine is not None:
                orderer.engine.start()
            self.sim.spawn(orderer.batch_timer(), name=f"{orderer.endpoint_id}-cutter")

    # ------------------------------------------------------------------
    # Topology helpers

    def note_block(self, proposal: BlockProposal, proposer: str) -> int:
        """Record one delivered block and return its stream sequence
        number (Kafka mode delivers per orderer, so the same block id
        arrives up to three times and keeps its first number)."""
        seq = self._block_log_index.get(proposal.proposal_id)
        if seq is None:
            seq = len(self.block_log)
            self._block_log_index[proposal.proposal_id] = seq
            self.block_log.append((proposal, proposer))
        return seq

    def live_orderer_ids(self) -> typing.List[str]:
        """Orderers currently able to serve deliver streams."""
        return [
            orderer_id
            for orderer_id, orderer in self.orderers.items()
            if not orderer.crashed
            and (orderer.engine is None or not orderer.engine.stopped)
        ]

    def stream_target_for(self, node_id: str) -> typing.Optional[str]:
        """The orderer a peer's broadcast stream should go to right now.

        Prefer the Raft leader, fall back to the peer's home orderer,
        then to any live orderer; ``None`` when the whole ordering
        service is down.
        """
        leader = self.leader_orderer_id()
        if leader is not None and not self.orderers[leader].crashed:
            return leader
        home = self.orderer_of_peer(node_id)
        if not self.orderers[home].crashed:
            return home
        live = self.live_orderer_ids()
        return live[0] if live else None

    def peers_of_orderer(self, orderer_id: str) -> typing.List[str]:
        """The peers this orderer delivers blocks to (round-robin).

        Peers whose orderer crashed reconnect to a live one, so the
        partition is computed over the live set.
        """
        live = self.live_orderer_ids()
        if orderer_id not in live:
            return []
        index = live.index(orderer_id)
        return [
            node_id
            for position, node_id in enumerate(self.node_ids)
            if position % len(live) == index
        ]

    def orderer_of_peer(self, node_id: str) -> str:
        """The orderer a peer forwards envelopes to."""
        position = self.node_ids.index(node_id)
        return self.orderer_ids[position % len(self.orderer_ids)]

    def leader_orderer_id(self) -> typing.Optional[str]:
        """The current Raft leader among the orderers (None during election)."""
        for orderer_id, orderer in self.orderers.items():
            if orderer.engine is not None and orderer.engine.is_leader:
                return orderer_id
        return None

    # ------------------------------------------------------------------
    # Fault lifecycle

    def engine_of(self, endpoint_id: str) -> typing.Optional[object]:
        orderer = self.orderers.get(endpoint_id)
        if orderer is not None:
            return orderer.engine
        return super().engine_of(endpoint_id)

    def leader_id(self) -> typing.Optional[str]:
        """The coordinating endpoint: the Raft leader orderer (Kafka mode
        has no leader; the first live orderer stands in)."""
        if self.ordering_service == "kafka":
            live = self.live_orderer_ids()
            return live[0] if live else None
        return self.leader_orderer_id()

    def _post_crash(self, endpoint_id: str) -> None:
        orderer = self.orderers.get(endpoint_id)
        if orderer is None:
            return
        orderer.crashed = True
        # The crashed orderer's in-memory envelope queue is gone (Kafka
        # mode keeps _kafka_pending: it is recomputed from the durable
        # broker log, which the restart replay re-reads).
        orderer.pending.clear()
        # Peers' broadcast streams into the dead orderer break; they
        # reconnect to a live one, losing unacked envelopes.
        for node in self.nodes.values():
            typing.cast(FabricPeer, node).reset_stream()

    def _post_restart(self, endpoint_id: str) -> None:
        orderer = self.orderers.get(endpoint_id)
        if orderer is not None:
            orderer.crashed = False
            if self.broker is not None:
                # Resume consuming the broker log from the crash point.
                self.broker.replay(orderer._kafka_consumed, orderer.on_kafka_message)
            return
        peer = typing.cast(FabricPeer, self.nodes.get(endpoint_id))
        if peer is not None:
            # The deliver stream resumes from the ledger: blocks the peer
            # missed while down are re-offered (duplicates are filtered).
            for seq, (proposal, proposer) in enumerate(self.block_log):
                peer.enqueue_block(seq, proposal, proposer)

    # ------------------------------------------------------------------
    # Submission path

    def handle_submit(self, node: BaseNode, message: Message) -> None:
        peer = typing.cast(FabricPeer, node)
        transaction = typing.cast(Transaction, message.payload)
        if peer.in_flight >= int(self.params["EndorsementBacklog"]):
            peer.reject_client(
                message.src,
                [p.payload_id for p in transaction.payloads],
                "endorsement backlog full",
            )
            return
        self.remember_owner(transaction.payloads)
        peer.in_flight += 1
        self.sim.spawn(self._endorse_and_forward(peer, transaction))

    def _endorse_and_forward(self, peer: FabricPeer, transaction: Transaction) -> typing.Generator:
        envelope = yield from peer.endorse(transaction)
        peer.in_flight -= 1
        peer.forward_envelope(envelope)

    def handle_node_message(self, node: BaseNode, message: Message) -> None:
        if message.kind == "fabric/deliver":
            seq, proposal, proposer = message.payload
            typing.cast(FabricPeer, node).enqueue_block(seq, proposal, proposer)
        elif message.kind == "fabric/envelope_ack":
            typing.cast(FabricPeer, node).on_stream_ack()
        else:
            super().handle_node_message(node, message)

    # ------------------------------------------------------------------
    # The >=16-peer event-service failure (Section 5.8.2)

    def _on_final(self, key: str, commit_time: float) -> None:
        if self._event_service_broken:
            outcome = self._pending_final.pop(key, None)
            self._pending_height.pop(key, None)
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.end(("finality", self.name, key), at=commit_time, notified=False)
            if outcome:
                gateway_ids = set(self.subscriptions.values())
                for gateway_id in gateway_ids:
                    self.nodes[gateway_id].dropped_notifications += len(outcome)
            return
        super()._on_final(key, commit_time)
