"""Hyperledger Sawtooth — PBFT consensus, atomic batches, backpressure.

The model follows the architecture the paper exercises (Section 5.6):

* Clients submit atomic *batches* of 1..100 transactions; if one
  transaction fails, the whole batch is rejected and none of it reaches
  a block.
* Every validator keeps a bounded pending queue; when it is too full,
  new batches are rejected outright and must be re-sent — the dominant
  source of the paper's lost transactions.
* Batches gossip to all validators, and each validator pays admission
  work per payload. Under very high load this admission work starves
  the publisher, which is why Sawtooth's throughput *drops* as the rate
  limiter rises (66.7 MTPS at RL=200 vs ~14 at RL=1600).
* The PBFT primary publishes a block every
  ``sawtooth.consensus.pbft.block_publishing_delay`` seconds; building a
  block requires executing its batches (the state root goes into the
  block header), and the other validators re-execute on commit.

Known behaviour reproduced by an explicit mechanism: with 16 or more
validators the paper finds all benchmarks fail with every transaction
stuck pending on the nodes (Section 5.8.2); the model freezes block
publishing at that size.
"""

from __future__ import annotations

import collections
import typing

from repro.chains.base import BaseNode, BlockProposal, SystemModel
from repro.consensus.base import Decision, EngineContext
from repro.consensus.pbft import PbftEngine
from repro.net import Message
from repro.sim.stores import Store
from repro.storage import Batch, Transaction, TxStatus

#: Validator count at which the paper observes every transaction stuck in
#: the pending state (Section 5.8.2).
SCALE_STALL_NODE_LIMIT = 16

#: Maximum transactions the candidate block accumulates before the
#: executor pauses (blocks are "never saturated" in the paper; the cap
#: exists only as a runaway guard and is never the binding constraint).
MAX_CANDIDATE_TRANSACTIONS = 5000

#: Per-batch handling overhead (transaction-processor round trips,
#: signature checks): the reason one-transaction batches top out near
#: 27 batches/s while 100-transaction batches reach ~100 payloads/s.
BATCH_OVERHEAD = 0.0255


class SawtoothValidator(BaseNode):
    """One Sawtooth validator."""

    def __init__(self, system: "SawtoothSystem", node_id: str) -> None:
        super().__init__(system, node_id)
        self.engine: typing.Optional[PbftEngine] = None
        self._commit_queue: Store = Store(self.sim, name=f"{node_id}-commits")
        self.queue_rejections = 0
        #: Executed-but-unpublished transactions (the candidate block).
        self.candidate_txs: typing.List[Transaction] = []
        self.candidate_outcome: typing.Dict[str, typing.Tuple[TxStatus, str]] = {}
        self.sim.spawn(self._commit_loop(), name=f"{node_id}-committer")

    def enqueue_commit(self, decision: Decision) -> None:
        """PBFT decided a block; queue it for (re-)execution."""
        self._commit_queue.try_put(decision)

    def _commit_loop(self) -> typing.Generator:
        system = typing.cast("SawtoothSystem", self.system)
        while True:
            decision = yield self._commit_queue.get()
            proposal = typing.cast(BlockProposal, decision.proposal)
            is_builder = decision.proposer == self.endpoint_id
            if not is_builder:
                # The builder already executed during publishing; every
                # other validator re-executes to verify the state root.
                yield from self.busy(
                    self.profile.block_overhead + self.execution_time(proposal.transactions)
                )
                self.apply_payloads(proposal.transactions)
            self.seal_and_append(proposal, decision.proposer)
            system.record_commit(proposal.proposal_id, self.endpoint_id)


class SawtoothSystem(SystemModel):
    """A Sawtooth deployment (Table 4: four validators)."""

    name = "sawtooth"
    engine_prefixes = ("pbft",)
    #: Section 4.4: Sawtooth needs 60 s to stabilise after start.
    stabilization_time = 60.0

    def default_params(self) -> typing.Dict[str, object]:
        return {
            # Table 6: block_publishing_delay, default 1 s, used {1,2,5,10}.
            "block_publishing_delay": 1.0,
            # Pending-queue capacity in batches (backpressure threshold).
            "PendingQueueCapacity": 25,
        }

    def make_node(self, node_id: str) -> SawtoothValidator:
        return SawtoothValidator(self, node_id)

    def build(self) -> None:
        #: Shared (fully gossiped) pending batch queue.
        self.pending: typing.Deque[Batch] = collections.deque()
        self._scale_stalled = self.spec.node_count >= SCALE_STALL_NODE_LIMIT
        self.discarded_batches = 0
        for node_id, node in self.nodes.items():
            validator = typing.cast(SawtoothValidator, node)
            context = EngineContext(
                sim=self.sim,
                replica_id=node_id,
                peers=self.node_ids,
                send_fn=lambda dst, kind, payload, size, src=node_id: self.network.send(
                    Message(src, dst, kind, payload, size)
                ),
                broadcast_fn=lambda kind, payload, size, src=node_id: self.network.broadcast(
                    src, self.node_ids, kind, payload, size
                ),
                decide_fn=validator.enqueue_commit,
                rng=self.sim.rng.stream(f"pbft:{node_id}"),
            )
            validator.engine = PbftEngine(context, progress_timeout=10.0)

    def start(self) -> None:
        self.started = True
        for node in self.nodes.values():
            validator = typing.cast(SawtoothValidator, node)
            self.sim.spawn(self._executor(validator), name=f"{node.endpoint_id}-executor")
            self.sim.spawn(self._publisher(validator), name=f"{node.endpoint_id}-publisher")

    def leader_id(self) -> typing.Optional[str]:
        """The PBFT primary of the current view, as the first live
        validator sees it."""
        for node in self.nodes.values():
            engine = typing.cast(SawtoothValidator, node).engine
            if engine is not None and not engine.stopped:
                return engine.primary_id
        return None

    def _executor(self, validator: SawtoothValidator) -> typing.Generator:
        """The primary's batch pipeline: execute pending batches one at a
        time into the candidate block (the state root must be known
        before publishing, so execution gates block content)."""
        while True:
            engine = validator.engine
            assert engine is not None
            if (
                self._scale_stalled
                or not engine.is_primary
                or not self.pending
                or len(validator.candidate_txs) >= MAX_CANDIDATE_TRANSACTIONS
            ):
                yield self.sim.timeout(0.05)
                continue
            batch = self.pending.popleft()
            yield from validator.busy(
                BATCH_OVERHEAD + validator.execution_time(batch.transactions)
            )
            ok, outcome = validator.try_apply_batch(batch.transactions)
            if not ok:
                # Atomic batch: nothing from it enters a block, and the
                # clients are never notified (lost transactions).
                self.discarded_batches += 1
                continue
            validator.candidate_txs.extend(batch.transactions)
            validator.candidate_outcome.update(outcome)

    def _publisher(self, validator: SawtoothValidator) -> typing.Generator:
        """Publish the candidate block every block_publishing_delay."""
        delay = float(self.params["block_publishing_delay"])
        while True:
            yield self.sim.timeout(delay)
            engine = validator.engine
            assert engine is not None
            if self._scale_stalled:
                continue  # Section 5.8.2: everything stays pending
            if not engine.is_primary:
                if self.pending:
                    engine.note_pending_work()
                continue
            if not validator.candidate_txs:
                continue
            proposal = BlockProposal.cut(validator.candidate_txs, self.sim.now)
            self.stage_finality(proposal.proposal_id, dict(validator.candidate_outcome), None)
            validator.candidate_txs = []
            validator.candidate_outcome = {}
            yield from validator.busy(self.profile.block_overhead)
            engine.submit_proposal(proposal)

    # ------------------------------------------------------------------
    # Message routing and submission

    def route_engine_message(self, node: BaseNode, message: Message) -> None:
        engine = typing.cast(SawtoothValidator, node).engine
        assert engine is not None
        engine.on_message(message.kind, message.src, message.payload)

    def handle_node_message(self, node: BaseNode, message: Message) -> None:
        if message.kind == "sawtooth/gossip":
            batch = typing.cast(Batch, message.payload)
            self.sim.spawn(self._charge_gossip(node, batch))
        else:
            super().handle_node_message(node, message)

    def _charge_gossip(self, node: BaseNode, batch: Batch) -> typing.Generator:
        yield from node.busy(self.profile.admission_cost * batch.payload_count)
        # A gossiped batch sits in this validator's own queue: if the
        # primary orders nothing within the progress timeout (dead or
        # unreachable primary), this backup votes a view change. The
        # shared pending deque can't signal this — an isolated primary
        # keeps draining it, leaving the backups none the wiser.
        engine = typing.cast(SawtoothValidator, node).engine
        if engine is not None and not engine.stopped and not engine.is_primary:
            # Only under fault injection: with a slow block publishing
            # delay the backups' timers would otherwise fire on healthy
            # queued work and thrash the view, perturbing the calibrated
            # fault-free schedules.
            if self.fault_mode and not self._scale_stalled:
                engine.note_pending_work()

    def handle_submit(self, node: BaseNode, message: Message) -> None:
        batch = typing.cast(Batch, message.payload)
        self.sim.spawn(self._admit(node, message.src, batch))

    def _admit(self, node: BaseNode, client_id: str, batch: Batch) -> typing.Generator:
        # Deserialisation/signature work happens before the backpressure
        # decision, and the batch has already gossiped by then — so every
        # validator pays admission CPU for every *offered* payload. This
        # contention is what collapses Sawtooth's throughput at high rate
        # limiters (Section 5.6: 66.7 MTPS at RL=200 vs ~14 at RL=1600).
        self.network.broadcast(
            node.endpoint_id, self.node_ids, "sawtooth/gossip", batch,
            size_bytes=batch.size_bytes,
        )
        yield from node.busy(self.profile.admission_cost * batch.payload_count)
        validator = typing.cast(SawtoothValidator, node)
        capacity = int(self.params["PendingQueueCapacity"])
        if len(self.pending) >= capacity:
            validator.queue_rejections += 1
            payload_ids = [
                p.payload_id for tx in batch.transactions for p in tx.payloads
            ]
            node.reject_client(client_id, payload_ids, "pending queue full")
            return
        for tx in batch.transactions:
            self.remember_owner(tx.payloads)
        self.pending.append(batch)
