"""The seven blockchain system models.

Each module builds one system as a set of node processes over the
simulated network, running its real consensus message flow plus a
calibrated cost model (:mod:`repro.chains.profiles`). All models expose
the uniform deployment API of :mod:`repro.chains.base`, which is what the
COCONUT client layer drives.
"""

from repro.chains.base import (
    BlockProposal,
    ClientReject,
    DeploymentSpec,
    FinalityTracker,
    SystemModel,
)
from repro.chains.bitshares import BitSharesSystem
from repro.chains.corda_enterprise import CordaEnterpriseSystem
from repro.chains.corda_os import CordaOsSystem
from repro.chains.diem import DiemSystem
from repro.chains.fabric import FabricSystem
from repro.chains.profiles import PerformanceProfile, profile_for
from repro.chains.quorum import QuorumSystem
from repro.chains.registry import SYSTEM_NAMES, create_system
from repro.chains.sawtooth import SawtoothSystem

__all__ = [
    "BitSharesSystem",
    "BlockProposal",
    "ClientReject",
    "CordaEnterpriseSystem",
    "CordaOsSystem",
    "DeploymentSpec",
    "DiemSystem",
    "FabricSystem",
    "FinalityTracker",
    "PerformanceProfile",
    "QuorumSystem",
    "SYSTEM_NAMES",
    "SawtoothSystem",
    "SystemModel",
    "create_system",
    "profile_for",
]
