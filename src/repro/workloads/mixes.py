"""Operation mixes: per-payload function choice inside one phase.

A mix replaces a phase's single repeated function with a weighted draw
over the IEL's functions (e.g. 90/10 Get/Set, or a read-modify-write
share via KeyValue's ``Rmw``). Read-type operations need identifiers
that already exist; when a draw lands on one before the client has
written anything, the sampler falls back to the phase's write
operation so the unit never issues a guaranteed-failing payload.
"""

from __future__ import annotations

import bisect
import itertools
import random
import typing

from repro.workloads.spec import Mix

#: The functions a mix may reference, per IEL.
_ALLOWED: typing.Dict[str, typing.Tuple[str, ...]] = {
    "DoNothing": ("DoNothing",),
    "KeyValue": ("Set", "Get", "Rmw"),
    "BankingApp": ("CreateAccount", "SendPayment", "Balance"),
}

#: Operations that only make sense once identifiers exist, and the
#: write operation each falls back to on an empty history.
READ_FALLBACK: typing.Dict[str, str] = {
    "Get": "Set",
    "Rmw": "Rmw",  # Rmw upserts: it needs no history.
    "Balance": "CreateAccount",
    "SendPayment": "CreateAccount",
}


def allowed_operations(iel: str) -> typing.Tuple[str, ...]:
    """The operation names a mix may use for one IEL."""
    if iel not in _ALLOWED:
        raise ValueError(f"unknown IEL {iel!r}; known: {sorted(_ALLOWED)}")
    return _ALLOWED[iel]


class MixSampler:
    """Weighted draw over a mix's operations via one RNG stream."""

    def __init__(self, mix: Mix) -> None:
        if not mix:
            raise ValueError("a mix needs at least one operation")
        self.operations = [function for function, __ in mix]
        weights = [weight for __, weight in mix]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> str:
        point = rng.random() * self._total
        return self.operations[
            min(len(self.operations) - 1, bisect.bisect_left(self._cumulative, point))
        ]
