"""repro.workloads — declarative workload modeling for COCONUT runs.

A :class:`WorkloadSpec` describes *how* load is offered, orthogonally to
*how much* (``BenchmarkConfig.rate_limit``): the arrival process per
workload thread, the key/account access distribution, the per-phase
operation mix, and optional multi-phase scenario overrides. Specs are
plain JSON documents (``coconut run --workload plan.json``) mirroring
the fault-plan design, and all randomness draws from dedicated
``workloads/...`` RNG streams so adding a spec never perturbs the
simulation, fault, or any other stream. The default spec reproduces the
pre-subsystem generator byte for byte.
"""

from repro.workloads.access import (
    HotspotSampler,
    Sampler,
    UniformSampler,
    ZipfianSampler,
    build_sampler,
)
from repro.workloads.arrivals import (
    BurstSchedule,
    ConstantSchedule,
    PoissonSchedule,
    RampSchedule,
    ReplaySchedule,
    Schedule,
    build_schedule,
)
from repro.workloads.mixes import READ_FALLBACK, MixSampler, allowed_operations
from repro.workloads.replay import replay_spec_from_jsonl, replay_times
from repro.workloads.spec import (
    DEFAULT_WORKLOAD,
    AccessSpec,
    ArrivalSpec,
    Mix,
    PhaseOverride,
    ResolvedPhase,
    WorkloadSpec,
    normalize_mix,
)

__all__ = [
    "AccessSpec",
    "ArrivalSpec",
    "BurstSchedule",
    "ConstantSchedule",
    "DEFAULT_WORKLOAD",
    "HotspotSampler",
    "Mix",
    "MixSampler",
    "PhaseOverride",
    "PoissonSchedule",
    "RampSchedule",
    "READ_FALLBACK",
    "ReplaySchedule",
    "ResolvedPhase",
    "Sampler",
    "Schedule",
    "UniformSampler",
    "WorkloadSpec",
    "ZipfianSampler",
    "allowed_operations",
    "build_sampler",
    "build_schedule",
    "normalize_mix",
    "replay_spec_from_jsonl",
    "replay_times",
]
