"""Arrival schedules: when one workload thread sends its next bundle.

A schedule answers two questions for the client's send loop:
``initial_delay()`` — how long to wait after the phase starts before
the first send (0 for every kind except ``replay``) — and
``next_delay(elapsed)`` — the gap to the next send given seconds
elapsed since the phase start, or ``None`` when the schedule is
exhausted (``replay`` past its trace).

``constant`` returns the legacy fixed interval unchanged — same float,
same event sequence — which is what keeps default-spec runs
byte-identical to the pre-workloads generator. Only ``poisson`` draws
randomness; it is handed a dedicated ``workloads/...`` RNG stream so
the fault and simulation streams never shift.
"""

from __future__ import annotations

import random
import typing

from repro.workloads.spec import ArrivalSpec


class ConstantSchedule:
    """The paper's pacing: one bundle every ``interval`` seconds."""

    def __init__(self, interval: float) -> None:
        self.interval = interval

    def initial_delay(self) -> typing.Optional[float]:
        return 0.0

    def next_delay(self, elapsed: float) -> typing.Optional[float]:
        return self.interval


class PoissonSchedule:
    """Open-loop Poisson arrivals with the configured mean rate."""

    def __init__(self, interval: float, rng: random.Random) -> None:
        if interval <= 0:
            raise ValueError(f"mean interval must be > 0, got {interval}")
        self.rate = 1.0 / interval
        self.rng = rng

    def initial_delay(self) -> typing.Optional[float]:
        return 0.0

    def next_delay(self, elapsed: float) -> typing.Optional[float]:
        return self.rng.expovariate(self.rate)


class BurstSchedule:
    """MMPP-style on/off pacing.

    Cycles start with the on-period, so the first send fires at phase
    start like every other kind. During on-periods sends are spaced by
    ``interval / factor``; a send that would land inside the off-period
    is deferred to the next cycle's start.
    """

    def __init__(self, interval: float, on_s: float, off_s: float, factor: float) -> None:
        if on_s <= 0 or off_s < 0:
            raise ValueError(f"burst needs on_s > 0, off_s >= 0, got {on_s}/{off_s}")
        if factor <= 0:
            raise ValueError(f"burst factor must be > 0, got {factor}")
        self.on_s = on_s
        self.off_s = off_s
        self.on_interval = interval / factor

    def initial_delay(self) -> typing.Optional[float]:
        return 0.0

    def next_delay(self, elapsed: float) -> typing.Optional[float]:
        cycle = self.on_s + self.off_s
        position = elapsed % cycle
        cycle_start = elapsed - position
        # Strict: a send landing exactly on the off-window start belongs
        # to the silence, keeping each full cycle's send count at
        # on_s/on_interval — the rate-preserving average.
        if position < self.on_s and position + self.on_interval < self.on_s:
            return self.on_interval
        # The next send would land in (or we already are in) the silent
        # window: resume at the next cycle's start.
        return cycle_start + cycle - elapsed


class RampSchedule:
    """Linear rate ramp across the send window.

    The instantaneous rate at ``t`` is the base rate scaled by
    ``start + (end - start) * min(1, t / send_duration)``; the gap to
    the next send is the base interval divided by that factor.
    """

    def __init__(
        self, interval: float, start_factor: float, end_factor: float, send_duration: float
    ) -> None:
        if start_factor <= 0 or end_factor <= 0:
            raise ValueError(
                f"ramp factors must be > 0, got {start_factor}..{end_factor}"
            )
        if send_duration <= 0:
            raise ValueError(f"send_duration must be > 0, got {send_duration}")
        self.interval = interval
        self.start_factor = start_factor
        self.end_factor = end_factor
        self.send_duration = send_duration

    def next_delay(self, elapsed: float) -> typing.Optional[float]:
        progress = min(1.0, max(0.0, elapsed / self.send_duration))
        factor = self.start_factor + (self.end_factor - self.start_factor) * progress
        return self.interval / factor

    def initial_delay(self) -> typing.Optional[float]:
        return 0.0


class ReplaySchedule:
    """Replays recorded send offsets (seconds from phase start)."""

    def __init__(self, times: typing.Sequence[float]) -> None:
        self.times = list(times)
        self._cursor = 0

    def initial_delay(self) -> typing.Optional[float]:
        if not self.times:
            return None
        self._cursor = 1
        return self.times[0]

    def next_delay(self, elapsed: float) -> typing.Optional[float]:
        if self._cursor >= len(self.times):
            return None
        target = self.times[self._cursor]
        self._cursor += 1
        return max(0.0, target - elapsed)


Schedule = typing.Union[
    ConstantSchedule, PoissonSchedule, BurstSchedule, RampSchedule, ReplaySchedule
]


def build_schedule(
    spec: ArrivalSpec,
    interval: float,
    send_duration: float,
    thread: int,
    threads: int,
    rng_factory: typing.Callable[[], random.Random],
) -> Schedule:
    """The schedule one thread runs for one phase.

    ``interval`` is the legacy per-thread bundle spacing
    (``group * threads / rate``). ``rng_factory`` is called only for
    kinds that need randomness, so deterministic kinds never create an
    RNG stream. Replay traces are split round-robin across threads.
    """
    if spec.kind == "constant":
        return ConstantSchedule(interval)
    if spec.kind == "poisson":
        return PoissonSchedule(interval, rng_factory())
    if spec.kind == "burst":
        return BurstSchedule(interval, spec.on_s, spec.off_s, spec.burst_factor)
    if spec.kind == "ramp":
        return RampSchedule(interval, spec.start_factor, spec.end_factor, send_duration)
    if spec.kind == "replay":
        return ReplaySchedule(spec.times[thread::threads])
    raise ValueError(f"unknown arrival kind {spec.kind!r}")
