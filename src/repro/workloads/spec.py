"""Declarative workload specifications.

A :class:`WorkloadSpec` describes *how* a benchmark unit offers load,
mirroring the :class:`~repro.faults.plan.FaultPlan` design: a frozen,
JSON-loadable value object that travels inside
:class:`~repro.coconut.config.BenchmarkConfig`, reaches every worker
process unchanged, and is covered by the result-cache fingerprint. It
combines three orthogonal axes plus per-phase overrides:

* an **arrival process** (:class:`ArrivalSpec`) — how send instants are
  spaced: the paper's fixed-rate pacing (``constant``), an open-loop
  ``poisson`` process, an on/off ``burst`` (MMPP-style), a linear
  ``ramp``, or a ``replay`` of recorded send offsets;
* a **key/account access distribution** (:class:`AccessSpec`) — which
  identifiers operations touch: the paper's per-thread ``disjoint``
  spaces, or ``uniform`` / ``zipfian`` / ``hotspot`` draws over a fixed
  key universe so runs exercise real write-write contention;
* an **operation mix** — per-payload function choice inside one phase
  (e.g. 90/10 Get/Set, or read-modify-write via the KeyValue ``Rmw``
  function).

The default spec (``WorkloadSpec()``) reproduces the paper's Section
4.1/4.3 generator exactly: constant arrivals, disjoint key spaces, no
mix. Benchmarks configured with it are byte-identical to runs that
predate this subsystem — the legacy code path draws no randomness at
all, so the dedicated ``workloads/...`` RNG streams stay untouched.
"""

from __future__ import annotations

import dataclasses
import json
import typing

#: Arrival process kinds.
ARRIVAL_KINDS: typing.Tuple[str, ...] = (
    "constant",
    "poisson",
    "burst",
    "ramp",
    "replay",
)

#: Access distribution kinds.
ACCESS_KINDS: typing.Tuple[str, ...] = (
    "disjoint",
    "uniform",
    "zipfian",
    "hotspot",
)


@dataclasses.dataclass(frozen=True)
class ArrivalSpec:
    """How one workload thread spaces its sends.

    ``constant`` uses the legacy fixed interval derived from the rate
    limit. ``poisson`` draws exponential inter-send gaps with the same
    mean. ``burst`` alternates ``on_s`` seconds of sending with
    ``off_s`` seconds of silence; during on-periods the rate is
    multiplied by ``factor`` (0 = the rate-preserving default
    ``(on_s + off_s) / on_s``, so the *average* offered rate still
    matches the configured rate limit). ``ramp`` scales the rate
    linearly from ``start_factor`` to ``end_factor`` over the send
    window. ``replay`` sends at the recorded ``times`` offsets
    (seconds from phase start), distributed round-robin over threads.
    """

    kind: str = "constant"
    on_s: float = 1.0
    off_s: float = 1.0
    factor: float = 0.0
    start_factor: float = 0.1
    end_factor: float = 1.0
    times: typing.Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; known: {list(ARRIVAL_KINDS)}"
            )
        if self.kind == "burst":
            if self.on_s <= 0 or self.off_s < 0:
                raise ValueError(
                    f"burst needs on_s > 0 and off_s >= 0, got "
                    f"on_s={self.on_s}, off_s={self.off_s}"
                )
            if self.factor < 0:
                raise ValueError(f"burst factor must be >= 0, got {self.factor}")
        if self.kind == "ramp":
            if self.start_factor <= 0 or self.end_factor <= 0:
                raise ValueError(
                    f"ramp factors must be > 0, got "
                    f"{self.start_factor}..{self.end_factor}"
                )
        if self.kind == "replay":
            if not self.times:
                raise ValueError("replay needs a non-empty 'times' list")
            if any(t < 0 for t in self.times):
                raise ValueError("replay times must be >= 0")
            if list(self.times) != sorted(self.times):
                raise ValueError("replay times must be sorted ascending")

    @property
    def burst_factor(self) -> float:
        """The effective on-period rate multiplier of a burst."""
        if self.factor > 0:
            return self.factor
        return (self.on_s + self.off_s) / self.on_s

    def to_dict(self) -> typing.Dict[str, object]:
        data: typing.Dict[str, object] = {"kind": self.kind}
        if self.kind == "burst":
            data.update(on_s=self.on_s, off_s=self.off_s)
            if self.factor:
                data["factor"] = self.factor
        elif self.kind == "ramp":
            data.update(start_factor=self.start_factor, end_factor=self.end_factor)
        elif self.kind == "replay":
            data["times"] = list(self.times)
        return data

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "ArrivalSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown arrival fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "times" in kwargs:
            kwargs["times"] = tuple(
                float(t) for t in typing.cast(typing.Iterable[float], kwargs["times"])
            )
        return cls(**typing.cast(typing.Dict[str, typing.Any], kwargs))


@dataclasses.dataclass(frozen=True)
class AccessSpec:
    """Which keys/accounts operations touch.

    ``disjoint`` is the paper's layout: every thread owns a private,
    sequential identifier space, so no two writes ever collide. The
    other kinds draw indexes into a fixed universe of ``key_space``
    keys per client (or one universe shared by *all* clients when
    ``shared`` is set, the maximum-contention layout):

    * ``uniform`` — every key equally likely;
    * ``zipfian`` — rank ``i`` drawn with probability proportional to
      ``1/(i+1)**theta`` (YCSB's skew parameter; 0.99 is the classic
      default);
    * ``hotspot`` — with probability ``hot_prob`` draw uniformly from
      the hottest ``hot_fraction`` of the universe, otherwise from the
      remainder.

    Read-type operations (Get, Balance, payment endpoints) draw from
    the history of identifiers the client has already written, through
    the same distribution, so reads are skewed but never miss.
    """

    kind: str = "disjoint"
    theta: float = 0.99
    hot_fraction: float = 0.1
    hot_prob: float = 0.9
    key_space: int = 1000
    shared: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ACCESS_KINDS:
            raise ValueError(
                f"unknown access kind {self.kind!r}; known: {list(ACCESS_KINDS)}"
            )
        if self.kind != "disjoint":
            if self.key_space < 1:
                raise ValueError(f"key_space must be >= 1, got {self.key_space}")
        if self.kind == "zipfian":
            if not 0.0 < self.theta < 1.0:
                raise ValueError(
                    f"zipfian theta must be in (0, 1), got {self.theta}"
                )
        if self.kind == "hotspot":
            if not 0.0 < self.hot_fraction < 1.0:
                raise ValueError(
                    f"hotspot hot_fraction must be in (0, 1), got {self.hot_fraction}"
                )
            if not 0.0 <= self.hot_prob <= 1.0:
                raise ValueError(
                    f"hotspot hot_prob must be in [0, 1], got {self.hot_prob}"
                )

    def to_dict(self) -> typing.Dict[str, object]:
        data: typing.Dict[str, object] = {"kind": self.kind}
        if self.kind == "disjoint":
            return data
        data["key_space"] = self.key_space
        if self.shared:
            data["shared"] = True
        if self.kind == "zipfian":
            data["theta"] = self.theta
        elif self.kind == "hotspot":
            data.update(hot_fraction=self.hot_fraction, hot_prob=self.hot_prob)
        return data

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "AccessSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown access fields: {sorted(unknown)}")
        return cls(**typing.cast(typing.Dict[str, typing.Any], dict(data)))


#: An operation mix: ((function, weight), ...), weights > 0.
Mix = typing.Tuple[typing.Tuple[str, float], ...]


def normalize_mix(
    mix: typing.Union[None, typing.Mapping[str, float], Mix]
) -> typing.Optional[Mix]:
    """Canonicalise a mix to a sorted tuple of (function, weight) pairs."""
    if mix is None:
        return None
    pairs = list(mix.items()) if isinstance(mix, typing.Mapping) else list(mix)
    if not pairs:
        return None
    for function, weight in pairs:
        if not isinstance(function, str) or not function:
            raise ValueError(f"mix operation names must be strings, got {function!r}")
        if not (isinstance(weight, (int, float)) and weight > 0):
            raise ValueError(
                f"mix weight for {function!r} must be > 0, got {weight!r}"
            )
    names = [function for function, __ in pairs]
    if len(names) != len(set(names)):
        raise ValueError(f"duplicate operations in mix: {sorted(names)}")
    return tuple(sorted((function, float(weight)) for function, weight in pairs))


@dataclasses.dataclass(frozen=True)
class PhaseOverride:
    """Per-phase overrides inside a multi-phase scenario script."""

    arrival: typing.Optional[ArrivalSpec] = None
    access: typing.Optional[AccessSpec] = None
    mix: typing.Optional[Mix] = None

    def to_dict(self) -> typing.Dict[str, object]:
        data: typing.Dict[str, object] = {}
        if self.arrival is not None:
            data["arrival"] = self.arrival.to_dict()
        if self.access is not None:
            data["access"] = self.access.to_dict()
        if self.mix is not None:
            data["mix"] = dict(self.mix)
        return data

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "PhaseOverride":
        unknown = set(data) - {"arrival", "access", "mix"}
        if unknown:
            raise ValueError(f"unknown phase override fields: {sorted(unknown)}")
        return cls(
            arrival=(
                ArrivalSpec.from_dict(typing.cast(dict, data["arrival"]))
                if "arrival" in data
                else None
            ),
            access=(
                AccessSpec.from_dict(typing.cast(dict, data["access"]))
                if "access" in data
                else None
            ),
            mix=normalize_mix(typing.cast(dict, data.get("mix"))),
        )


@dataclasses.dataclass(frozen=True)
class ResolvedPhase:
    """One phase's effective workload shape after applying overrides."""

    arrival: ArrivalSpec
    access: AccessSpec
    mix: typing.Optional[Mix]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark unit's declarative workload model."""

    name: str = ""
    arrival: ArrivalSpec = dataclasses.field(default_factory=ArrivalSpec)
    access: AccessSpec = dataclasses.field(default_factory=AccessSpec)
    mix: typing.Optional[Mix] = None
    #: Scenario script: ((phase name, PhaseOverride), ...).
    phases: typing.Tuple[typing.Tuple[str, PhaseOverride], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "mix", normalize_mix(self.mix))
        names = [phase for phase, __ in self.phases]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate phase overrides: {sorted(names)}")

    # -- resolution ------------------------------------------------------

    @property
    def is_default(self) -> bool:
        """Whether this spec reproduces the legacy generator exactly."""
        return (
            self.arrival.kind == "constant"
            and self.access.kind == "disjoint"
            and self.mix is None
            and not self.phases
        )

    def override_for(self, phase: str) -> typing.Optional[PhaseOverride]:
        for name, override in self.phases:
            if name == phase:
                return override
        return None

    def for_phase(self, phase: str) -> ResolvedPhase:
        """The effective arrival/access/mix of one phase."""
        override = self.override_for(phase)
        if override is None:
            return ResolvedPhase(self.arrival, self.access, self.mix)
        return ResolvedPhase(
            arrival=override.arrival or self.arrival,
            access=override.access or self.access,
            mix=override.mix if override.mix is not None else self.mix,
        )

    def validate_for(self, iel: str, unit_phases: typing.Sequence[str]) -> None:
        """Eagerly reject specs that cannot drive one IEL's unit.

        Raises :class:`ValueError` naming the offending phase or
        operation instead of failing mid-run.
        """
        from repro.workloads.mixes import allowed_operations

        allowed = allowed_operations(iel)
        for phase, __ in self.phases:
            if phase not in unit_phases:
                raise ValueError(
                    f"workload overrides unknown phase {phase!r}; the {iel} "
                    f"unit has phases {list(unit_phases)}"
                )
        for phase in unit_phases:
            resolved = self.for_phase(phase)
            if resolved.mix is None:
                continue
            unknown = [op for op, __ in resolved.mix if op not in allowed]
            if unknown:
                raise ValueError(
                    f"workload mix for phase {phase!r} uses operations "
                    f"{unknown} unknown to IEL {iel!r}; allowed: {sorted(allowed)}"
                )

    # -- labelling -------------------------------------------------------

    def short_label(self) -> str:
        """A compact, filename-friendly tag for config labels."""
        if self.is_default:
            return ""
        if self.name:
            tag = "".join(ch if ch.isalnum() else "-" for ch in self.name)
        else:
            parts = []
            if self.arrival.kind != "constant":
                parts.append(self.arrival.kind)
            if self.access.kind != "disjoint":
                parts.append(self.access.kind)
            if self.mix is not None:
                parts.append("mix")
            if self.phases:
                parts.append("scenario")
            tag = "-".join(parts) or "custom"
        import hashlib

        digest = hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:6]
        return f"{tag}-{digest}"

    # -- (de)serialisation ----------------------------------------------

    def to_dict(self) -> typing.Dict[str, object]:
        data: typing.Dict[str, object] = {}
        if self.name:
            data["name"] = self.name
        if self.arrival.kind != "constant":
            data["arrival"] = self.arrival.to_dict()
        if self.access.kind != "disjoint":
            data["access"] = self.access.to_dict()
        if self.mix is not None:
            data["mix"] = dict(self.mix)
        if self.phases:
            data["phases"] = {
                phase: override.to_dict() for phase, override in self.phases
            }
        return data

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "WorkloadSpec":
        unknown = set(data) - {"name", "arrival", "access", "mix", "phases"}
        if unknown:
            raise ValueError(f"unknown workload fields: {sorted(unknown)}")
        phases_data = typing.cast(
            typing.Mapping[str, typing.Mapping[str, object]], data.get("phases", {})
        )
        if not isinstance(phases_data, typing.Mapping):
            raise ValueError('"phases" must be an object of per-phase overrides')
        return cls(
            name=str(data.get("name", "")),
            arrival=(
                ArrivalSpec.from_dict(typing.cast(dict, data["arrival"]))
                if "arrival" in data
                else ArrivalSpec()
            ),
            access=(
                AccessSpec.from_dict(typing.cast(dict, data["access"]))
                if "access" in data
                else AccessSpec()
            ),
            mix=normalize_mix(typing.cast(dict, data.get("mix"))),
            phases=tuple(
                sorted(
                    (phase, PhaseOverride.from_dict(override))
                    for phase, override in phases_data.items()
                )
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("workload spec JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def from_json_file(cls, path: str) -> "WorkloadSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self) -> str:
        if self.is_default:
            return "<WorkloadSpec legacy>"
        return f"<WorkloadSpec {self.short_label()}>"


#: The paper's workload: constant arrivals over disjoint key spaces.
DEFAULT_WORKLOAD = WorkloadSpec()
