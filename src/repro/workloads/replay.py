"""Trace-to-replay hooks: turn a recorded run into a replay workload.

A run traced with ``coconut run --trace out.jsonl --trace-format jsonl``
records one ``tx`` span per payload whose start is the client-side send
instant. These helpers turn those spans back into a ``replay`` arrival
spec, so a measured arrival pattern (including every queueing artefact
of the original schedule) can be offered again — to another system, at
another scale, or under a fault plan.

Offsets are normalised to the phase's first send, so the resulting
spec is position-independent: every client of the replaying run offers
the same relative pattern the traced client did.
"""

from __future__ import annotations

import typing

from repro.workloads.spec import ArrivalSpec, WorkloadSpec


def replay_times(
    records: typing.Iterable[typing.Mapping[str, object]],
    phase: typing.Optional[str] = None,
    client: typing.Optional[str] = None,
) -> typing.Tuple[float, ...]:
    """Send offsets (seconds from first send) of a trace's ``tx`` spans.

    ``records`` is a JSONL trace loaded with
    :func:`repro.trace.jsonl.read_jsonl`; ``phase``/``client`` filter by
    the span's attributes. Offsets are rounded to microseconds so a
    round-trip through JSON stays deterministic.
    """
    starts: typing.List[float] = []
    for record in records:
        if record.get("type") != "span" or record.get("name") != "tx":
            continue
        if record.get("cat") != "client":
            continue
        attrs = typing.cast(typing.Mapping[str, object], record.get("attrs", {}))
        if phase is not None and attrs.get("phase") != phase:
            continue
        if client is not None and attrs.get("node") != client:
            continue
        starts.append(float(typing.cast(float, record["start"])))
    if not starts:
        raise ValueError(
            "no client tx spans matched; trace the run with --trace-format "
            "jsonl and an unfiltered 'client' category"
        )
    origin = min(starts)
    return tuple(sorted(round(start - origin, 6) for start in starts))


def replay_spec_from_jsonl(
    path: str,
    phase: typing.Optional[str] = None,
    client: typing.Optional[str] = None,
    name: str = "",
) -> WorkloadSpec:
    """A replay :class:`WorkloadSpec` built from a JSONL trace file."""
    from repro.trace.jsonl import read_jsonl

    times = replay_times(read_jsonl(path), phase=phase, client=client)
    return WorkloadSpec(
        name=name or "replay",
        arrival=ArrivalSpec(kind="replay", times=times),
    )
