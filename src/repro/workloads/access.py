"""Key/account index samplers for the access distributions.

A sampler maps ``(rng, n)`` to an index in ``[0, n)``. The zipfian
sampler is YCSB's constant-time approximation (Gray et al.'s
quasi-inverse-CDF) with an incrementally extended zeta sum, so draw
cost does not grow with the universe; rank 0 is the hottest item.
``disjoint`` never reaches a sampler — the legacy per-thread counter
path handles it without touching any RNG stream.
"""

from __future__ import annotations

import math
import random
import typing

from repro.workloads.spec import AccessSpec


class UniformSampler:
    """Every index equally likely."""

    def sample(self, rng: random.Random, n: int) -> int:
        if n <= 1:
            return 0
        return rng.randrange(n)


class ZipfianSampler:
    """YCSB-style zipfian over ``n`` items, rank 0 hottest.

    ``P(i) ~ 1 / (i + 1) ** theta``. The zeta normaliser is cached and
    extended term by term as ``n`` grows (reads sample over a growing
    written-key history), keeping every draw O(1).
    """

    def __init__(self, theta: float) -> None:
        if not 0.0 < theta < 1.0:
            raise ValueError(f"zipfian theta must be in (0, 1), got {theta}")
        self.theta = theta
        self.alpha = 1.0 / (1.0 - theta)
        self._zeta_n = 0
        self._zeta = 0.0
        self._zeta2 = sum(1.0 / (i + 1) ** theta for i in range(2))

    def _zeta_for(self, n: int) -> float:
        while self._zeta_n < n:
            self._zeta += 1.0 / (self._zeta_n + 1) ** self.theta
            self._zeta_n += 1
        return self._zeta

    def sample(self, rng: random.Random, n: int) -> int:
        if n <= 1:
            return 0
        zetan = self._zeta_for(n)
        u = rng.random()
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        eta = (1.0 - (2.0 / n) ** (1.0 - self.theta)) / (1.0 - self._zeta2 / zetan)
        return min(n - 1, int(n * (eta * u - eta + 1.0) ** self.alpha))


class HotspotSampler:
    """With ``hot_prob`` draw uniformly from the hottest ``hot_fraction``
    of indexes (the front of the universe), else from the remainder."""

    def __init__(self, hot_fraction: float, hot_prob: float) -> None:
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
        if not 0.0 <= hot_prob <= 1.0:
            raise ValueError(f"hot_prob must be in [0, 1], got {hot_prob}")
        self.hot_fraction = hot_fraction
        self.hot_prob = hot_prob

    def sample(self, rng: random.Random, n: int) -> int:
        if n <= 1:
            return 0
        hot = max(1, int(math.ceil(n * self.hot_fraction)))
        if hot >= n or rng.random() < self.hot_prob:
            return rng.randrange(hot)
        return hot + rng.randrange(n - hot)


Sampler = typing.Union[UniformSampler, ZipfianSampler, HotspotSampler]


def build_sampler(spec: AccessSpec) -> Sampler:
    """The index sampler one access spec describes.

    ``disjoint`` has no sampler — callers must keep the legacy counter
    path for it; asking for one is a programming error surfaced early.
    """
    if spec.kind == "uniform":
        return UniformSampler()
    if spec.kind == "zipfian":
        return ZipfianSampler(spec.theta)
    if spec.kind == "hotspot":
        return HotspotSampler(spec.hot_fraction, spec.hot_prob)
    raise ValueError(f"access kind {spec.kind!r} has no sampler")
