#!/usr/bin/env python
"""Compare all seven systems on one benchmark — a miniature Figure 3.

Runs the DoNothing benchmark (the consensus/networking ceiling, free of
execution-layer cost) at each system's best configuration and prints a
ranked comparison. Expect the paper's ordering: BitShares and Fabric in
the four digits, Quorum in the hundreds, Sawtooth and Diem around a
hundred, Corda Enterprise in the tens and Corda OS in single digits.

Usage::

    python examples/compare_systems.py [system ...]
"""

import sys

from repro import BenchmarkConfig, BenchmarkRunner, SYSTEM_NAMES
from repro.chains.registry import SYSTEM_LABELS
from repro.coconut.report import format_table
from repro.experiments.figures import best_config_kwargs, recommended_scale


def main() -> int:
    systems = sys.argv[1:] or list(SYSTEM_NAMES)
    unknown = [s for s in systems if s not in SYSTEM_NAMES]
    if unknown:
        print(f"unknown systems: {unknown}; known: {', '.join(SYSTEM_NAMES)}")
        return 1

    runner = BenchmarkRunner()
    rows = []
    for system in systems:
        config = BenchmarkConfig(
            system=system,
            iel="DoNothing",
            scale=min(0.05, recommended_scale(system)) if system not in
            ("diem", "corda_os", "corda_enterprise") else recommended_scale(system),
            repetitions=1,
            seed=3,
            **best_config_kwargs(system),
        )
        print(f"running {system} (offered {config.aggregate_rate} payloads/s)...")
        result = runner.run(config)
        phase = result.phase("DoNothing")
        rows.append(
            (
                phase.mtps.mean,
                [
                    SYSTEM_LABELS[system],
                    f"{phase.mtps.mean:.2f}",
                    f"{phase.mfls.mean:.2f}",
                    f"{phase.loss_fraction:.1%}",
                    f"{config.aggregate_rate}",
                ],
            )
        )

    rows.sort(key=lambda item: -item[0])
    print()
    print("DoNothing benchmark, best configuration per system (ranked):")
    print(
        format_table(
            ["System", "MTPS", "MFLS (s)", "Lost", "Offered/s"],
            [row for __, row in rows],
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
