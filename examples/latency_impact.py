#!/usr/bin/env python
"""The impact of network latency — a miniature Section 5.8.1.

Runs the same benchmark twice: once with data-centre latency and once
with the paper's netem emulation of a European WAN (normally distributed
one-way delay, mu = 12 ms). The paper's finding: Fabric drops by a third
or more (extra orderer round trips), while systems whose critical path
is CPU-bound (Quorum, Sawtooth, Corda OS) barely react.

Usage::

    python examples/latency_impact.py
"""

import sys

from repro import BenchmarkConfig, BenchmarkRunner
from repro.chains.registry import SYSTEM_LABELS
from repro.coconut.report import format_table
from repro.experiments.figures import best_config_kwargs, recommended_scale
from repro.net.latency import EUROPEAN_WAN_LATENCY

SYSTEMS = ("fabric", "quorum", "bitshares")


def measure(system, latency):
    config = BenchmarkConfig(
        system=system,
        iel="DoNothing",
        latency=latency,
        scale=min(0.05, recommended_scale(system)),
        repetitions=1,
        seed=17,
        **best_config_kwargs(system),
    )
    result = BenchmarkRunner().run(config)
    return result.phase("DoNothing")


def main() -> int:
    rows = []
    for system in SYSTEMS:
        print(f"running {system} with and without emulated latency...")
        baseline = measure(system, latency=None)
        wan = measure(system, latency=EUROPEAN_WAN_LATENCY)
        drop = 1.0 - wan.mtps.mean / baseline.mtps.mean if baseline.mtps.mean else 0.0
        rows.append(
            [
                SYSTEM_LABELS[system],
                f"{baseline.mtps.mean:.1f}",
                f"{wan.mtps.mean:.1f}",
                f"{drop:+.1%}",
                f"{baseline.mfls.mean:.2f} -> {wan.mfls.mean:.2f}",
            ]
        )

    print()
    print(f"DoNothing under {EUROPEAN_WAN_LATENCY.describe()}:")
    print(
        format_table(
            ["System", "MTPS (DC)", "MTPS (WAN)", "Drop", "MFLS (s)"],
            rows,
        )
    )
    print()
    print("Fabric pays for the extra orderer round trips; BitShares' witness")
    print("schedule and Quorum's execution ceiling are latency-insensitive.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
