#!/usr/bin/env python
"""Extending COCONUT with a custom smart contract (IEL).

The paper designed COCONUT for extensibility with further interface
execution layers (Section 3). This example adds an auction contract —
open an auction, place bids, settle to the highest bidder — registers it
with the IEL registry, defines its workload, and benchmarks it on two
systems with very different execution paradigms (Fabric's
execute-order-validate vs Quorum's order-execute).

Contention is deliberate: every bidder targets the same handful of
auctions, so Fabric's optimistic endorsement produces MVCC conflicts
(invalidated-but-on-chain transactions) while Quorum serialises the bids
and commits every one.

Usage::

    python examples/custom_contract.py
"""

import sys
import typing

from repro.chains.base import DeploymentSpec
from repro.chains.registry import create_system
from repro.iel import IELError, InterfaceExecutionLayer, register_iel
from repro.sim import Simulator
from repro.storage import Payload, Transaction, TxStatus


class AuctionIEL(InterfaceExecutionLayer):
    """Open/Bid/Settle auction logic over the key-value state."""

    name = "Auction"

    def functions(self) -> typing.Tuple[str, ...]:
        return ("Open", "Bid", "Settle")

    def _fn_open(self, payload, state):
        auction = payload.arg("auction")
        if auction is None:
            raise IELError("Open requires an 'auction' argument")
        if state.get(f"auction:{auction}") is not None:
            raise IELError(f"auction {auction!r} already open")
        state.put(f"auction:{auction}", {"status": "open", "best": 0, "bidder": ""})

    def _fn_bid(self, payload, state):
        auction = payload.arg("auction")
        amount = payload.arg("amount", 0)
        bidder = payload.arg("bidder", "anonymous")
        record = state.get(f"auction:{auction}")
        if record is None or record["status"] != "open":
            raise IELError(f"auction {auction!r} is not open")
        if amount <= record["best"]:
            raise IELError(f"bid {amount} does not beat {record['best']}")
        state.put(f"auction:{auction}", {"status": "open", "best": amount, "bidder": bidder})

    def _fn_settle(self, payload, state):
        auction = payload.arg("auction")
        record = state.get(f"auction:{auction}")
        if record is None:
            raise IELError(f"unknown auction {auction!r}")
        state.put(f"auction:{auction}", {**record, "status": "settled"})
        return record["bidder"]


register_iel(AuctionIEL)


class AuctionHouse:
    """A tiny driver submitting auction traffic straight to a system."""

    def __init__(self, system_name):
        self.sim = Simulator(seed=99)
        self.system = create_system(system_name, self.sim, DeploymentSpec(), "Auction")
        from repro.net import Endpoint, Host

        outer = self

        class Bidder(Endpoint):
            def __init__(self):
                super().__init__("bidder-client")
                self.receipts = {}
                self.rejects = {}

            def on_message(self, message):
                if message.kind == "client/receipt":
                    for receipt in message.payload:
                        self.receipts[receipt.payload_id] = receipt
                elif message.kind == "client/reject":
                    for pid in message.payload.payload_ids:
                        self.rejects[pid] = message.payload.reason

        self.client = Bidder()
        self.system.attach_client(self.client, Host("client-host"))
        self.gateway = self.system.gateway_for(0)
        self.system.subscribe("bidder-client", self.gateway)
        self.system.start()

    def submit(self, function, delay, **args):
        payload = Payload.create("bidder-client", "Auction", function, args)
        tx = Transaction.wrap([payload], submitter="bidder-client")
        self.sim.schedule(
            delay,
            lambda: self.client.send(self.gateway, "client/submit", tx,
                                     size_bytes=tx.size_bytes),
        )
        return payload


def run_auction(system_name):
    house = AuctionHouse(system_name)
    house.submit("Open", 0.0, auction="lot-1")
    bids = [
        house.submit("Bid", 8.0 + i * 0.01, auction="lot-1",
                     amount=10 + i, bidder=f"bidder-{i}")
        for i in range(20)
    ]
    settle = house.submit("Settle", 30.0, auction="lot-1")
    house.sim.run(until=60.0)

    committed = sum(
        1 for b in bids
        if b.payload_id in house.client.receipts
        and house.client.receipts[b.payload_id].status is TxStatus.COMMITTED
    )
    invalidated = sum(
        1 for b in bids
        if b.payload_id in house.client.receipts
        and house.client.receipts[b.payload_id].status is TxStatus.INVALIDATED
    )
    node = house.system.nodes[house.system.node_ids[0]]
    final = node.state.get("auction:lot-1")
    winner = house.client.receipts.get(settle.payload_id)
    return committed, invalidated, final, winner


def main() -> int:
    for system_name in ("fabric", "quorum"):
        committed, invalidated, final, winner = run_auction(system_name)
        print(f"{system_name}: {committed} bids committed, "
              f"{invalidated} invalidated (MVCC), final state: {final}")
    print()
    print("Fabric endorses racing bids against the same snapshot, so most are")
    print("invalidated at validation; Quorum orders first and executes serially,")
    print("rejecting only the bids that genuinely fail to beat the best price.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
