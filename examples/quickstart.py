#!/usr/bin/env python
"""Quickstart: benchmark one blockchain system end to end.

Runs the KeyValue benchmark unit (Set, then Get) against the Hyperledger
Fabric model with four COCONUT clients, exactly as the paper's setup
does — four clients, four workload threads each, rate-limited sends, and
end-to-end confirmation only when a transaction is persisted on all four
peers. The windows are scaled to 5% (a 15-second send window) so the run
finishes in a few seconds.

Usage::

    python examples/quickstart.py [system]

where ``system`` is one of: corda_os, corda_enterprise, bitshares,
fabric, quorum, sawtooth, diem (default: fabric).
"""

import sys

from repro import BenchmarkConfig, BenchmarkRunner, SYSTEM_NAMES
from repro.coconut.report import unit_summary


def main() -> int:
    system = sys.argv[1] if len(sys.argv) > 1 else "fabric"
    if system not in SYSTEM_NAMES:
        print(f"unknown system {system!r}; pick one of {', '.join(SYSTEM_NAMES)}")
        return 1

    config = BenchmarkConfig(
        system=system,
        iel="KeyValue",        # the Set -> Get benchmark unit
        rate_limit=100,        # payloads/second per client (4 clients)
        scale=0.05,            # 15 s send window instead of the paper's 300 s
        repetitions=1,
        seed=7,
    )
    print(f"Benchmarking {system} with the KeyValue unit "
          f"(aggregate load {config.aggregate_rate} payloads/s)...")
    runner = BenchmarkRunner(progress=lambda line: print(f"  {line}"))
    result = runner.run(config)

    print()
    print(unit_summary(result))
    set_phase = result.phase("Set")
    print()
    print(f"End-to-end verdict: {set_phase.mtps.mean:.1f} writes/s confirmed on "
          f"all nodes, mean finalization latency {set_phase.mfls.mean:.2f} s, "
          f"{set_phase.loss_fraction:.1%} of offered transactions lost.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
