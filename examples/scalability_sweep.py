#!/usr/bin/env python
"""Network-size sweep — a miniature Figure 5.

Scales three contrasting systems from 4 to 16 nodes on the DoNothing
benchmark: BitShares stays flat (its witness count is fixed), Quorum
trends down (IBFT message handling grows with the validator set), and
Fabric's client event service collapses outright at 16 peers — the
nodes keep committing, the clients stop hearing about it.

Usage::

    python examples/scalability_sweep.py
"""

import sys

from repro import BenchmarkConfig, BenchmarkRunner
from repro.chains.registry import SYSTEM_LABELS
from repro.coconut.report import format_table
from repro.experiments.figures import best_config_kwargs
from repro.net.latency import EUROPEAN_WAN_LATENCY

SYSTEMS = ("bitshares", "quorum", "fabric")
NODE_COUNTS = (4, 8, 16)


def main() -> int:
    runner = BenchmarkRunner()
    results = {}
    for system in SYSTEMS:
        for node_count in NODE_COUNTS:
            print(f"running {system} with {node_count} nodes...")
            config = BenchmarkConfig(
                system=system,
                iel="DoNothing",
                node_count=node_count,
                latency=EUROPEAN_WAN_LATENCY,
                scale=0.05,
                repetitions=1,
                seed=29,
                **best_config_kwargs(system),
            )
            phase = runner.run(config).phase("DoNothing")
            results[(system, node_count)] = phase

    print()
    rows = []
    for system in SYSTEMS:
        row = [SYSTEM_LABELS[system]]
        for node_count in NODE_COUNTS:
            phase = results[(system, node_count)]
            row.append("FAIL" if phase.received.mean == 0 else f"{phase.mtps.mean:.1f}")
        rows.append(row)
    print("DoNothing MTPS vs network size (emulated WAN latency):")
    print(format_table(["System"] + [f"n={n}" for n in NODE_COUNTS], rows))
    print()
    print("BitShares: flat. Quorum: declining. Fabric: nodes fine, clients dark")
    print("at 16 peers — visible only because measurement is end-to-end.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
