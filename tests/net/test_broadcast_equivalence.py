"""Broadcast fast-path equivalence against the naive per-destination loop.

The zero-allocation fan-out shares one wire record per logical broadcast
and inlines ``send``'s per-destination work; it is only admissible if
every observable — delivery times and contents, drop accounting, RNG
consumption, trace records, metric snapshots — stays byte-identical to
sending one fresh ``Message`` per destination. Each scenario here runs
both ways with the same seed and compares everything, including a
canonical trace digest, under jittered links, partitions, probabilistic
loss and crashed endpoints with a live tracer.
"""

import hashlib
import json

import pytest

from repro.net import ConstantLatency, Endpoint, Host, Network
from repro.net.latency import EUROPEAN_WAN_LATENCY
from repro.net.network import Message
from repro.sim import Simulator
from repro.trace.config import TraceConfig
from repro.trace.tracer import Tracer

N = 6
IDS = [f"n{i}" for i in range(N)]


class Recorder(Endpoint):
    """Records each delivery, including the envelope's dst stamp."""

    def __init__(self, endpoint_id, sim):
        super().__init__(endpoint_id)
        self.sim = sim
        self.received = []

    def on_message(self, message):
        self.received.append(
            (self.sim.now, message.src, message.dst, message.kind,
             message.payload, message.size_bytes)
        )


def naive_broadcast(network, src, dsts, kind, payload, size_bytes):
    """The pre-optimization reference: one fresh envelope per destination."""
    targets = [dst for dst in dsts if dst != src]
    for dst in targets:
        network.send(Message(src, dst, kind, payload, size_bytes))
    return len(targets)


def run_scenario(fast_path, latency, faults):
    sim = Simulator(seed=9)
    tracer = Tracer(TraceConfig())
    sim.set_tracer(tracer)
    network = Network(sim, default_latency=latency)
    nodes = {}
    for i, nid in enumerate(IDS):
        nodes[nid] = Recorder(nid, sim)
        network.attach(nodes[nid], Host(f"h{i}"))
    faults(sim, network)
    returned = []

    def fan_out(src, kind, payload, size_bytes):
        if fast_path:
            returned.append(network.broadcast(src, IDS, kind, payload, size_bytes))
        else:
            returned.append(naive_broadcast(network, src, IDS, kind, payload, size_bytes))

    # A deterministic script of interleaved fan-outs and point sends, so
    # broadcasts land between (and at the same instants as) other traffic.
    sim.schedule(0.0, fan_out, "n0", "propose", {"seq": 1}, 512)
    sim.schedule(0.0, fan_out, "n1", "vote", {"seq": 1}, 128)
    sim.schedule(0.002, lambda: network.send(Message("n2", "n0", "ack", {"seq": 1}, 64)))
    sim.schedule(0.004, fan_out, "n2", "vote", {"seq": 1}, 128)
    sim.schedule(0.004, fan_out, "n3", "commit", {"seq": 1}, 256)
    sim.schedule(0.030, fan_out, "n0", "propose", {"seq": 2}, 512)
    sim.run()

    events = sorted(
        (json.dumps(record.to_dict(), sort_keys=True) for record in tracer.events),
    )
    return {
        "returned": returned,
        "received": {nid: nodes[nid].received for nid in IDS},
        "sent": network.messages_sent,
        "dropped": network.messages_dropped,
        "metrics": tracer.metrics.snapshot(),
        "trace_digest": hashlib.sha256("\n".join(events).encode()).hexdigest(),
        "event_count": len(events),
    }


def no_faults(sim, network):
    pass


def crashed_endpoint(sim, network):
    network.set_endpoint_down("n4")


def midflight_crash(sim, network):
    # n5 crashes after the t=0 sends but before their deliveries arrive:
    # the in-flight fan-outs must be dropped at delivery time.
    sim.schedule(0.0001, lambda: network.set_endpoint_down("n5"))


def partitioned(sim, network):
    network.partitions.partition(IDS[:3], IDS[3:])


def lossy(sim, network):
    # Probabilistic loss consults the RNG per (src, dst) attempt, so any
    # divergence in draw order between the two paths shows up here.
    for other in IDS[1:]:
        network.partitions.set_loss("n0", other, 0.5)


SCENARIOS = {
    "constant-latency": (ConstantLatency(0.010), no_faults),
    "jittered-wan": (EUROPEAN_WAN_LATENCY, no_faults),
    "crashed-endpoint": (ConstantLatency(0.010), crashed_endpoint),
    "midflight-crash": (ConstantLatency(0.010), midflight_crash),
    "partitioned": (EUROPEAN_WAN_LATENCY, partitioned),
    "lossy": (EUROPEAN_WAN_LATENCY, lossy),
}


class TestBroadcastEquivalence:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_fast_path_matches_naive_loop(self, scenario):
        latency, faults = SCENARIOS[scenario]
        fast = run_scenario(True, latency, faults)
        naive = run_scenario(False, latency, faults)
        assert fast == naive

    def test_shared_record_dst_stamped_per_delivery(self):
        fast = run_scenario(True, ConstantLatency(0.010), no_faults)
        deliveries = 0
        for nid, received in fast["received"].items():
            for __, __, dst, __, __, __ in received:
                assert dst == nid
                deliveries += 1
        assert deliveries > 0

    def test_broadcast_returns_target_count(self):
        fast = run_scenario(True, ConstantLatency(0.010), no_faults)
        assert fast["returned"] == [N - 1] * 5
