"""Unit tests for latency models."""

import random
import statistics

import pytest

from repro.net import ConstantLatency, LoopbackLatency, NetemLatency, UniformLatency
from repro.net.latency import DATACENTER_LATENCY, EUROPEAN_WAN_LATENCY


class TestConstantLatency:
    def test_sample_is_fixed(self):
        model = ConstantLatency(0.005)
        rng = random.Random(1)
        assert all(model.sample(rng) == 0.005 for __ in range(10))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.001)

    def test_describe_mentions_value(self):
        assert "5.000 ms" in ConstantLatency(0.005).describe()


class TestUniformLatency:
    def test_samples_within_bounds(self):
        model = UniformLatency(0.001, 0.002)
        rng = random.Random(2)
        for __ in range(100):
            assert 0.001 <= model.sample(rng) <= 0.002

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.002, 0.001)
        with pytest.raises(ValueError):
            UniformLatency(-0.001, 0.002)


class TestNetemLatency:
    def test_matches_paper_parameters(self):
        # Section 5.8.1: normal distribution, mu = 12 ms, jitter 2 ms.
        assert EUROPEAN_WAN_LATENCY.mean == pytest.approx(0.012)
        assert EUROPEAN_WAN_LATENCY.jitter == pytest.approx(0.002)

    def test_sample_statistics(self):
        model = NetemLatency(mean=0.012, jitter=0.002)
        rng = random.Random(3)
        samples = [model.sample(rng) for __ in range(5000)]
        assert statistics.mean(samples) == pytest.approx(0.012, rel=0.05)
        assert statistics.stdev(samples) == pytest.approx(0.002, rel=0.10)

    def test_samples_never_negative(self):
        model = NetemLatency(mean=0.0005, jitter=0.01)  # heavy left tail
        rng = random.Random(4)
        assert all(model.sample(rng) >= 0 for __ in range(1000))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetemLatency(mean=-0.001)
        with pytest.raises(ValueError):
            NetemLatency(jitter=-0.001)


class TestPresets:
    def test_datacenter_is_submillisecond(self):
        rng = random.Random(5)
        assert DATACENTER_LATENCY.sample(rng) < 0.001

    def test_loopback_is_faster_than_datacenter(self):
        rng = random.Random(6)
        assert LoopbackLatency().sample(rng) < DATACENTER_LATENCY.sample(rng)
