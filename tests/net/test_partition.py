"""Unit tests for partition and loss injection."""

import random

import pytest

from repro.net import ConstantLatency, Host, Network, PartitionController
from repro.sim import Simulator
from tests.net.test_network import Recorder


@pytest.fixture()
def rig():
    sim = Simulator(seed=1)
    network = Network(sim, default_latency=ConstantLatency(0.001))
    nodes = []
    for index in range(3):
        node = Recorder(f"n{index}", sim)
        network.attach(node, Host(f"s{index}"))
        nodes.append(node)
    return sim, network, nodes


class TestPartitionController:
    def test_allows_by_default(self):
        controller = PartitionController()
        assert controller.allows("a", "b", random.Random(1))

    def test_block_and_unblock_is_bidirectional(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.block("a", "b")
        assert not controller.allows("a", "b", rng)
        assert not controller.allows("b", "a", rng)
        controller.unblock("a", "b")
        assert controller.allows("a", "b", rng)

    def test_isolate(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.isolate("a")
        assert not controller.allows("a", "b", rng)
        assert not controller.allows("c", "a", rng)
        assert controller.allows("b", "c", rng)
        controller.heal_endpoint("a")
        assert controller.allows("a", "b", rng)

    def test_group_partition_and_heal(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.partition(["a", "b"], ["c"])
        assert not controller.allows("a", "c", rng)
        assert not controller.allows("c", "b", rng)
        assert controller.allows("a", "b", rng)
        controller.heal_all()
        assert controller.allows("a", "c", rng)

    def test_unblock_restores_both_directions(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.block("a", "b")
        controller.unblock("b", "a")  # argument order must not matter
        assert controller.allows("a", "b", rng)
        assert controller.allows("b", "a", rng)

    def test_heal_endpoint_leaves_other_isolations_intact(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.isolate("a")
        controller.isolate("b")
        controller.heal_endpoint("a")
        assert controller.allows("a", "c", rng)
        assert not controller.allows("b", "c", rng)
        assert not controller.allows("a", "b", rng)  # b still isolated

    def test_heal_endpoint_does_not_lift_pair_blocks(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.block("a", "b")
        controller.isolate("a")
        controller.heal_endpoint("a")
        assert not controller.allows("a", "b", rng)
        assert controller.allows("a", "c", rng)

    def test_unblock_and_heal_are_idempotent(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.unblock("a", "b")  # never blocked
        controller.heal_endpoint("x")  # never isolated
        controller.heal_all()  # nothing to heal
        assert controller.allows("a", "b", rng)

    def test_drop_probability(self):
        controller = PartitionController()
        controller.drop_probability = 0.5
        rng = random.Random(42)
        outcomes = [controller.allows("a", "b", rng) for __ in range(1000)]
        dropped = outcomes.count(False)
        assert 400 < dropped < 600

    def test_drop_decisions_are_seed_deterministic(self):
        def run(seed):
            controller = PartitionController()
            controller.drop_probability = 0.3
            rng = random.Random(seed)
            return [controller.allows("a", "b", rng) for __ in range(200)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_heal_all_keeps_drop_probability(self):
        controller = PartitionController()
        controller.drop_probability = 1.0
        controller.heal_all()
        assert not controller.allows("a", "b", random.Random(1))


class TestNetworkIntegration:
    def test_blocked_messages_are_dropped(self, rig):
        sim, network, nodes = rig
        network.partitions.block("n0", "n1")
        nodes[0].send("n1", "blocked")
        nodes[0].send("n2", "open")
        sim.run()
        assert nodes[1].received == []
        assert len(nodes[2].received) == 1
        assert network.messages_dropped == 1

    def test_heal_restores_delivery(self, rig):
        sim, network, nodes = rig
        network.partitions.isolate("n1")
        nodes[0].send("n1", "lost")
        sim.run()
        network.partitions.heal_all()
        nodes[0].send("n1", "delivered")
        sim.run()
        assert [kind for __, kind, __ in nodes[1].received] == ["delivered"]

    def test_lossy_network_drops_and_counts_messages(self, rig):
        sim, network, nodes = rig
        network.partitions.drop_probability = 0.5
        for index in range(100):
            nodes[0].send("n1", f"m{index}")
        sim.run()
        assert 0 < network.messages_dropped < 100
        assert len(nodes[1].received) == 100 - network.messages_dropped
