"""Unit tests for partition and loss injection."""

import random

import pytest

from repro.net import ConstantLatency, Host, Network, PartitionController
from repro.sim import Simulator
from tests.net.test_network import Recorder


@pytest.fixture()
def rig():
    sim = Simulator(seed=1)
    network = Network(sim, default_latency=ConstantLatency(0.001))
    nodes = []
    for index in range(3):
        node = Recorder(f"n{index}", sim)
        network.attach(node, Host(f"s{index}"))
        nodes.append(node)
    return sim, network, nodes


class TestPartitionController:
    def test_allows_by_default(self):
        controller = PartitionController()
        assert controller.allows("a", "b", random.Random(1))

    def test_block_and_unblock_is_bidirectional(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.block("a", "b")
        assert not controller.allows("a", "b", rng)
        assert not controller.allows("b", "a", rng)
        controller.unblock("a", "b")
        assert controller.allows("a", "b", rng)

    def test_isolate(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.isolate("a")
        assert not controller.allows("a", "b", rng)
        assert not controller.allows("c", "a", rng)
        assert controller.allows("b", "c", rng)
        controller.heal_endpoint("a")
        assert controller.allows("a", "b", rng)

    def test_group_partition_and_heal(self):
        controller = PartitionController()
        rng = random.Random(1)
        controller.partition(["a", "b"], ["c"])
        assert not controller.allows("a", "c", rng)
        assert not controller.allows("c", "b", rng)
        assert controller.allows("a", "b", rng)
        controller.heal_all()
        assert controller.allows("a", "c", rng)

    def test_drop_probability(self):
        controller = PartitionController()
        controller.drop_probability = 0.5
        rng = random.Random(42)
        outcomes = [controller.allows("a", "b", rng) for __ in range(1000)]
        dropped = outcomes.count(False)
        assert 400 < dropped < 600


class TestNetworkIntegration:
    def test_blocked_messages_are_dropped(self, rig):
        sim, network, nodes = rig
        network.partitions.block("n0", "n1")
        nodes[0].send("n1", "blocked")
        nodes[0].send("n2", "open")
        sim.run()
        assert nodes[1].received == []
        assert len(nodes[2].received) == 1
        assert network.messages_dropped == 1

    def test_heal_restores_delivery(self, rig):
        sim, network, nodes = rig
        network.partitions.isolate("n1")
        nodes[0].send("n1", "lost")
        sim.run()
        network.partitions.heal_all()
        nodes[0].send("n1", "delivered")
        sim.run()
        assert [kind for __, kind, __ in nodes[1].received] == ["delivered"]
