"""Unit tests for hosts, links and message routing."""

import pytest

from repro.net import ConstantLatency, Endpoint, Host, Network
from repro.net.host import round_robin_placement
from repro.sim import Simulator


class Recorder(Endpoint):
    """Endpoint that records deliveries with their arrival times."""

    def __init__(self, endpoint_id, sim):
        super().__init__(endpoint_id)
        self.sim = sim
        self.received = []

    def on_message(self, message):
        self.received.append((self.sim.now, message.kind, message.payload))


@pytest.fixture()
def rig():
    sim = Simulator(seed=1)
    network = Network(sim, default_latency=ConstantLatency(0.010))
    host_a, host_b = Host("server-1"), Host("server-2")
    alice, bob = Recorder("alice", sim), Recorder("bob", sim)
    network.attach(alice, host_a)
    network.attach(bob, host_b)
    return sim, network, alice, bob


class TestHost:
    def test_serialization_delay(self):
        host = Host("s", bandwidth_bps=1000)
        assert host.serialization_delay(500) == pytest.approx(0.5)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Host("s", bandwidth_bps=0)

    def test_duplicate_attach_rejected(self):
        host = Host("s")
        host.attach("n1")
        with pytest.raises(ValueError):
            host.attach("n1")

    def test_round_robin_placement(self):
        hosts = [Host(f"s{i}") for i in range(3)]
        placement = round_robin_placement(hosts, [f"n{i}" for i in range(7)])
        assert placement["n0"].name == "s0"
        assert placement["n3"].name == "s0"
        assert placement["n5"].name == "s2"
        counts = {}
        for host in placement.values():
            counts[host.name] = counts.get(host.name, 0) + 1
        assert counts == {"s0": 3, "s1": 2, "s2": 2}

    def test_round_robin_requires_hosts(self):
        with pytest.raises(ValueError):
            round_robin_placement([], ["n0"])


class TestRouting:
    def test_delivery_after_latency(self, rig):
        sim, network, alice, bob = rig
        alice.send("bob", "ping", payload="hello", size_bytes=0)
        sim.run()
        assert len(bob.received) == 1
        at, kind, payload = bob.received[0]
        assert kind == "ping"
        assert payload == "hello"
        assert at == pytest.approx(0.010)

    def test_serialization_adds_delay(self, rig):
        sim, network, alice, bob = rig
        big = 125_000_000  # 1 second at 1 Gbit/s
        alice.send("bob", "bulk", size_bytes=big)
        sim.run()
        assert bob.received[0][0] == pytest.approx(1.010)

    def test_unknown_destination_raises(self, rig):
        __, network, alice, __ = rig
        with pytest.raises(KeyError):
            alice.send("nobody", "ping")

    def test_duplicate_endpoint_id_rejected(self, rig):
        sim, network, __, __ = rig
        with pytest.raises(ValueError):
            network.attach(Recorder("alice", sim), Host("server-3"))

    def test_same_host_uses_loopback(self):
        sim = Simulator(seed=1)
        network = Network(sim, default_latency=ConstantLatency(0.010))
        host = Host("server-1")
        a, b = Recorder("a", sim), Recorder("b", sim)
        network.attach(a, host)
        network.attach(b, host)
        a.send("b", "local", size_bytes=0)
        sim.run()
        assert b.received[0][0] < 0.001  # loopback, not the 10 ms default

    def test_fifo_per_pair_despite_jitter(self):
        # With jittered latency, later messages must still arrive after
        # earlier ones on the same directed pair.
        from repro.net import NetemLatency

        sim = Simulator(seed=7)
        network = Network(sim, default_latency=NetemLatency(mean=0.012, jitter=0.011))
        network.attach((a := Recorder("a", sim)), Host("s1"))
        network.attach((b := Recorder("b", sim)), Host("s2"))
        for i in range(200):
            a.send("b", "seq", payload=i, size_bytes=0)
        sim.run()
        received_order = [payload for __, __, payload in b.received]
        assert received_order == list(range(200))

    def test_broadcast_excludes_sender(self, rig):
        sim, network, alice, bob = rig
        count = network.broadcast("alice", ["alice", "bob"], "gossip", payload=1)
        sim.run()
        assert count == 1
        assert len(bob.received) == 1
        assert len(alice.received) == 0

    def test_message_counters(self, rig):
        sim, network, alice, bob = rig
        alice.send("bob", "one")
        alice.send("bob", "two")
        sim.run()
        assert network.messages_sent == 2
        assert network.messages_dropped == 0


class TestBroadcastAtomicity:
    def test_unknown_destination_fails_before_any_send(self, rig):
        sim, network, alice, bob = rig
        with pytest.raises(KeyError, match="nobody"):
            network.broadcast("alice", ["bob", "nobody", "alice"], "gossip")
        # Atomic: the typo'd peer list sent nothing, not a partial fan-out.
        assert network.messages_sent == 0
        sim.run()
        assert bob.received == []

    def test_generator_destinations_are_validated(self, rig):
        sim, network, alice, bob = rig
        with pytest.raises(KeyError):
            network.broadcast("alice", (d for d in ["bob", "ghost"]), "gossip")
        assert network.messages_sent == 0


class TestDeliverySideTrace:
    def _traced_rig(self):
        from repro.trace.config import TraceConfig
        from repro.trace.tracer import Tracer

        sim = Simulator(seed=1)
        tracer = Tracer(TraceConfig())
        sim.set_tracer(tracer)
        network = Network(sim, default_latency=ConstantLatency(0.010))
        alice, bob = Recorder("alice", sim), Recorder("bob", sim)
        network.attach(alice, Host("server-1"))
        network.attach(bob, Host("server-2"))
        return sim, tracer, network, alice, bob

    def test_delivered_message_emits_deliver_event(self):
        sim, tracer, network, alice, bob = self._traced_rig()
        alice.send("bob", "ping", size_bytes=0)
        sim.run()
        names = [event.name for event in tracer.events]
        assert names.count("net.send") == 1
        assert names.count("net.deliver") == 1
        assert tracer.metrics.histogram("net.latency", system="net").count == 1

    def test_in_flight_message_to_crashed_endpoint_never_appears_delivered(self):
        sim, tracer, network, alice, bob = self._traced_rig()
        alice.send("bob", "ping", size_bytes=0)
        # Crash bob while the message is in flight: it was sent, but it
        # must be dropped — and traced as dropped — at delivery time.
        sim.schedule(0.005, lambda: network.set_endpoint_down("bob"))
        sim.run()
        assert bob.received == []
        assert network.messages_dropped == 1
        names = [event.name for event in tracer.events]
        assert names.count("net.send") == 1
        assert names.count("net.deliver") == 0
        assert names.count("net.drop") == 1
        # The latency histogram counts deliveries, so it agrees with the
        # deliver events rather than the sends.
        assert tracer.metrics.histogram("net.latency", system="net").count == 0

    def test_undelivered_message_at_run_bound_not_recorded(self):
        sim, tracer, network, alice, bob = self._traced_rig()
        alice.send("bob", "ping", size_bytes=0)
        sim.run(until=0.001)  # delivery is at 0.010, still in flight
        names = [event.name for event in tracer.events]
        assert names.count("net.send") == 1
        assert names.count("net.deliver") == 0
        assert tracer.metrics.histogram("net.latency", system="net").count == 0
