"""Access distribution sampler statistics."""

import collections
import random

import pytest

from repro.workloads import AccessSpec, ZipfianSampler, build_sampler


def _histogram(sampler, n, draws, seed=11):
    rng = random.Random(seed)
    counts = collections.Counter(sampler.sample(rng, n) for __ in range(draws))
    return counts


class TestUniform:
    def test_covers_universe_evenly(self):
        sampler = build_sampler(AccessSpec(kind="uniform", key_space=10))
        counts = _histogram(sampler, 10, 20_000)
        assert set(counts) == set(range(10))
        assert max(counts.values()) < 1.2 * min(counts.values())

    def test_single_item_universe(self):
        sampler = build_sampler(AccessSpec(kind="uniform"))
        assert sampler.sample(random.Random(0), 1) == 0


class TestZipfian:
    def test_rank_zero_hottest_and_monotone(self):
        sampler = ZipfianSampler(0.99)
        counts = _histogram(sampler, 100, 50_000)
        assert counts[0] > counts[1] > counts[5]
        assert counts[0] > 0.1 * 50_000  # the classic YCSB head weight

    def test_bounds_respected(self):
        sampler = ZipfianSampler(0.5)
        rng = random.Random(5)
        assert all(0 <= sampler.sample(rng, 7) < 7 for __ in range(5000))

    def test_growing_universe_keeps_head(self):
        # Reads sample over a growing history; the cached zeta must
        # extend, not reset, and the head must stay the head.
        sampler = ZipfianSampler(0.99)
        small = _histogram(sampler, 10, 10_000, seed=1)
        large = _histogram(sampler, 1000, 10_000, seed=2)
        assert small[0] > small[1]
        assert large[0] > large[1]
        assert max(large) < 1000

    def test_theta_bounds(self):
        with pytest.raises(ValueError, match="theta"):
            ZipfianSampler(1.0)


class TestHotspot:
    def test_hot_set_gets_hot_probability(self):
        sampler = build_sampler(
            AccessSpec(kind="hotspot", hot_fraction=0.1, hot_prob=0.9, key_space=100)
        )
        counts = _histogram(sampler, 100, 20_000)
        hot = sum(count for index, count in counts.items() if index < 10)
        assert hot == pytest.approx(18_000, rel=0.05)

    def test_degenerate_small_universe(self):
        sampler = build_sampler(
            AccessSpec(kind="hotspot", hot_fraction=0.5, hot_prob=0.9, key_space=1)
        )
        assert sampler.sample(random.Random(0), 1) == 0


class TestBuildSampler:
    def test_disjoint_has_no_sampler(self):
        with pytest.raises(ValueError, match="disjoint"):
            build_sampler(AccessSpec(kind="disjoint"))
