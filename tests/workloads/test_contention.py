"""End-to-end contention effects: skew must move real metrics.

These are the subsystem's acceptance checks. Fabric's
execute-order-validate pipeline turns key collisions into MVCC
invalidations (append-then-invalid, so NoT is untouched — Section 5.4
counts those as received); Corda's vault scan and notary make skew
show up in MFLS/MTPS directly.
"""

import pytest

from repro.coconut.config import BenchmarkConfig
from repro.coconut.runner import BenchmarkRunner
from repro.workloads import AccessSpec, PhaseOverride, WorkloadSpec


def _rmw_spec(access: AccessSpec) -> WorkloadSpec:
    return WorkloadSpec(
        name="contention",
        access=access,
        phases=(("Set", PhaseOverride(mix=(("Rmw", 1.0),))),),
    )


def _run(system: str, workload, scale: float = 0.05):
    config = BenchmarkConfig(
        system=system,
        iel="KeyValue",
        rate_limit=100 if system == "fabric" else 4,
        phases=("Set",),
        scale=scale,
        workload=workload,
        seed=2330,
    )
    result = BenchmarkRunner(keep_last_rig=False).run(config)
    return result.phases["Set"]


class TestFabricMvcc:
    @pytest.fixture(scope="class")
    def phases(self):
        zipf = AccessSpec(kind="zipfian", theta=0.99, key_space=200, shared=True)
        return {
            "disjoint": _run("fabric", _rmw_spec(AccessSpec(kind="disjoint"))),
            "zipfian": _run("fabric", _rmw_spec(zipf)),
        }

    def test_disjoint_rmw_never_invalidates(self, phases):
        assert phases["disjoint"].invalidated.mean == 0

    def test_zipfian_rmw_invalidates(self, phases):
        assert phases["zipfian"].invalidated.mean > 0

    def test_invalidated_txs_still_count_as_received(self, phases):
        # Paper Section 5.4: appended-but-invalid transactions are
        # received, so NoT must not collapse under contention.
        assert phases["zipfian"].received.mean > 0


class TestCordaSkewSensitivity:
    def test_zipfian_shifts_corda_metrics(self):
        zipf = AccessSpec(kind="zipfian", theta=0.99, key_space=200, shared=True)
        disjoint = _run("corda_os", _rmw_spec(AccessSpec(kind="disjoint")))
        skewed = _run("corda_os", _rmw_spec(zipf))
        assert (
            skewed.mfls.mean != disjoint.mfls.mean
            or skewed.mtps.mean != disjoint.mtps.mean
        )
