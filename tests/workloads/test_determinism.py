"""Workload determinism and legacy-generator equivalence.

The subsystem's two core guarantees:

* the default spec reproduces the pre-workloads generator exactly — the
  verbatim copy of the old ``WorkloadPlan`` below is the frozen
  reference, so any drift in the legacy path fails here;
* non-default specs are deterministic: one seed produces one payload
  stream, across runs and across ``--jobs N`` process layouts.
"""

import typing

from repro.coconut.config import BenchmarkConfig
from repro.coconut.runner import BenchmarkRunner
from repro.coconut.workload import WorkloadPlan
from repro.parallel import ParallelExecutor
from repro.sim.rng import RngRegistry
from repro.workloads import AccessSpec, ArrivalSpec, WorkloadSpec


class LegacyWorkloadPlan:
    """The pre-workloads generator, copied verbatim as the reference."""

    def __init__(self, client_id: str, threads: int) -> None:
        self.client_id = client_id
        self.threads = threads
        self._counters: typing.Dict[typing.Tuple[int, str], int] = {}

    def _next_index(self, thread: int, phase: str) -> int:
        key = (thread, phase)
        self._counters[key] = self._counters.get(key, 0) + 1
        return self._counters[key]

    def _key(self, thread: int, index: int) -> str:
        return f"{self.client_id}:t{thread}:k{index}"

    def _account(self, thread: int, index: int) -> str:
        return f"{self.client_id}:t{thread}:a{index}"

    def args_for(self, iel: str, phase: str, thread: int) -> typing.Dict[str, object]:
        index = self._next_index(thread, phase)
        if iel == "DoNothing":
            return {}
        if iel == "KeyValue":
            if phase == "Set":
                return {"key": self._key(thread, index), "value": f"value-{index}"}
            if phase == "Get":
                return {"key": self._key(thread, index)}
        if iel == "BankingApp":
            if phase == "CreateAccount":
                return {
                    "account": self._account(thread, index),
                    "checking": 1_000,
                    "saving": 500,
                }
            if phase == "SendPayment":
                return {
                    "source": self._account(thread, index),
                    "destination": self._account(thread, index + 1),
                    "amount": 1,
                }
            if phase == "Balance":
                return {"account": self._account(thread, index)}
        raise KeyError(f"no workload for IEL {iel!r} phase {phase!r}")


UNITS = {
    "DoNothing": ("DoNothing",),
    "KeyValue": ("Set", "Get"),
    "BankingApp": ("CreateAccount", "SendPayment", "Balance"),
}


class TestLegacyEquivalence:
    def test_default_spec_streams_match_old_generator(self):
        for iel, phases in UNITS.items():
            new = WorkloadPlan("client-0", threads=4, spec=WorkloadSpec())
            old = LegacyWorkloadPlan("client-0", threads=4)
            for phase in phases:
                for __ in range(25):
                    for thread in range(4):
                        function, args = new.payload_for(iel, phase, thread)
                        assert function == phase
                        assert args == old.args_for(iel, phase, thread)

    def test_default_spec_never_creates_rng_streams(self):
        streams: typing.List[str] = []

        def factory(name):
            streams.append(name)
            return RngRegistry(0).stream(name)

        plan = WorkloadPlan("client-0", threads=2, spec=None, rng_streams=factory)
        for phase in ("Set", "Get"):
            for __ in range(10):
                plan.payload_for("KeyValue", phase, 0)
        assert streams == []

    def test_default_spec_unit_matches_none_workload(self):
        # workload=WorkloadSpec() and workload=None must be one run:
        # same label, same metrics, byte for byte.
        results = []
        for workload in (None, WorkloadSpec()):
            config = BenchmarkConfig(
                system="quorum", iel="DoNothing", rate_limit=20,
                scale=0.01, workload=workload, seed=5,
            )
            results.append(BenchmarkRunner(keep_last_rig=False).run(config).to_dict())
        assert results[0] == results[1]


def _zipfian_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="det-check",
        arrival=ArrivalSpec(kind="poisson"),
        access=AccessSpec(kind="zipfian", theta=0.9, key_space=50, shared=True),
        mix=(("Get", 1.0), ("Rmw", 3.0)),
    )


def _config(seed: int = 7) -> BenchmarkConfig:
    return BenchmarkConfig(
        system="quorum", iel="KeyValue", rate_limit=20,
        phases=("Set",), scale=0.01, workload=_zipfian_spec(), seed=seed,
    )


class TestSpecDeterminism:
    def test_same_seed_same_result(self):
        first = BenchmarkRunner(keep_last_rig=False).run(_config()).to_dict()
        second = BenchmarkRunner(keep_last_rig=False).run(_config()).to_dict()
        assert first == second

    def test_different_seed_different_payload_stream(self):
        registry_a, registry_b = RngRegistry(1), RngRegistry(2)
        plan_a = WorkloadPlan("c", 1, spec=_zipfian_spec(), rng_streams=registry_a.stream)
        plan_b = WorkloadPlan("c", 1, spec=_zipfian_spec(), rng_streams=registry_b.stream)
        stream_a = [plan_a.payload_for("KeyValue", "Set", 0) for __ in range(40)]
        stream_b = [plan_b.payload_for("KeyValue", "Set", 0) for __ in range(40)]
        assert stream_a != stream_b

    def test_jobs2_matches_serial(self):
        configs = [_config(), _config(seed=8)]
        serial = [
            BenchmarkRunner(keep_last_rig=False).run(config).to_dict()
            for config in configs
        ]
        outcomes = ParallelExecutor(jobs=2).run_units(configs)
        assert [o.result.to_dict() for o in outcomes] == serial

    def test_workload_rng_isolated_from_simulation_streams(self):
        # Two identical runs except for the workload spec must draw the
        # same values from every non-workload stream: adding a spec may
        # change what is sent, but not any other component's randomness.
        registry_plain, registry_spec = RngRegistry(3), RngRegistry(3)
        plain_first = registry_plain.stream("network:core").random()
        plan = WorkloadPlan(
            "c", 1, spec=_zipfian_spec(), rng_streams=registry_spec.stream
        )
        for __ in range(20):
            plan.payload_for("KeyValue", "Set", 0)
        assert registry_spec.stream("network:core").random() == plain_first
