"""Arrival schedule pacing semantics."""

import random

import pytest

from repro.workloads import ArrivalSpec, build_schedule


def _send_times(schedule, horizon):
    """Simulated send instants under an ideal (no-latency) loop."""
    t = schedule.initial_delay()
    if t is None:
        return []
    times = [t]
    while True:
        delay = schedule.next_delay(times[-1])
        if delay is None or times[-1] + delay >= horizon:
            return times
        times.append(times[-1] + delay)


class TestConstant:
    def test_matches_legacy_interval_exactly(self):
        schedule = build_schedule(
            ArrivalSpec(), 0.25, 30.0, 0, 4, lambda: random.Random(0)
        )
        assert schedule.initial_delay() == 0.0
        # The same float, not merely a close one: default-spec runs must
        # replay the legacy event sequence bit for bit.
        assert schedule.next_delay(0.0) == 0.25
        assert schedule.next_delay(17.3) == 0.25


class TestPoisson:
    def test_mean_interval_close_to_configured(self):
        schedule = build_schedule(
            ArrivalSpec(kind="poisson"), 0.5, 30.0, 0, 1, lambda: random.Random(7)
        )
        gaps = [schedule.next_delay(0.0) for __ in range(4000)]
        assert sum(gaps) / len(gaps) == pytest.approx(0.5, rel=0.05)

    def test_deterministic_for_one_seed(self):
        gaps = []
        for __ in range(2):
            schedule = build_schedule(
                ArrivalSpec(kind="poisson"), 0.5, 30.0, 0, 1, lambda: random.Random(3)
            )
            gaps.append([schedule.next_delay(0.0) for __ in range(50)])
        assert gaps[0] == gaps[1]


class TestBurst:
    def test_cycle_preserves_average_rate(self):
        # interval 1s, on 5 / off 5 -> default factor 2: each 10 s cycle
        # carries exactly the 10 sends a constant schedule would.
        schedule = build_schedule(
            ArrivalSpec(kind="burst", on_s=5.0, off_s=5.0),
            1.0, 30.0, 0, 1, lambda: random.Random(0),
        )
        times = _send_times(schedule, 30.0)
        assert len(times) == 30
        assert all(t % 10.0 < 5.0 for t in times)

    def test_silence_in_off_window(self):
        schedule = build_schedule(
            ArrivalSpec(kind="burst", on_s=2.0, off_s=8.0),
            1.0, 30.0, 0, 1, lambda: random.Random(0),
        )
        times = _send_times(schedule, 20.0)
        assert all(t % 10.0 < 2.0 for t in times)


class TestRamp:
    def test_gaps_shrink_toward_end_factor(self):
        schedule = build_schedule(
            ArrivalSpec(kind="ramp", start_factor=0.5, end_factor=2.0),
            1.0, 10.0, 0, 1, lambda: random.Random(0),
        )
        assert schedule.next_delay(0.0) == pytest.approx(2.0)
        assert schedule.next_delay(10.0) == pytest.approx(0.5)
        assert schedule.next_delay(25.0) == pytest.approx(0.5)  # clamped


class TestReplay:
    def test_replays_recorded_offsets(self):
        schedule = build_schedule(
            ArrivalSpec(kind="replay", times=(0.5, 1.0, 4.0)),
            1.0, 30.0, 0, 1, lambda: random.Random(0),
        )
        times = _send_times(schedule, 30.0)
        assert times == [0.5, 1.0, 4.0]

    def test_trace_splits_round_robin_across_threads(self):
        spec = ArrivalSpec(kind="replay", times=(0.0, 1.0, 2.0, 3.0))
        a = build_schedule(spec, 1.0, 30.0, 0, 2, lambda: random.Random(0))
        b = build_schedule(spec, 1.0, 30.0, 1, 2, lambda: random.Random(0))
        assert _send_times(a, 30.0) == [0.0, 2.0]
        assert _send_times(b, 30.0) == [1.0, 3.0]

    def test_exhausted_schedule_stops(self):
        schedule = build_schedule(
            ArrivalSpec(kind="replay", times=(0.0,)),
            1.0, 30.0, 0, 1, lambda: random.Random(0),
        )
        assert schedule.initial_delay() == 0.0
        assert schedule.next_delay(0.0) is None

    def test_late_schedule_never_goes_negative(self):
        schedule = build_schedule(
            ArrivalSpec(kind="replay", times=(0.0, 1.0)),
            1.0, 30.0, 0, 1, lambda: random.Random(0),
        )
        schedule.initial_delay()
        assert schedule.next_delay(5.0) == 0.0


class TestRngIsolation:
    def test_only_poisson_draws_randomness(self):
        calls = []

        def factory():
            calls.append(1)
            return random.Random(0)

        for kind in ("constant", "burst", "ramp"):
            spec = ArrivalSpec(kind=kind)
            build_schedule(spec, 1.0, 30.0, 0, 1, factory)
        assert calls == []
        build_schedule(ArrivalSpec(kind="poisson"), 1.0, 30.0, 0, 1, factory)
        assert calls == [1]
