"""WorkloadSpec construction, validation and (de)serialisation."""

import pytest

from repro.workloads import (
    DEFAULT_WORKLOAD,
    AccessSpec,
    ArrivalSpec,
    PhaseOverride,
    WorkloadSpec,
    normalize_mix,
)


class TestArrivalSpec:
    def test_default_is_constant(self):
        assert ArrivalSpec().kind == "constant"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="arrival kind"):
            ArrivalSpec(kind="lognormal")

    def test_burst_validation(self):
        with pytest.raises(ValueError, match="on_s"):
            ArrivalSpec(kind="burst", on_s=0.0)
        with pytest.raises(ValueError, match="factor"):
            ArrivalSpec(kind="burst", factor=-1.0)

    def test_burst_factor_defaults_to_rate_preserving(self):
        spec = ArrivalSpec(kind="burst", on_s=2.0, off_s=6.0)
        assert spec.burst_factor == 4.0
        assert ArrivalSpec(kind="burst", factor=3.0).burst_factor == 3.0

    def test_ramp_validation(self):
        with pytest.raises(ValueError, match="ramp factors"):
            ArrivalSpec(kind="ramp", start_factor=0.0)

    def test_replay_needs_sorted_times(self):
        with pytest.raises(ValueError, match="non-empty"):
            ArrivalSpec(kind="replay")
        with pytest.raises(ValueError, match="sorted"):
            ArrivalSpec(kind="replay", times=(2.0, 1.0))
        with pytest.raises(ValueError, match=">= 0"):
            ArrivalSpec(kind="replay", times=(-1.0,))


class TestAccessSpec:
    def test_default_is_disjoint(self):
        assert AccessSpec().kind == "disjoint"

    def test_theta_bounds(self):
        with pytest.raises(ValueError, match="theta"):
            AccessSpec(kind="zipfian", theta=1.0)
        with pytest.raises(ValueError, match="theta"):
            AccessSpec(kind="zipfian", theta=0.0)

    def test_hotspot_bounds(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            AccessSpec(kind="hotspot", hot_fraction=1.0)
        with pytest.raises(ValueError, match="hot_prob"):
            AccessSpec(kind="hotspot", hot_prob=1.5)

    def test_key_space_bound(self):
        with pytest.raises(ValueError, match="key_space"):
            AccessSpec(kind="uniform", key_space=0)


class TestMix:
    def test_normalize_sorts_and_floats(self):
        assert normalize_mix({"Set": 1, "Get": 9}) == (("Get", 9.0), ("Set", 1.0))

    def test_empty_is_none(self):
        assert normalize_mix(None) is None
        assert normalize_mix({}) is None

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            normalize_mix({"Get": 0})
        with pytest.raises(ValueError, match="duplicate"):
            normalize_mix((("Get", 1.0), ("Get", 2.0)))


class TestWorkloadSpec:
    def test_default_spec_is_legacy(self):
        assert DEFAULT_WORKLOAD.is_default
        assert DEFAULT_WORKLOAD.short_label() == ""
        assert DEFAULT_WORKLOAD.to_dict() == {}

    def test_phase_override_resolution(self):
        spec = WorkloadSpec(
            access=AccessSpec(kind="uniform"),
            phases=(("Get", PhaseOverride(arrival=ArrivalSpec(kind="poisson"))),),
        )
        assert not spec.is_default
        resolved = spec.for_phase("Get")
        assert resolved.arrival.kind == "poisson"
        assert resolved.access.kind == "uniform"
        assert spec.for_phase("Set").arrival.kind == "constant"

    def test_duplicate_phase_overrides_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadSpec(
                phases=(("Set", PhaseOverride()), ("Set", PhaseOverride()))
            )

    def test_validate_for_unknown_phase(self):
        spec = WorkloadSpec(phases=(("Scan", PhaseOverride()),))
        with pytest.raises(ValueError, match="Scan"):
            spec.validate_for("KeyValue", ("Set", "Get"))

    def test_validate_for_unknown_operation(self):
        spec = WorkloadSpec(mix=(("Transfer", 1.0),))
        with pytest.raises(ValueError, match="Transfer"):
            spec.validate_for("KeyValue", ("Set", "Get"))

    def test_json_roundtrip(self):
        spec = WorkloadSpec(
            name="demo",
            arrival=ArrivalSpec(kind="burst", on_s=2.0, off_s=3.0),
            access=AccessSpec(kind="zipfian", theta=0.9, key_space=50, shared=True),
            mix=(("Get", 9.0), ("Set", 1.0)),
            phases=(("Get", PhaseOverride(arrival=ArrivalSpec(kind="poisson"))),),
        )
        assert WorkloadSpec.from_json(spec.to_json()) == spec

    def test_unknown_json_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown workload fields"):
            WorkloadSpec.from_json('{"arrivals": {"kind": "poisson"}}')
        with pytest.raises(ValueError, match="unknown arrival fields"):
            WorkloadSpec.from_json('{"arrival": {"kind": "poisson", "rate": 3}}')

    def test_short_label_is_stable_and_distinct(self):
        a = WorkloadSpec(access=AccessSpec(kind="uniform"))
        b = WorkloadSpec(access=AccessSpec(kind="uniform", key_space=7))
        assert a.short_label() == a.short_label()
        assert a.short_label() != b.short_label()

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text('{"access": {"kind": "uniform"}}')
        assert WorkloadSpec.from_json_file(str(path)).access.kind == "uniform"
