"""Unit and property tests for Merkle trees."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleTree


class TestMerkleTree:
    def test_empty_tree_has_root(self):
        tree = MerkleTree([])
        assert len(tree) == 0
        assert len(tree.root) == 64

    def test_single_leaf_root_is_leaf_hash(self):
        tree = MerkleTree(["only"])
        assert tree.root == tree.leaf_hashes[0]

    def test_root_changes_with_content(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["a", "c"]).root

    def test_root_changes_with_order(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root

    def test_proof_out_of_range(self):
        with pytest.raises(IndexError):
            MerkleTree(["a"]).proof(1)

    def test_proof_verifies(self):
        leaves = [f"tx-{i}" for i in range(7)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert MerkleTree.verify_proof(leaf, proof, tree.root)

    def test_wrong_leaf_fails_proof(self):
        leaves = [f"tx-{i}" for i in range(5)]
        tree = MerkleTree(leaves)
        proof = tree.proof(2)
        assert not MerkleTree.verify_proof("tampered", proof, tree.root)

    def test_wrong_root_fails_proof(self):
        leaves = [f"tx-{i}" for i in range(5)]
        tree = MerkleTree(leaves)
        proof = tree.proof(2)
        assert not MerkleTree.verify_proof(leaves[2], proof, "f" * 64)


class TestMerkleProperties:
    @given(st.lists(st.text(), min_size=1, max_size=40))
    def test_all_proofs_verify(self, leaves):
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert MerkleTree.verify_proof(leaf, tree.proof(index), tree.root)

    @given(st.lists(st.integers(), min_size=1, max_size=25), st.integers(), st.data())
    def test_foreign_leaf_rejected(self, leaves, foreign, data):
        if foreign in leaves:
            return
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        assert not MerkleTree.verify_proof(foreign, tree.proof(index), tree.root)

    @given(st.lists(st.text(), min_size=1, max_size=20))
    def test_rebuild_gives_same_root(self, leaves):
        assert MerkleTree(leaves).root == MerkleTree(leaves).root
