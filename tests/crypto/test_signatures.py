"""Unit tests for simulated signatures and quorum arithmetic."""

import pytest

from repro.crypto import KeyPair, SignatureError, Signer
from repro.crypto.signatures import max_faulty, quorum_size


class TestSignatures:
    def test_sign_and_verify(self):
        keypair = KeyPair.generate("node-1")
        signer = Signer(keypair)
        signature = signer.sign({"amount": 10})
        assert Signer.verify(signature, {"amount": 10}, keypair)

    def test_wrong_message_fails(self):
        keypair = KeyPair.generate("node-1")
        signature = Signer(keypair).sign({"amount": 10})
        assert not Signer.verify(signature, {"amount": 11}, keypair)

    def test_wrong_key_fails(self):
        keypair = KeyPair.generate("node-1")
        other = KeyPair.generate("node-2")
        signature = Signer(keypair).sign("msg")
        assert not Signer.verify(signature, "msg", other)

    def test_keypairs_are_unique_per_generate(self):
        assert KeyPair.generate("same").public != KeyPair.generate("same").public

    def test_require_valid_raises(self):
        keypair = KeyPair.generate("node-1")
        signature = Signer(keypair).sign("msg")
        Signer.require_valid(signature, "msg", keypair)
        with pytest.raises(SignatureError):
            Signer.require_valid(signature, "other", keypair)


class TestQuorums:
    @pytest.mark.parametrize(
        "n, expected",
        [(1, 1), (4, 3), (7, 5), (10, 7), (13, 9), (16, 11), (32, 22)],
    )
    def test_bft_quorum(self, n, expected):
        assert quorum_size(n, "bft") == expected

    @pytest.mark.parametrize("n, expected", [(1, 1), (3, 2), (4, 3), (5, 3), (32, 17)])
    def test_crash_quorum(self, n, expected):
        assert quorum_size(n, "crash") == expected

    @pytest.mark.parametrize("n, expected", [(4, 1), (7, 2), (16, 5), (32, 10)])
    def test_bft_max_faulty(self, n, expected):
        assert max_faulty(n, "bft") == expected

    def test_bft_quorum_intersects_in_correct_replica(self):
        # Any two quorums overlap in at least f+1 replicas, i.e. at least
        # one correct one — the core BFT safety argument.
        for n in range(1, 50):
            q = quorum_size(n, "bft")
            f = max_faulty(n, "bft")
            assert 2 * q - n >= f + 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            quorum_size(0)
        with pytest.raises(ValueError):
            quorum_size(4, "unknown")
        with pytest.raises(ValueError):
            max_faulty(0)
        with pytest.raises(ValueError):
            max_faulty(4, "unknown")
