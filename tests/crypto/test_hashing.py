"""Unit tests for canonical hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import GENESIS_HASH, canonical_bytes, hash_bytes, hash_object

# Values the canonical encoder supports, nested a couple of levels deep.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(),
    st.binary(),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


class TestCanonicalEncoding:
    def test_dict_key_order_irrelevant(self):
        assert hash_object({"a": 1, "b": 2}) == hash_object({"b": 2, "a": 1})

    def test_type_tags_disambiguate(self):
        # Same repr-ish content, different types, must differ.
        assert hash_object("1") != hash_object(1)
        assert hash_object([1, 2]) != hash_object([12])
        assert hash_object(["ab"]) != hash_object(["a", "b"])
        assert hash_object(True) != hash_object(1)
        assert hash_object(b"x") != hash_object("x")

    def test_none_encodes(self):
        assert hash_object(None) == hash_object(None)
        assert hash_object(None) != hash_object(0)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            hash_object(object())

    def test_object_with_canonical_tuple(self):
        class Thing:
            def canonical_tuple(self):
                return ("thing", 1)

        assert hash_object(Thing()) == hash_object(Thing())

    def test_genesis_sentinel_shape(self):
        assert len(GENESIS_HASH) == 64
        assert set(GENESIS_HASH) == {"0"}

    def test_hash_bytes_is_sha256(self):
        assert hash_bytes(b"") == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"


class TestHashingProperties:
    @given(values)
    def test_deterministic(self, value):
        assert hash_object(value) == hash_object(value)

    @given(values)
    def test_digest_is_hex64(self, value):
        digest = hash_object(value)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    @given(st.lists(values, min_size=2, max_size=2).filter(lambda pair: pair[0] != pair[1]))
    def test_distinct_values_distinct_encodings(self, pair):
        # Canonical encodings must differ for non-equal values (hash
        # collisions would need a SHA-256 break).
        left, right = pair
        assert canonical_bytes(left) != canonical_bytes(right)
