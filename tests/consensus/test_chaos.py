"""Randomized crash/recovery schedules against every BFT engine.

The invariant under test is agreement: however replicas crash and
recover (within the fault bound), no two replicas may ever decide
different values for the same slot.
"""

import pytest

from repro.consensus.diembft import DiemBftEngine
from repro.consensus.ibft import IbftEngine
from repro.consensus.raft import RaftEngine
from tests.consensus.harness import Cluster


def chaos_schedule(cluster, victims, rng, stop_window=(0.5, 4.0), down_time=(1.0, 3.0)):
    for victim in victims:
        down_at = rng.uniform(*stop_window)
        up_at = down_at + rng.uniform(*down_time)
        cluster.sim.schedule(down_at, lambda v=victim: v.stop())
        cluster.sim.schedule(up_at, lambda v=victim: v.recover())


class TestIbftChaos:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_divergence_under_crash_recover(self, seed):
        feed = {h: f"block-{h}" for h in range(12)}
        cluster = Cluster(
            7,
            lambda ctx, node_id: IbftEngine(
                ctx, proposal_factory=feed.get, round_timeout=0.5
            ),
            seed=seed,
        )
        cluster.start()
        rng = cluster.sim.rng.stream("chaos")
        victims = rng.sample(cluster.engines(), 2)
        chaos_schedule(cluster, victims, rng)
        for i in range(60):
            for engine in cluster.engines():
                cluster.sim.schedule(0.3 * i, lambda e=engine: e.maybe_propose())
        cluster.sim.run(until=30.0)
        cluster.assert_all_consistent()
        # Liveness: a quorum of replicas kept deciding.
        deciders = sum(1 for nid in cluster.node_ids if cluster.decided_proposals(nid))
        assert deciders >= 5


class TestDiemChaos:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_divergence_under_crash_recover(self, seed):
        def factory(round_number):
            return f"block-{round_number}" if round_number < 40 else None

        cluster = Cluster(
            7,
            lambda ctx, node_id: DiemBftEngine(
                ctx, proposal_factory=factory, round_interval=0.1, round_timeout=0.6
            ),
            seed=seed + 100,
        )
        cluster.start()
        rng = cluster.sim.rng.stream("chaos")
        victims = rng.sample(cluster.engines(), 2)
        chaos_schedule(cluster, victims, rng)
        cluster.sim.run(until=30.0)
        cluster.assert_all_consistent()
        longest = max(len(cluster.decided_proposals(nid)) for nid in cluster.node_ids)
        assert longest >= 5


class TestRaftChaos:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_divergence_under_crash_recover(self, seed):
        cluster = Cluster(5, lambda ctx, node_id: RaftEngine(ctx), seed=seed + 200)
        cluster.start()
        rng = cluster.sim.rng.stream("chaos")
        victims = rng.sample(cluster.engines(), 2)
        chaos_schedule(cluster, victims, rng, stop_window=(1.0, 6.0))

        def feeder():
            for i in range(15):
                yield cluster.sim.timeout(0.5)
                for engine in cluster.engines():
                    if engine.is_leader:
                        engine.submit_proposal(f"entry-{i}")
                        break

        cluster.sim.spawn(feeder())
        cluster.sim.run(until=30.0)
        cluster.assert_all_consistent()
        longest = max(len(cluster.decided_proposals(nid)) for nid in cluster.node_ids)
        assert longest >= 5
