"""Tests for the Raft engine: election, replication, fault tolerance."""

import pytest

from repro.consensus.raft import LEADER, RaftEngine
from tests.consensus.harness import Cluster


def build(n=3, seed=1):
    cluster = Cluster(n, lambda ctx, node_id: RaftEngine(ctx), seed=seed)
    cluster.start()
    return cluster


def current_leader(cluster):
    leaders = [e for e in cluster.engines() if e.role == LEADER and not e._stopped]
    return leaders


class TestElection:
    def test_exactly_one_leader_emerges(self):
        cluster = build()
        cluster.sim.run(until=2.0)
        leaders = current_leader(cluster)
        assert len(leaders) == 1

    def test_all_followers_learn_leader(self):
        cluster = build()
        cluster.sim.run(until=2.0)
        leader = current_leader(cluster)[0]
        for engine in cluster.engines():
            assert engine.leader_id == leader.replica_id

    def test_leader_crash_triggers_reelection(self):
        cluster = build(n=5)
        cluster.sim.run(until=2.0)
        old_leader = current_leader(cluster)[0]
        old_leader.stop()
        cluster.sim.run(until=4.0)
        leaders = current_leader(cluster)
        assert len(leaders) == 1
        assert leaders[0] is not old_leader

    def test_terms_increase_monotonically(self):
        cluster = build()
        cluster.sim.run(until=2.0)
        term_after_first = max(e.current_term for e in cluster.engines())
        current_leader(cluster)[0].stop()
        cluster.sim.run(until=4.0)
        assert max(e.current_term for e in cluster.engines()) > term_after_first


class TestReplication:
    def test_proposal_decided_on_all_replicas(self):
        cluster = build()
        cluster.sim.run(until=2.0)
        leader = current_leader(cluster)[0]
        leader.submit_proposal("block-1")
        leader.submit_proposal("block-2")
        cluster.sim.run(until=3.0)
        for node_id in cluster.node_ids:
            assert cluster.decided_proposals(node_id) == ["block-1", "block-2"]
        cluster.assert_all_consistent()

    def test_non_leader_submission_ignored(self):
        cluster = build()
        cluster.sim.run(until=2.0)
        follower = next(e for e in cluster.engines() if e.role != LEADER)
        follower.submit_proposal("lost-block")
        cluster.sim.run(until=3.0)
        assert all(not cluster.decided_proposals(nid) for nid in cluster.node_ids)

    def test_decisions_survive_leader_change(self):
        cluster = build(n=5)
        cluster.sim.run(until=2.0)
        leader = current_leader(cluster)[0]
        leader.submit_proposal("pre-crash")
        cluster.sim.run(until=3.0)
        leader.stop()
        cluster.sim.run(until=5.0)
        new_leader = current_leader(cluster)[0]
        new_leader.submit_proposal("post-crash")
        cluster.sim.run(until=7.0)
        survivors = [nid for nid in cluster.node_ids if nid != leader.replica_id]
        for node_id in survivors:
            assert cluster.decided_proposals(node_id) == ["pre-crash", "post-crash"]

    def test_recovered_replica_catches_up(self):
        cluster = build(n=3)
        cluster.sim.run(until=2.0)
        leader = current_leader(cluster)[0]
        follower = next(e for e in cluster.engines() if e.role != LEADER)
        follower.stop()
        leader.submit_proposal("while-down")
        cluster.sim.run(until=3.0)
        follower.recover()
        cluster.sim.run(until=6.0)
        assert "while-down" in cluster.decided_proposals(follower.replica_id)


class TestQuorumLoss:
    def test_no_majority_means_no_progress(self):
        cluster = build(n=3)
        cluster.sim.run(until=2.0)
        leader = current_leader(cluster)[0]
        followers = [e for e in cluster.engines() if e is not leader]
        for follower in followers:
            follower.stop()
        leader.submit_proposal("stuck-block")
        cluster.sim.run(until=10.0)
        assert "stuck-block" not in cluster.decided_proposals(leader.replica_id)

    def test_progress_resumes_after_heal(self):
        cluster = build(n=3)
        cluster.sim.run(until=2.0)
        leader = current_leader(cluster)[0]
        followers = [e for e in cluster.engines() if e is not leader]
        for follower in followers:
            follower.stop()
        leader.submit_proposal("delayed-block")
        cluster.sim.run(until=5.0)
        for follower in followers:
            follower.recover()
        cluster.sim.run(until=15.0)
        # Some leader eventually commits the entry (possibly after a
        # re-election in which the old leader's longer log wins).
        committed_anywhere = any(
            "delayed-block" in cluster.decided_proposals(nid) for nid in cluster.node_ids
        )
        assert committed_anywhere

    def test_partition_heals_consistently(self):
        cluster = build(n=5, seed=3)
        cluster.sim.run(until=2.0)
        leader = current_leader(cluster)[0]
        others = [nid for nid in cluster.node_ids if nid != leader.replica_id]
        minority = [leader.replica_id, others[0]]
        majority = others[1:]
        cluster.network.partitions.partition(minority, majority)
        leader.submit_proposal("minority-block")  # cannot commit
        cluster.sim.run(until=6.0)
        assert "minority-block" not in cluster.decided_proposals(majority[0])
        cluster.network.partitions.heal_all()
        cluster.sim.run(until=12.0)
        cluster.assert_all_consistent()
