"""Tests for the DPoS engine: witness schedule, slot production, misses."""

import pytest

from repro.consensus.dpos import DposEngine
from tests.consensus.harness import Cluster


class SlotFeed:
    """Factory producing a block for every slot up to a count."""

    def __init__(self, count=100):
        self.count = count
        self.produced = []

    def factory(self, slot):
        if slot >= self.count:
            return None
        proposal = f"block-slot-{slot}"
        self.produced.append(proposal)
        return proposal


def build(n=4, witnesses=3, interval=1.0, feed=None, seed=1):
    feed = feed or SlotFeed()
    witness_ids = [f"n{i}" for i in range(witnesses)]
    cluster = Cluster(
        n,
        lambda ctx, node_id: DposEngine(
            ctx,
            witnesses=witness_ids,
            block_interval=interval,
            proposal_factory=feed.factory,
        ),
        seed=seed,
    )
    cluster.start()
    return cluster, feed


class TestSchedule:
    def test_witness_rotation(self):
        cluster, __ = build()
        engine = cluster.engines()[0]
        assert [engine.witness_for_slot(s) for s in range(6)] == [
            "n0", "n1", "n2", "n0", "n1", "n2",
        ]

    def test_slot_times_match_interval(self):
        cluster, __ = build(interval=2.0)
        engine = cluster.engines()[0]
        assert engine.slot_time(0) == 2.0
        assert engine.slot_time(4) == 10.0

    def test_invalid_configuration(self):
        cluster = Cluster(4, lambda ctx, nid: DposEngine(ctx, witnesses=["n0"]))
        with pytest.raises(ValueError):
            DposEngine(cluster.engines()[0].context, witnesses=[])
        with pytest.raises(ValueError):
            DposEngine(cluster.engines()[0].context, witnesses=["ghost"])
        with pytest.raises(ValueError):
            DposEngine(cluster.engines()[0].context, witnesses=["n0"], block_interval=0)


class TestProduction:
    def test_one_block_per_interval(self):
        cluster, feed = build(interval=1.0)
        cluster.sim.run(until=10.5)
        decided = cluster.decided_proposals("n3")  # non-witness observer
        assert len(decided) == 10

    def test_all_nodes_apply_same_chain(self):
        cluster, __ = build()
        cluster.sim.run(until=8.5)
        cluster.assert_all_consistent()
        lengths = {len(cluster.decided_proposals(nid)) for nid in cluster.node_ids}
        assert lengths == {8}

    def test_heights_consecutive(self):
        cluster, __ = build()
        cluster.sim.run(until=6.5)
        sequences = [d.sequence for d in cluster.decisions_of("n0")]
        assert sequences == list(range(len(sequences)))

    def test_producers_follow_schedule(self):
        cluster, __ = build()
        cluster.sim.run(until=6.5)
        proposers = [d.proposer for d in cluster.decisions_of("n3")]
        assert proposers == ["n0", "n1", "n2", "n0", "n1", "n2"]

    def test_empty_factory_misses_slot(self):
        cluster, feed = build(feed=SlotFeed(count=3))
        cluster.sim.run(until=10.5)
        assert len(cluster.decided_proposals("n0")) == 3
        producers = [e for e in cluster.engines() if e.is_witness]
        assert sum(e.missed_slots for e in producers) > 0


class TestWitnessFailure:
    def test_stopped_witness_misses_only_its_slots(self):
        cluster, __ = build(interval=1.0)
        cluster.nodes["n1"].engine.stop()
        cluster.sim.run(until=9.5)
        proposers = [d.proposer for d in cluster.decisions_of("n3")]
        assert "n1" not in proposers
        # n0 and n2 still produced all their slots: 6 of 9.
        assert len(proposers) == 6

    def test_recovered_witness_resumes(self):
        cluster, __ = build(interval=1.0)
        engine = cluster.nodes["n1"].engine
        engine.stop()
        cluster.sim.schedule(4.5, engine.recover)
        cluster.sim.run(until=12.5)
        proposers = [d.proposer for d in cluster.decisions_of("n3")]
        assert "n1" in proposers

    def test_throughput_independent_of_node_count(self):
        # The core scalability property from Section 5.8.2: adding
        # non-witness nodes never slows block production.
        small, __ = build(n=4, witnesses=3, interval=1.0)
        small.sim.run(until=10.5)
        large, __ = build(n=32, witnesses=3, interval=1.0)
        large.sim.run(until=10.5)
        assert len(small.decided_proposals("n3")) == len(large.decided_proposals("n31"))
