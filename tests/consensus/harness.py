"""Shared rig for consensus engine tests: a cluster of engine replicas
wired through a simulated network."""

from repro.consensus.base import EngineContext
from repro.net import ConstantLatency, Endpoint, Host, Message, Network
from repro.sim import Simulator


class EngineHost(Endpoint):
    """An endpoint that routes all traffic into one engine replica."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.engine = None
        self.decisions = []

    def on_message(self, message):
        self.engine.on_message(message.kind, message.src, message.payload)


class Cluster:
    """A group of engine replicas plus the plumbing between them."""

    def __init__(self, n, engine_factory, latency=0.002, seed=1):
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, default_latency=ConstantLatency(latency))
        self.node_ids = [f"n{i}" for i in range(n)]
        self.nodes = {}
        for node_id in self.node_ids:
            node = EngineHost(node_id)
            self.network.attach(node, Host(f"host-{node_id}"))
            self.nodes[node_id] = node
        for node_id, node in self.nodes.items():
            context = EngineContext(
                sim=self.sim,
                replica_id=node_id,
                peers=self.node_ids,
                send_fn=lambda dst, kind, payload, size, src=node_id: self.network.send(
                    Message(src, dst, kind, payload, size)
                ),
                decide_fn=lambda decision, me=node: me.decisions.append(decision),
                rng=self.sim.rng.stream(f"engine:{node_id}"),
            )
            node.engine = engine_factory(context, node_id)

    def start(self):
        for node in self.nodes.values():
            node.engine.start()

    def engines(self):
        return [self.nodes[node_id].engine for node_id in self.node_ids]

    def decisions_of(self, node_id):
        return self.nodes[node_id].decisions

    def decided_proposals(self, node_id):
        return [d.proposal for d in self.nodes[node_id].decisions]

    def assert_all_consistent(self):
        """Every pair of replicas agrees on the common prefix of decisions."""
        per_node = [self.decided_proposals(node_id) for node_id in self.node_ids]
        for other in per_node[1:]:
            common = min(len(per_node[0]), len(other))
            assert per_node[0][:common] == other[:common], "replicas diverged"
