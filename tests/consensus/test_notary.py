"""Tests for the Corda notary uniqueness service."""

import pytest

from repro.consensus.notary import NotaryService
from repro.sim import Simulator
from repro.storage.utxo import StateRef


@pytest.fixture()
def sim():
    return Simulator(seed=1)


def run_request(sim, notary, tx_id, refs):
    process = notary.notarise(tx_id, refs)
    sim.run()
    return process.value


class TestUniqueness:
    def test_first_spend_accepted(self, sim):
        notary = NotaryService(sim)
        ok, conflicts = run_request(sim, notary, "tx1", [StateRef("genesis", 0)])
        assert ok
        assert conflicts == []
        assert notary.accepted == 1

    def test_double_spend_rejected(self, sim):
        notary = NotaryService(sim)
        ref = StateRef("genesis", 0)
        run_request(sim, notary, "tx1", [ref])
        ok, conflicts = run_request(sim, notary, "tx2", [ref])
        assert not ok
        assert conflicts == [ref]
        assert notary.rejected == 1

    def test_partial_conflict_rejects_whole_transaction(self, sim):
        notary = NotaryService(sim)
        spent = StateRef("genesis", 0)
        fresh = StateRef("genesis", 1)
        run_request(sim, notary, "tx1", [spent])
        ok, conflicts = run_request(sim, notary, "tx2", [spent, fresh])
        assert not ok
        assert conflicts == [spent]
        # The fresh input must remain spendable.
        ok2, __ = run_request(sim, notary, "tx3", [fresh])
        assert ok2

    def test_empty_input_transaction_accepted(self, sim):
        # Issuance transactions consume nothing.
        notary = NotaryService(sim)
        ok, conflicts = run_request(sim, notary, "tx1", [])
        assert ok
        assert conflicts == []

    def test_is_spent(self, sim):
        notary = NotaryService(sim)
        ref = StateRef("genesis", 0)
        assert not notary.is_spent(ref)
        run_request(sim, notary, "tx1", [ref])
        assert notary.is_spent(ref)


class TestServiceModel:
    def test_serial_notary_processes_one_at_a_time(self, sim):
        notary = NotaryService(sim, workers=1, service_time=1.0)
        done_times = []

        def track(index):
            process = notary.notarise(f"tx{index}", [StateRef("g", index)])
            process.add_callback(lambda e: done_times.append(sim.now))

        for index in range(3):
            track(index)
        sim.run()
        assert done_times == [1.0, 2.0, 3.0]

    def test_parallel_notary_overlaps(self, sim):
        notary = NotaryService(sim, workers=4, service_time=1.0)
        done_times = []
        for index in range(4):
            process = notary.notarise(f"tx{index}", [StateRef("g", index)])
            process.add_callback(lambda e: done_times.append(sim.now))
        sim.run()
        assert done_times == [1.0, 1.0, 1.0, 1.0]

    def test_queue_depth_visible(self, sim):
        notary = NotaryService(sim, workers=1, service_time=1.0)
        for index in range(5):
            notary.notarise(f"tx{index}", [])
        sim.run(until=0.5)
        assert notary.queue_depth == 4

    def test_racing_spends_one_winner(self, sim):
        # Two transactions race for the same state through a parallel
        # notary: exactly one must win.
        notary = NotaryService(sim, workers=2, service_time=0.5)
        ref = StateRef("genesis", 0)
        first = notary.notarise("tx1", [ref])
        second = notary.notarise("tx2", [ref])
        sim.run()
        outcomes = [first.value[0], second.value[0]]
        assert sorted(outcomes) == [False, True]

    def test_negative_service_time_rejected(self, sim):
        with pytest.raises(ValueError):
            NotaryService(sim, service_time=-0.1)
