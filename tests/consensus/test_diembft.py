"""Tests for the DiemBFT engine: chained rounds, 3-chain commit, pacemaker."""

from repro.consensus.diembft import DiemBftEngine
from tests.consensus.harness import Cluster


class RoundFeed:
    """Proposal factory shared by all validators: one proposal per round."""

    def __init__(self, count=0, prefix="block"):
        self.count = count
        self.prefix = prefix
        self.served = {}

    def factory(self, round_number):
        if round_number < self.count:
            proposal = f"{self.prefix}-{round_number}"
            self.served[round_number] = proposal
            return proposal
        return None


def build(n=4, feed=None, seed=1, round_interval=0.1, round_timeout=1.0):
    feed = feed or RoundFeed()
    cluster = Cluster(
        n,
        lambda ctx, node_id: DiemBftEngine(
            ctx,
            proposal_factory=feed.factory,
            round_interval=round_interval,
            round_timeout=round_timeout,
        ),
        seed=seed,
    )
    cluster.start()
    return cluster, feed


class TestChainedCommit:
    def test_blocks_commit_after_two_chain(self):
        cluster, feed = build(feed=RoundFeed(count=10))
        cluster.sim.run(until=10.0)
        decided = cluster.decided_proposals(cluster.node_ids[0])
        # NIL (None) rounds after the feed runs dry certify the tail.
        real = [p for p in decided if p is not None]
        assert len(real) >= 8
        assert real == [f"block-{i}" for i in range(len(real))]

    def test_all_replicas_agree(self):
        cluster, feed = build(feed=RoundFeed(count=8))
        cluster.sim.run(until=10.0)
        cluster.assert_all_consistent()
        lengths = {len(cluster.decided_proposals(nid)) for nid in cluster.node_ids}
        assert max(lengths) >= 5

    def test_commit_order_matches_round_order(self):
        cluster, feed = build(feed=RoundFeed(count=6))
        cluster.sim.run(until=10.0)
        decisions = cluster.decisions_of(cluster.node_ids[0])
        sequences = [d.sequence for d in decisions]
        assert sequences == sorted(sequences)
        assert sequences == list(range(len(sequences)))

    def test_leaders_rotate(self):
        cluster, feed = build(feed=RoundFeed(count=8))
        cluster.sim.run(until=10.0)
        proposers = {d.proposer for d in cluster.decisions_of(cluster.node_ids[0])}
        assert len(proposers) >= 3  # rotation across validators

    def test_rounds_advance_via_qc_not_timeout(self):
        cluster, feed = build(feed=RoundFeed(count=5), round_timeout=100.0)
        cluster.sim.run(until=10.0)
        # With an effectively infinite timeout, progress must come from
        # quorum certificates alone.
        assert len(cluster.decided_proposals(cluster.node_ids[0])) >= 3


class TestPacemaker:
    def test_dead_leader_round_skipped_by_timeout(self):
        feed = RoundFeed(count=10)
        cluster, __ = build(feed=feed, round_timeout=0.5)
        # Kill the leader of round 1 before it can propose: round 0's
        # leader is peers[0], round 1's is peers[1].
        dead = cluster.nodes[cluster.node_ids[1]].engine
        dead.stop()
        cluster.sim.run(until=15.0)
        live = [nid for nid in cluster.node_ids if nid != dead.replica_id]
        decided = [p for p in cluster.decided_proposals(live[0]) if p is not None]
        # Chain continues without the dead leader's rounds.
        assert len(decided) >= 3
        proposers = {d.proposer for d in cluster.decisions_of(live[0])}
        assert dead.replica_id not in proposers

    def test_consistency_under_leader_failure(self):
        feed = RoundFeed(count=12)
        cluster, __ = build(feed=feed, round_timeout=0.5, seed=5)
        dead = cluster.nodes[cluster.node_ids[2]].engine
        cluster.sim.schedule(1.0, dead.stop)
        cluster.sim.run(until=20.0)
        cluster.assert_all_consistent()

    def test_empty_rounds_commit_nothing(self):
        cluster, feed = build(feed=RoundFeed(count=0))
        cluster.sim.run(until=5.0)
        for node_id in cluster.node_ids:
            decided = cluster.decided_proposals(node_id)
            assert all(p is None for p in decided)
