"""Tests for the PBFT engine: three-phase commit, ordering, view change."""

import pytest

from repro.consensus.pbft import PbftEngine
from tests.consensus.harness import Cluster


class ProposalFeed:
    """A shared queue of proposals that the current primary drains."""

    def __init__(self, items=None):
        self.items = list(items or [])

    def factory(self, sequence):
        return self.items.pop(0) if self.items else None


def build(n=4, feed=None, seed=1, progress_timeout=1.0):
    feed = feed or ProposalFeed()
    cluster = Cluster(
        n,
        lambda ctx, node_id: PbftEngine(
            ctx, proposal_factory=feed.factory, progress_timeout=progress_timeout
        ),
        seed=seed,
    )
    cluster.start()
    return cluster, feed


def primary_of(cluster):
    return next(e for e in cluster.engines() if e.is_primary)


def pump(cluster, times, interval=0.2):
    """Drive the block-publishing timer: primary proposes repeatedly."""
    for i in range(times):
        cluster.sim.schedule(i * interval, lambda: primary_of(cluster).maybe_propose())
    cluster.sim.run(until=times * interval + 3.0)


class TestHappyPath:
    def test_single_proposal_commits_everywhere(self):
        cluster, feed = build()
        feed.items = ["block-0"]
        pump(cluster, times=1)
        for node_id in cluster.node_ids:
            assert cluster.decided_proposals(node_id) == ["block-0"]

    def test_sequence_order_preserved(self):
        cluster, feed = build()
        feed.items = [f"block-{i}" for i in range(10)]
        pump(cluster, times=10)
        for node_id in cluster.node_ids:
            assert cluster.decided_proposals(node_id) == [f"block-{i}" for i in range(10)]
        cluster.assert_all_consistent()

    def test_decision_metadata(self):
        cluster, feed = build()
        feed.items = ["block-0"]
        pump(cluster, times=1)
        decision = cluster.decisions_of(cluster.node_ids[0])[0]
        assert decision.sequence == 0
        assert decision.proposer == primary_of(cluster).replica_id
        assert decision.decided_at > 0

    def test_empty_factory_proposes_nothing(self):
        cluster, feed = build()
        pump(cluster, times=3)
        assert all(not cluster.decided_proposals(nid) for nid in cluster.node_ids)

    def test_non_primary_cannot_propose(self):
        cluster, feed = build()
        backup = next(e for e in cluster.engines() if not e.is_primary)
        backup.submit_proposal("rogue-block")
        cluster.sim.run(until=3.0)
        assert all(not cluster.decided_proposals(nid) for nid in cluster.node_ids)


class TestFaultTolerance:
    def test_one_crashed_backup_tolerated(self):
        cluster, feed = build(n=4)
        backup = next(e for e in cluster.engines() if not e.is_primary)
        backup.stop()
        feed.items = ["block-0", "block-1"]
        pump(cluster, times=2)
        live = [nid for nid in cluster.node_ids if nid != backup.replica_id]
        for node_id in live:
            assert cluster.decided_proposals(node_id) == ["block-0", "block-1"]

    def test_two_crashed_backups_block_progress_with_n4(self):
        cluster, feed = build(n=4)
        backups = [e for e in cluster.engines() if not e.is_primary][:2]
        for backup in backups:
            backup.stop()
        feed.items = ["block-0"]
        pump(cluster, times=1)
        live = [nid for nid in cluster.node_ids
                if nid not in [b.replica_id for b in backups]]
        for node_id in live:
            assert cluster.decided_proposals(node_id) == []

    def test_complete_preprepare_commits_without_primary(self):
        # Once the pre-prepare is out, the backups can finish the
        # three-phase protocol among themselves.
        cluster, feed = build(n=4)
        old_primary = primary_of(cluster)
        old_primary.submit_proposal("last-block")
        old_primary.stop()
        cluster.sim.run(until=5.0)
        live = [nid for nid in cluster.node_ids if nid != old_primary.replica_id]
        for node_id in live:
            assert cluster.decided_proposals(node_id) == ["last-block"]

    def test_silent_primary_causes_view_change(self):
        cluster, feed = build(n=4, progress_timeout=0.5)
        old_primary = primary_of(cluster)
        old_primary.stop()  # dies before proposing anything
        # The node layer reports queued batches on the backups.
        for engine in cluster.engines():
            if engine is not old_primary:
                engine.note_pending_work()
        cluster.sim.run(until=10.0)
        live_engines = [e for e in cluster.engines() if e is not old_primary]
        assert all(e.view >= 1 for e in live_engines)
        new_primary = next(e for e in live_engines if e.is_primary)
        assert new_primary is not old_primary

    def test_progress_resumes_in_new_view(self):
        cluster, feed = build(n=4, progress_timeout=0.5)
        old_primary = primary_of(cluster)
        old_primary.stop()
        for engine in cluster.engines():
            if engine is not old_primary:
                engine.note_pending_work()
        cluster.sim.run(until=10.0)
        # Node layer re-proposes through the new primary.
        feed.items = ["recovered-block"]
        new_primary = primary_of(cluster)
        new_primary.maybe_propose()
        cluster.sim.run(until=15.0)
        live = [nid for nid in cluster.node_ids if nid != old_primary.replica_id]
        for node_id in live:
            assert cluster.decided_proposals(node_id) == ["recovered-block"]

    def test_equivocating_preprepare_ignored(self):
        cluster, feed = build(n=4)
        primary = primary_of(cluster)
        target = cluster.nodes[cluster.node_ids[1]]
        # Deliver a conflicting pre-prepare for an occupied slot directly.
        target.engine._on_pre_prepare(
            primary.replica_id,
            {"view": 0, "seq": 0, "proposal": "real", "digest": "real"},
        )
        target.engine._on_pre_prepare(
            primary.replica_id,
            {"view": 0, "seq": 0, "proposal": "fake", "digest": "fake"},
        )
        slot = target.engine._slot(0)
        assert slot.proposal == "real"


class TestPartitionRecovery:
    def test_view_change_survives_partition_heal(self):
        # A 2|2 split leaves neither side with a view-change quorum; the
        # periodic vote re-broadcast must carry the change across the heal.
        cluster, feed = build(n=4, progress_timeout=0.5)
        for engine in cluster.engines():
            engine.enable_recovery()
        ids = cluster.node_ids
        cluster.network.partitions.partition(ids[:2], ids[2:])
        feed.items = ["stranded-block"]
        primary_of(cluster).maybe_propose()
        for engine in cluster.engines():
            engine.note_pending_work()
        cluster.sim.run(until=5.0)
        assert all(e.view == 0 for e in cluster.engines())
        assert all(not cluster.decided_proposals(nid) for nid in ids)
        cluster.network.partitions.heal_all()
        cluster.sim.run(until=10.0)
        assert all(e.view >= 1 for e in cluster.engines())
        # The new primary re-drives: fresh proposals commit everywhere.
        feed.items = ["post-heal-block"] * 4
        for i in range(8):
            cluster.sim.schedule(0.1 * i, lambda: primary_of(cluster).maybe_propose())
        cluster.sim.run(until=15.0)
        for node_id in ids:
            assert "post-heal-block" in cluster.decided_proposals(node_id)
        cluster.assert_all_consistent()

    def test_isolated_backup_pulls_missed_decisions(self):
        # A backup cut off (not crashed) never runs recover(); the gap
        # between its executed watermark and incoming traffic must
        # trigger a sync on its own.
        cluster, feed = build(n=4)
        for engine in cluster.engines():
            engine.enable_recovery()
        victim = cluster.node_ids[-1]
        assert not cluster.nodes[victim].engine.is_primary
        cluster.network.partitions.isolate(victim)
        feed.items = [f"block-{i}" for i in range(12)]
        pump(cluster, times=12)
        assert cluster.decided_proposals(victim) == []
        cluster.network.partitions.heal_endpoint(victim)
        feed.items = ["block-12"]
        cluster.sim.schedule(0.1, lambda: primary_of(cluster).maybe_propose())
        cluster.sim.run(until=cluster.sim.now + 10.0)
        assert cluster.decided_proposals(victim) == [f"block-{i}" for i in range(13)]
        cluster.assert_all_consistent()


class TestSafetyProperty:
    def test_replicas_never_diverge_under_random_crashes(self):
        # Crash-and-recover backups at random while proposals flow; all
        # replicas must agree on a common decision prefix.
        for seed in range(4):
            feed = ProposalFeed([f"block-{i}" for i in range(8)])
            cluster = Cluster(
                7,
                lambda ctx, node_id: PbftEngine(
                    ctx, proposal_factory=feed.factory, progress_timeout=1.0
                ),
                seed=seed,
            )
            cluster.start()
            rng = cluster.sim.rng.stream("chaos")
            backups = [e for e in cluster.engines() if not e.is_primary]
            victims = rng.sample(backups, 2)
            for offset, victim in enumerate(victims):
                cluster.sim.schedule(0.5 + offset, lambda v=victim: v.stop())
                cluster.sim.schedule(2.5 + offset, lambda v=victim: v.recover())
            for i in range(8):
                cluster.sim.schedule(
                    0.2 * i,
                    lambda: next(e for e in cluster.engines() if e.is_primary).maybe_propose(),
                )
            cluster.sim.run(until=10.0)
            cluster.assert_all_consistent()
