"""Tests for the IBFT engine: height-sequential commit, round changes."""

from repro.consensus.ibft import IbftEngine
from tests.consensus.harness import Cluster


class HeightFeed:
    """Proposal factory keyed by height, shared by all validators."""

    def __init__(self):
        self.by_height = {}

    def factory(self, height):
        return self.by_height.get(height)


def build(n=4, seed=1, round_timeout=1.0):
    feed = HeightFeed()
    cluster = Cluster(
        n,
        lambda ctx, node_id: IbftEngine(
            ctx, proposal_factory=feed.factory, round_timeout=round_timeout
        ),
        seed=seed,
    )
    cluster.start()
    return cluster, feed


def proposer_of(cluster):
    return next(e for e in cluster.engines() if e.is_proposer)


def pump(cluster, ticks, period=0.5):
    """Drive the blockperiod timer on every validator."""
    for i in range(ticks):
        for engine in cluster.engines():
            cluster.sim.schedule(i * period, lambda e=engine: e.maybe_propose())
    cluster.sim.run(until=ticks * period + 3.0)


class TestHappyPath:
    def test_blocks_commit_in_height_order(self):
        cluster, feed = build()
        feed.by_height = {h: f"block-{h}" for h in range(5)}
        pump(cluster, ticks=8)
        for node_id in cluster.node_ids:
            decided = cluster.decided_proposals(node_id)
            assert decided == [f"block-{h}" for h in range(len(decided))]
            assert len(decided) == 5
        cluster.assert_all_consistent()

    def test_proposer_rotates_with_height(self):
        cluster, feed = build()
        engine = cluster.engines()[0]
        proposers = {engine.proposer_for(h, 0) for h in range(4)}
        assert proposers == set(cluster.node_ids)

    def test_decision_sequence_is_height(self):
        cluster, feed = build()
        feed.by_height = {0: "genesis-block"}
        pump(cluster, ticks=2)
        decision = cluster.decisions_of(cluster.node_ids[0])[0]
        assert decision.sequence == 0

    def test_only_proposer_may_propose(self):
        cluster, feed = build()
        outsider = next(e for e in cluster.engines() if not e.is_proposer)
        outsider.submit_proposal("rogue")
        cluster.sim.run(until=2.0)
        assert all(not cluster.decided_proposals(nid) for nid in cluster.node_ids)

    def test_no_proposal_no_progress(self):
        cluster, feed = build()
        pump(cluster, ticks=3)
        assert all(not cluster.decided_proposals(nid) for nid in cluster.node_ids)


class TestRoundChange:
    def test_dead_proposer_rotates_out(self):
        cluster, feed = build(n=4, round_timeout=0.5)
        feed.by_height = {0: "block-0"}
        dead = proposer_of(cluster)
        dead.stop()
        pump(cluster, ticks=10, period=0.5)
        live = [nid for nid in cluster.node_ids if nid != dead.replica_id]
        for node_id in live:
            assert cluster.decided_proposals(node_id) == ["block-0"]
        # The block was proposed by the round-1 proposer, not the dead one.
        decision = cluster.decisions_of(live[0])[0]
        assert decision.proposer != dead.replica_id

    def test_round_number_advances_on_timeout(self):
        cluster, feed = build(n=4, round_timeout=0.5)
        dead = proposer_of(cluster)
        dead.stop()
        cluster.sim.run(until=3.0)
        live_engines = [e for e in cluster.engines() if e is not dead]
        assert all(e.round >= 1 for e in live_engines)

    def test_multiple_heights_with_failed_rounds(self):
        cluster, feed = build(n=4, round_timeout=0.5)
        feed.by_height = {h: f"block-{h}" for h in range(3)}
        dead = proposer_of(cluster)
        dead.stop()
        pump(cluster, ticks=20, period=0.5)
        live = [nid for nid in cluster.node_ids if nid != dead.replica_id]
        for node_id in live:
            assert cluster.decided_proposals(node_id) == ["block-0", "block-1", "block-2"]

    def test_two_dead_validators_stall_n4(self):
        cluster, feed = build(n=4, round_timeout=0.5)
        feed.by_height = {0: "block-0"}
        engines = cluster.engines()
        engines[0].stop()
        engines[1].stop()
        pump(cluster, ticks=10, period=0.5)
        assert all(not cluster.decided_proposals(nid) for nid in cluster.node_ids)


class TestPartitionRecovery:
    def test_round_change_survives_partition_heal(self):
        # During a 2|2 split neither side reaches the round-change
        # quorum, and the one vote each validator casts is lost across
        # the cut. Only the periodic re-broadcast from the re-armed
        # round timer lets the group advance after the heal.
        cluster, feed = build(n=4, round_timeout=0.5)
        for engine in cluster.engines():
            engine.enable_recovery()
        ids = cluster.node_ids
        cluster.network.partitions.partition(ids[:2], ids[2:])
        cluster.sim.run(until=3.0)
        assert all(e.round == 0 for e in cluster.engines())
        cluster.network.partitions.heal_all()
        cluster.sim.run(until=6.0)
        assert all(e.round >= 1 for e in cluster.engines())
        # Liveness is back: the current round's proposer commits a block.
        feed.by_height = {0: "block-0"}
        pump(cluster, ticks=10, period=0.5)
        for node_id in ids:
            assert cluster.decided_proposals(node_id) == ["block-0"]
        cluster.assert_all_consistent()
