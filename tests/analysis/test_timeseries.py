"""Unit tests for time-series analysis of client records."""

import pytest

from repro.analysis.timeseries import latency_percentiles, loss_timeline, throughput_over_time
from repro.coconut.client import PayloadRecord


def record(start, end=None, status="pending"):
    return PayloadRecord(payload_id=f"p{start}", phase="Set",
                         start_time=start, end_time=end, status=status)


class TestThroughputOverTime:
    def test_buckets_and_gaps(self):
        records = [record(0.0, 1.0, "received"), record(0.0, 2.0, "received"),
                   record(0.0, 25.0, "received")]
        series = throughput_over_time(records, bucket_seconds=10.0)
        assert series[0] == (0.0, 0.2)   # two confirmations in [0, 10)
        assert series[1] == (10.0, 0.0)  # the stall bucket
        assert series[2] == (20.0, 0.1)

    def test_empty(self):
        assert throughput_over_time([]) == []
        assert throughput_over_time([record(0.0)]) == []

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            throughput_over_time([], bucket_seconds=0)


class TestLatencyPercentiles:
    def test_known_values(self):
        records = [record(0.0, float(i + 1), "received") for i in range(100)]
        pct = latency_percentiles(records)
        assert pct[50.0] == pytest.approx(50.0)
        assert pct[90.0] == pytest.approx(90.0)
        assert pct[99.0] == pytest.approx(99.0)

    def test_no_received(self):
        assert latency_percentiles([record(0.0)]) == {50.0: 0.0, 90.0: 0.0, 99.0: 0.0}

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            latency_percentiles([record(0.0, 1.0, "received")], percentiles=(150.0,))


class TestLossTimeline:
    def test_per_bucket_fractions(self):
        records = [
            record(1.0, 2.0, "received"),
            record(2.0),  # lost, same bucket
            record(11.0),  # lost, next bucket
        ]
        timeline = loss_timeline(records, bucket_seconds=10.0)
        assert timeline == [(0.0, 0.5), (10.0, 1.0)]

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            loss_timeline([], bucket_seconds=-1)
