"""Unit tests for shape-comparison helpers."""

import pytest

from repro.analysis.compare import (
    ShapeCheck,
    ordering_preserved,
    render_checks,
    within_factor,
)


class TestWithinFactor:
    def test_inside_band(self):
        assert within_factor(10.0, 12.0, factor=1.5)
        assert within_factor(12.0, 10.0, factor=1.5)

    def test_outside_band(self):
        assert not within_factor(10.0, 40.0, factor=2.0)
        assert not within_factor(40.0, 10.0, factor=2.0)

    def test_zero_reference(self):
        assert within_factor(0.0, 0.0, factor=2.0)
        assert not within_factor(5.0, 0.0, factor=2.0)
        assert not within_factor(0.0, 5.0, factor=2.0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, factor=0.5)


class TestOrderingPreserved:
    def test_matching_order(self):
        pairs = [(100.0, 90.0), (50.0, 60.0), (10.0, 8.0)]
        assert ordering_preserved(pairs)

    def test_violated_order(self):
        pairs = [(100.0, 10.0), (50.0, 60.0)]
        assert not ordering_preserved(pairs)

    def test_tolerance_ignores_near_ties(self):
        # References 100 vs 98 are within 15% of each other: measured
        # order between them is free.
        pairs = [(100.0, 5.0), (98.0, 6.0), (10.0, 1.0)]
        assert ordering_preserved(pairs, tolerance=0.15)
        assert not ordering_preserved(pairs, tolerance=0.0)

    def test_empty_and_single(self):
        assert ordering_preserved([])
        assert ordering_preserved([(1.0, 99.0)])


class TestShapeCheck:
    def test_factor_constructor(self):
        check = ShapeCheck.factor("t", measured=10.0, reference=12.0, factor=1.5)
        assert check.passed
        assert "band" in check.detail

    def test_ordering_constructor(self):
        check = ShapeCheck.ordering("t", [(10.0, 5.0), (1.0, 0.5)])
        assert check.passed

    def test_failure_mode_constructor(self):
        assert ShapeCheck.failure_mode("t", 0.0, expect_failure=True).passed
        assert not ShapeCheck.failure_mode("t", 10.0, expect_failure=True).passed
        assert ShapeCheck.failure_mode("t", 10.0, expect_failure=False).passed

    def test_render(self):
        checks = [
            ShapeCheck("good", True, "fine"),
            ShapeCheck("bad", False, "broken"),
        ]
        text = render_checks(checks)
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "1/2" in text


def _phase(p50=1.0, p95=2.0, p99=4.0, mean=1.2):
    from repro.coconut.metrics import PhaseMetrics
    from repro.coconut.results import PhaseResult

    rep = PhaseMetrics(
        phase="Set", repetition=0, expected=10, received=10, failed=0,
        t_first_send=0.0, t_last_receive=10.0, duration=10.0, tps=1.0,
        mean_fls=mean, p50_fls=p50, p95_fls=p95, p99_fls=p99,
    )
    return PhaseResult(phase="Set", repetitions=[rep])


class TestLatencyProfile:
    def test_profile_and_amplification(self):
        from repro.analysis.compare import latency_profile

        profile = latency_profile(_phase())
        assert profile.p50 == 1.0
        assert profile.p99 == 4.0
        assert profile.tail_amplification == pytest.approx(4.0)
        assert "p99" in profile.describe()

    def test_zero_p50_has_zero_amplification(self):
        from repro.analysis.compare import latency_profile

        assert latency_profile(_phase(p50=0.0)).tail_amplification == 0.0


class TestTailCheck:
    def test_passes_within_budget(self):
        from repro.analysis.compare import tail_check

        assert tail_check("t", _phase(), max_amplification=5.0).passed

    def test_fails_beyond_budget(self):
        from repro.analysis.compare import tail_check

        check = tail_check("t", _phase(p99=8.0), max_amplification=5.0)
        assert not check.passed

    def test_degenerate_distribution_fails(self):
        from repro.analysis.compare import tail_check

        assert not tail_check("t", _phase(p50=0.0), max_amplification=5.0).passed
