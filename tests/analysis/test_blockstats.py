"""Unit and integration tests for block statistics."""

import pytest

from repro.analysis.blockstats import BlockStats, collect_block_stats, production_pace_held
from repro.storage import Block, Chain, Payload, Transaction


def build_chain(spec):
    """spec: list of (timestamp, payload_count)."""
    chain = Chain(owner="stats")
    for height, (timestamp, count) in enumerate(spec):
        txs = [
            Transaction.wrap(
                [Payload.create("c", "KeyValue", "Set", {"key": f"{height}-{i}"})], "c"
            )
            for i in range(count)
        ]
        chain.append(Block.seal(height, chain.head_hash, txs, "n", timestamp))
    return chain


class TestCollectStats:
    def test_empty_chain(self):
        stats = collect_block_stats(Chain())
        assert stats.block_count == 0
        assert stats.empty_fraction == 0.0
        assert stats.describe()

    def test_counts_and_intervals(self):
        chain = build_chain([(0.0, 2), (1.0, 0), (3.0, 4)])
        stats = collect_block_stats(chain)
        assert stats.block_count == 3
        assert stats.empty_blocks == 1
        assert stats.empty_fraction == pytest.approx(1 / 3)
        assert stats.total_payloads == 6
        assert stats.max_block_payloads == 4
        assert stats.mean_block_payloads == pytest.approx(2.0)
        assert stats.mean_interval == pytest.approx(1.5)
        assert stats.max_interval == pytest.approx(2.0)

    def test_saturation(self):
        chain = build_chain([(0.0, 50)])
        stats = collect_block_stats(chain)
        assert stats.saturation(100) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            stats.saturation(0)


class TestProductionPace:
    def test_steady_pace_holds(self):
        chain = build_chain([(float(i), 1) for i in range(5)])
        assert production_pace_held(chain, configured_interval=1.0)

    def test_gap_detected(self):
        chain = build_chain([(0.0, 1), (1.0, 1), (7.0, 1)])
        assert not production_pace_held(chain, configured_interval=1.0)

    def test_short_chain_trivially_holds(self):
        assert production_pace_held(build_chain([(0.0, 1)]), 1.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            production_pace_held(Chain(), 0.0)


class TestAgainstLiveSystems:
    def test_fabric_blocks_arrive_every_second(self):
        # Section 5.4: "Clients constantly receive a block-related event
        # every second" — block production holds the BatchTimeout pace.
        import sys
        sys.path.insert(0, "tests")
        from tests.chains.helpers import deploy

        sim, system, client = deploy("fabric")
        for i in range(40):
            sim.schedule(i * 0.25, lambda i=i: client.submit_payload(
                "KeyValue", "Set", key=f"k{i}", value=i))
        sim.run(until=15.0)
        chain = system.nodes[system.node_ids[0]].chain
        assert production_pace_held(chain, configured_interval=1.0, tolerance=0.6)

    def test_quorum_stall_shows_up_as_empty_blocks(self):
        import sys
        sys.path.insert(0, "tests")
        from tests.chains.helpers import deploy

        sim, system, client = deploy("quorum", params={"istanbul.blockperiod": 1.0})
        for i in range(4000):
            sim.schedule(i * 0.0025, lambda i=i: client.submit_payload(
                "KeyValue", "Set", key=f"k{i}", value=i))
        sim.run(until=60.0)
        stats = collect_block_stats(system.nodes[system.node_ids[0]].chain)
        assert stats.empty_fraction > 0.5  # the latched stall mints air
