"""Unit tests for counted resources."""

import pytest

from repro.sim import Resource, Simulator
from repro.sim.events import SimulationError


@pytest.fixture()
def sim():
    return Simulator(seed=1)


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_acquire_within_capacity_is_immediate(self, sim):
        pool = Resource(sim, capacity=2)
        first = pool.acquire()
        second = pool.acquire()
        assert first.triggered and second.triggered
        assert pool.in_use == 2
        assert pool.available == 0

    def test_acquire_beyond_capacity_waits_for_release(self, sim):
        pool = Resource(sim, capacity=1)
        times = []

        def worker(name, hold):
            yield pool.acquire()
            times.append((name, "start", sim.now))
            yield sim.timeout(hold)
            pool.release()
            times.append((name, "end", sim.now))

        sim.spawn(worker("a", 3.0))
        sim.spawn(worker("b", 2.0))
        sim.run()
        assert times == [
            ("a", "start", 0.0),
            ("a", "end", 3.0),
            ("b", "start", 3.0),
            ("b", "end", 5.0),
        ]

    def test_release_idle_resource_raises(self, sim):
        pool = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_fifo_admission(self, sim):
        pool = Resource(sim, capacity=1)
        admitted = []

        def worker(name):
            yield pool.acquire()
            admitted.append(name)
            yield sim.timeout(1.0)
            pool.release()

        for name in ["w1", "w2", "w3"]:
            sim.spawn(worker(name))
        sim.run()
        assert admitted == ["w1", "w2", "w3"]

    def test_use_helper_releases_on_error(self, sim):
        pool = Resource(sim, capacity=1)

        def failing_body():
            yield sim.timeout(1.0)
            raise RuntimeError("body failed")

        def worker():
            yield from pool.use(failing_body())

        process = sim.spawn(worker())
        sim.run()
        assert not process.ok
        assert pool.in_use == 0  # slot was released despite the error

    def test_queued_counter(self, sim):
        pool = Resource(sim, capacity=1)
        pool.acquire()
        pool.acquire()
        pool.acquire()
        assert pool.queued == 2

class TestReleaseSlotAccounting:
    def test_handover_keeps_in_use_at_capacity(self, sim):
        # Releasing with waiters hands the slot over rather than freeing
        # it: in_use must stay pinned at capacity until the queue drains.
        pool = Resource(sim, capacity=2)
        pool.acquire()
        pool.acquire()
        pool.acquire()  # waiter 1
        pool.acquire()  # waiter 2
        assert (pool.in_use, pool.available, pool.queued) == (2, 0, 2)
        pool.release()
        assert (pool.in_use, pool.available, pool.queued) == (2, 0, 1)
        pool.release()
        assert (pool.in_use, pool.available, pool.queued) == (2, 0, 0)
        pool.release()
        assert (pool.in_use, pool.available, pool.queued) == (1, 1, 0)
        pool.release()
        assert (pool.in_use, pool.available, pool.queued) == (0, 2, 0)

    def test_over_release_after_drain_raises(self, sim):
        pool = Resource(sim, capacity=1)
        pool.acquire()
        pool.acquire()  # waiter
        pool.release()  # handover
        pool.release()  # frees the slot
        with pytest.raises(SimulationError):
            pool.release()

    def test_waiter_admitted_by_release_holds_a_granted_event(self, sim):
        pool = Resource(sim, capacity=1)
        first = pool.acquire()
        second = pool.acquire()
        assert first.triggered
        assert not second.triggered
        pool.release()
        assert second.triggered
        assert pool.in_use == 1
