"""Property tests: Store against a plain deque model."""

import collections

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store

# Operation stream: ("put", value) | ("get",) | ("drain", n)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers()),
        st.tuples(st.just("get")),
        st.tuples(st.just("drain"), st.integers(min_value=0, max_value=5)),
    ),
    max_size=80,
)


class TestStoreModel:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_unbounded_store_behaves_like_a_deque(self, ops):
        sim = Simulator(seed=1)
        store = Store(sim)
        model = collections.deque()
        for op in ops:
            if op[0] == "put":
                assert store.try_put(op[1])
                model.append(op[1])
            elif op[0] == "get":
                ok, item = store.try_get()
                if model:
                    assert ok and item == model.popleft()
                else:
                    assert not ok
            else:
                taken = store.drain(limit=op[1])
                expected = [model.popleft() for __ in range(min(op[1], len(model)))]
                assert taken == expected
        assert store.peek_all() == list(model)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.lists(st.integers(), max_size=30))
    def test_bounded_store_never_exceeds_capacity(self, capacity, values):
        sim = Simulator(seed=1)
        store = Store(sim, capacity=capacity)
        accepted = 0
        for value in values:
            if store.try_put(value):
                accepted += 1
            assert len(store) <= capacity
        assert accepted == min(capacity, len(values))
