"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent(self):
        registry = RngRegistry(7)
        a_first = registry.stream("a").random()
        # Drawing from b must not perturb a's future draws.
        registry.stream("b").random()
        a_second = registry.stream("a").random()

        fresh = RngRegistry(7)
        assert fresh.stream("a").random() == a_first
        assert fresh.stream("a").random() == a_second

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()

    def test_different_names_differ(self):
        registry = RngRegistry(5)
        assert registry.stream("x").random() != registry.stream("y").random()

    def test_reseed_clears_streams(self):
        registry = RngRegistry(1)
        old = registry.stream("x")
        registry.reseed(2)
        assert registry.stream("x") is not old
        assert registry.master_seed == 2
