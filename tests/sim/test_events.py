"""Unit tests for event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.events import SimulationError


@pytest.fixture()
def sim():
    return Simulator(seed=1)


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.ok

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_with_none_value_is_triggered(self, sim):
        event = sim.event()
        event.succeed(None)
        assert event.triggered
        assert event.value is None

    def test_value_of_pending_event_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            __ = event.value

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("late"))

    def test_fail_carries_exception(self, sim):
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.exception is error
        with pytest.raises(RuntimeError):
            __ = event.value

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callbacks_run_after_trigger(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("hello")
        assert seen == []  # deferred to the next kernel step
        sim.run()
        assert seen == ["hello"]

    def test_callback_added_after_trigger_still_runs(self, sim):
        event = sim.event()
        event.succeed(7)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]


class TestTimeout:
    def test_fires_at_deadline(self, sim):
        timeout = sim.timeout(5.0, value="done")
        fired_at = []
        timeout.add_callback(lambda e: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [5.0]
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.triggered
        assert sim.now == 0.0


class TestConditions:
    def test_anyof_fires_on_first(self, sim):
        fast = sim.timeout(1.0, "fast")
        slow = sim.timeout(5.0, "slow")
        any_event = AnyOf(sim, [fast, slow])
        times = []
        any_event.add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [1.0]
        assert any_event.value == {fast: "fast"}

    def test_allof_waits_for_all(self, sim):
        fast = sim.timeout(1.0, "fast")
        slow = sim.timeout(5.0, "slow")
        all_event = AllOf(sim, [fast, slow])
        times = []
        all_event.add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [5.0]
        assert all_event.value == {fast: "fast", slow: "slow"}

    def test_empty_allof_fires_immediately(self, sim):
        all_event = AllOf(sim, [])
        sim.run()
        assert all_event.triggered
        assert all_event.value == {}

    def test_failing_child_fails_condition(self, sim):
        bad = sim.event()
        good = sim.timeout(2.0)
        all_event = AllOf(sim, [bad, good])
        bad.fail(RuntimeError("child failed"))
        sim.run()
        assert all_event.triggered
        assert not all_event.ok
