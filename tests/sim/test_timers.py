"""Cancellable-timer semantics: TimerHandle lifecycle and determinism."""

import pytest

from repro.sim import Simulator, TimerHandle


class TestTimerHandle:
    def test_fires_with_args(self):
        sim = Simulator(seed=1)
        fired = []
        handle = sim.schedule_cancellable(1.0, fired.append, "x")
        assert isinstance(handle, TimerHandle)
        assert handle.active
        sim.run()
        assert fired == ["x"]
        assert not handle.active

    def test_cancel_before_fire(self):
        sim = Simulator(seed=1)
        fired = []
        handle = sim.schedule_cancellable(1.0, fired.append, "x")
        assert handle.cancel() is True
        assert not handle.active
        sim.run()
        assert fired == []
        assert sim.now == pytest.approx(1.0)  # the tombstone still advanced time

    def test_cancel_twice_returns_false(self):
        sim = Simulator(seed=1)
        handle = sim.schedule_cancellable(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False
        sim.run()
        assert handle.cancel() is False

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator(seed=1)
        fired = []
        handle = sim.schedule_cancellable(1.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]
        assert handle.cancel() is False
        assert not handle.active

    def test_rearm_only_last_timer_fires(self):
        sim = Simulator(seed=1)
        fired = []
        handle = None
        for generation in range(5):
            if handle is not None:
                handle.cancel()
            handle = sim.schedule_cancellable(1.0 + generation, fired.append, generation)
        sim.run()
        assert fired == [4]

    def test_cancel_from_within_callback(self):
        # A dispatched event cancelling a later timer: the tombstone is
        # skipped when it surfaces, not dispatched.
        sim = Simulator(seed=1)
        fired = []
        victim = sim.schedule_cancellable(2.0, fired.append, "victim")
        sim.schedule(1.0, victim.cancel)
        sim.schedule(3.0, fired.append, "after")
        sim.run()
        assert fired == ["after"]

    def test_negative_delay_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            sim.schedule_cancellable(-0.1, lambda: None)


class TestDeterminism:
    def test_cancelled_timer_consumes_its_sequence_number(self):
        """A cancelled timer must not shift the FIFO order of same-instant
        events relative to a run where it fired as a no-op."""

        def order_with(noop_timer_cancelled):
            sim = Simulator(seed=1)
            order = []
            sim.schedule(1.0, order.append, "a")
            handle = sim.schedule_cancellable(1.0, lambda: None)
            sim.schedule(1.0, order.append, "b")
            if noop_timer_cancelled:
                handle.cancel()
            sim.run()
            return order

        assert order_with(True) == order_with(False) == ["a", "b"]

    def test_pending_events_counts_tombstones(self):
        sim = Simulator(seed=1)
        handle = sim.schedule_cancellable(1.0, lambda: None)
        handle.cancel()
        assert sim.pending_events() == 1
        sim.run()
        assert sim.pending_events() == 0

    def test_traced_run_counts_tombstone_pops_as_dispatches(self):
        """Instrumented runs must see the same dispatch count and queue
        gauge whether a stale timer fired as a no-op or was cancelled —
        the golden metric snapshots pin those numbers."""
        from repro.trace.config import TraceConfig
        from repro.trace.tracer import Tracer

        def metrics_with(cancelled):
            sim = Simulator(seed=1)
            tracer = Tracer(TraceConfig())
            sim.set_tracer(tracer)
            handle = sim.schedule_cancellable(1.0, lambda: None)
            sim.schedule(2.0, lambda: None)
            if cancelled:
                handle.cancel()
            sim.run()
            return tracer.metrics.snapshot()

        assert metrics_with(True) == metrics_with(False)

    def test_run_until_complete_skips_tombstones(self):
        sim = Simulator(seed=1)
        fired = []
        handle = sim.schedule_cancellable(0.5, fired.append, "stale")
        handle.cancel()

        def proc():
            yield sim.timeout(1.0)

        process = sim.spawn(proc())
        sim.run_until_complete(process)
        assert fired == []
        assert sim.now == pytest.approx(1.0)
