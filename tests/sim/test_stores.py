"""Unit tests for FIFO stores."""

import pytest

from repro.sim import Simulator, Store


@pytest.fixture()
def sim():
    return Simulator(seed=1)


class TestUnboundedStore:
    def test_put_then_get_fifo(self, sim):
        store = Store(sim)
        got = []

        def producer():
            for item in ["a", "b", "c"]:
                yield store.put(item)

        def consumer():
            for __ in range(3):
                item = yield store.get()
                got.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        arrival_times = []

        def consumer():
            item = yield store.get()
            arrival_times.append((sim.now, item))

        def producer():
            yield sim.timeout(5.0)
            yield store.put("late-item")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert arrival_times == [(5.0, "late-item")]

    def test_waiting_getters_served_in_order(self, sim):
        store = Store(sim)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        sim.spawn(consumer("first"))
        sim.spawn(consumer("second"))

        def producer():
            yield sim.timeout(1.0)
            yield store.put(1)
            yield store.put(2)

        sim.spawn(producer())
        sim.run()
        assert got == [("first", 1), ("second", 2)]


class TestBoundedStore:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_try_put_respects_capacity(self, sim):
        store = Store(sim, capacity=2)
        assert store.try_put("a")
        assert store.try_put("b")
        assert not store.try_put("c")  # rejected, like Sawtooth's queue
        assert len(store) == 2

    def test_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put("first")
            events.append(("stored-first", sim.now))
            yield store.put("second")
            events.append(("stored-second", sim.now))

        def consumer():
            yield sim.timeout(10.0)
            item = yield store.get()
            events.append(("got", item, sim.now))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert events == [
            ("stored-first", 0.0),
            ("stored-second", 10.0),
            ("got", "first", 10.0),
        ]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() == (False, None)
        store.try_put("x")
        assert store.try_get() == (True, "x")

    def test_drain_with_limit(self, sim):
        store = Store(sim)
        for i in range(5):
            store.try_put(i)
        assert store.drain(limit=3) == [0, 1, 2]
        assert store.drain() == [3, 4]
        assert store.drain() == []

    def test_drain_admits_blocked_putters(self, sim):
        store = Store(sim, capacity=2)
        stored = []

        def producer():
            for i in range(4):
                yield store.put(i)
                stored.append(i)

        sim.spawn(producer())
        sim.run()
        assert stored == [0, 1]
        assert store.drain(limit=2) == [0, 1]
        sim.run()
        assert stored == [0, 1, 2, 3]
        assert store.peek_all() == [2, 3]

class TestDrainWithWaitingPutters:
    def test_drain_admits_only_what_capacity_allows(self, sim):
        store = Store(sim, capacity=3)
        for i in range(3):
            assert store.try_put(i)
        # Five independent putters park on the full store.
        stored = []

        def producer(i):
            yield store.put(i)
            stored.append(i)

        for i in range(3, 8):
            sim.spawn(producer(i))
        sim.run()
        assert stored == []
        assert store.drain(limit=2) == [0, 1]
        # Exactly two freed slots: the two oldest blocked putters were
        # admitted, the rest stay parked.
        assert store.peek_all() == [2, 3, 4]
        assert store.is_full
        sim.run()
        assert stored == [3, 4]
        assert store.drain() == [2, 3, 4]
        sim.run()
        assert stored == [3, 4, 5, 6, 7]
        assert store.peek_all() == [5, 6, 7]

    def test_full_drain_unblocks_all_putters_when_they_fit(self, sim):
        store = Store(sim, capacity=4)
        for i in range(4):
            assert store.try_put(i)

        def producer(i):
            yield store.put(i)

        for i in (4, 5):
            sim.spawn(producer(i))
        sim.run()
        assert store.drain() == [0, 1, 2, 3]
        assert store.peek_all() == [4, 5]
        assert not store.is_full
        assert store.drain() == [4, 5]

    def test_admitted_putter_event_fires(self, sim):
        store = Store(sim, capacity=1)
        store.try_put("old")
        put_event = store.put("new")
        assert not put_event.triggered
        assert store.drain() == ["old"]
        assert put_event.triggered
        assert store.peek_all() == ["new"]

    def test_drain_on_empty_store_with_no_putters(self, sim):
        store = Store(sim, capacity=2)
        assert store.drain() == []
        assert store.drain(limit=5) == []
