"""Unit tests for FIFO stores."""

import pytest

from repro.sim import Simulator, Store


@pytest.fixture()
def sim():
    return Simulator(seed=1)


class TestUnboundedStore:
    def test_put_then_get_fifo(self, sim):
        store = Store(sim)
        got = []

        def producer():
            for item in ["a", "b", "c"]:
                yield store.put(item)

        def consumer():
            for __ in range(3):
                item = yield store.get()
                got.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        arrival_times = []

        def consumer():
            item = yield store.get()
            arrival_times.append((sim.now, item))

        def producer():
            yield sim.timeout(5.0)
            yield store.put("late-item")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert arrival_times == [(5.0, "late-item")]

    def test_waiting_getters_served_in_order(self, sim):
        store = Store(sim)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        sim.spawn(consumer("first"))
        sim.spawn(consumer("second"))

        def producer():
            yield sim.timeout(1.0)
            yield store.put(1)
            yield store.put(2)

        sim.spawn(producer())
        sim.run()
        assert got == [("first", 1), ("second", 2)]


class TestBoundedStore:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_try_put_respects_capacity(self, sim):
        store = Store(sim, capacity=2)
        assert store.try_put("a")
        assert store.try_put("b")
        assert not store.try_put("c")  # rejected, like Sawtooth's queue
        assert len(store) == 2

    def test_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put("first")
            events.append(("stored-first", sim.now))
            yield store.put("second")
            events.append(("stored-second", sim.now))

        def consumer():
            yield sim.timeout(10.0)
            item = yield store.get()
            events.append(("got", item, sim.now))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert events == [
            ("stored-first", 0.0),
            ("stored-second", 10.0),
            ("got", "first", 10.0),
        ]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() == (False, None)
        store.try_put("x")
        assert store.try_get() == (True, "x")

    def test_drain_with_limit(self, sim):
        store = Store(sim)
        for i in range(5):
            store.try_put(i)
        assert store.drain(limit=3) == [0, 1, 2]
        assert store.drain() == [3, 4]
        assert store.drain() == []

    def test_drain_admits_blocked_putters(self, sim):
        store = Store(sim, capacity=2)
        stored = []

        def producer():
            for i in range(4):
                yield store.put(i)
                stored.append(i)

        sim.spawn(producer())
        sim.run()
        assert stored == [0, 1]
        assert store.drain(limit=2) == [0, 1]
        sim.run()
        assert stored == [0, 1, 2, 3]
        assert store.peek_all() == [2, 3]
