"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.events import SimulationError


@pytest.fixture()
def sim():
    return Simulator(seed=1)


class TestProcessLifecycle:
    def test_process_runs_and_returns(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return "value"

        process = sim.spawn(proc())
        sim.run()
        assert process.triggered
        assert process.value == "value"
        assert sim.now == 3.0

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)

    def test_yield_receives_event_value(self, sim):
        received = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            received.append(value)

        sim.spawn(proc())
        sim.run()
        assert received == ["payload"]

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.timeout(3.0)
            return "child-result"

        def parent():
            result = yield sim.spawn(child())
            return f"got {result}"

        parent_proc = sim.spawn(parent())
        sim.run()
        assert parent_proc.value == "got child-result"

    def test_unhandled_exception_fails_process(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise ValueError("inner error")

        process = sim.spawn(proc())
        sim.run()
        assert process.triggered
        assert not process.ok
        assert isinstance(process.exception, ValueError)

    def test_failure_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("child error")

        caught = []

        def parent():
            try:
                yield sim.spawn(child())
            except ValueError as error:
                caught.append(str(error))

        sim.spawn(parent())
        sim.run()
        assert caught == ["child error"]

    def test_yielding_non_event_fails(self, sim):
        def proc():
            yield 42

        process = sim.spawn(proc())
        sim.run()
        assert not process.ok
        assert isinstance(process.exception, SimulationError)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                causes.append(interrupt.cause)

        process = sim.spawn(proc())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt("stop now")

        sim.spawn(interrupter())
        sim.run()
        assert causes == ["stop now"]
        # The process itself finished at t=1 (the stale timeout still
        # drains the queue but resumes nothing).
        assert process.triggered and process.ok

    def test_interrupt_finished_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        process = sim.spawn(proc())
        sim.run()
        process.interrupt("late")  # must not raise
        assert process.value == "done"

    def test_stale_event_after_interrupt_ignored(self, sim):
        log = []

        def proc():
            try:
                yield sim.timeout(5.0, value="original")
            except Interrupt:
                value = yield sim.timeout(10.0, value="after-interrupt")
                log.append(value)

        process = sim.spawn(proc())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt()

        sim.spawn(interrupter())
        sim.run()
        # The original timeout fires at t=5 but must not resume the process;
        # only the post-interrupt timeout at t=11 may.
        assert log == ["after-interrupt"]
