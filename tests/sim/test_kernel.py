"""Unit tests for the Simulator event loop."""

import pytest

from repro.sim import Simulator
from repro.sim.events import SimulationError


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_same_time_is_fifo(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda lab=label: order.append(lab))
        sim.run()
        assert order == list("abcde")

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        stopped_at = sim.run(until=5.0)
        assert stopped_at == 5.0
        assert fired == []
        sim.run()
        assert fired == [True]
        assert sim.now == 10.0

    def test_run_until_advances_clock_even_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=100.0) == 100.0

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(2.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 3.0]


class TestRunUntilComplete:
    def test_returns_process_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(2.0)
            return "finished"

        process = sim.spawn(proc())
        assert sim.run_until_complete(process) == "finished"
        assert sim.now == 2.0

    def test_deadlock_detected(self):
        sim = Simulator()

        def proc():
            yield sim.event()  # never triggered

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(process)

    def test_determinism_across_runs(self):
        def build_trace(seed):
            sim = Simulator(seed=seed)
            rng = sim.rng.stream("jitter")
            trace = []

            def proc(name):
                for __ in range(5):
                    yield sim.timeout(rng.uniform(0.1, 1.0))
                    trace.append((name, round(sim.now, 9)))

            sim.spawn(proc("a"))
            sim.spawn(proc("b"))
            sim.run()
            return trace

        assert build_trace(42) == build_trace(42)
        assert build_trace(42) != build_trace(43)
