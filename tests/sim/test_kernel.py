"""Unit tests for the Simulator event loop."""

import pytest

from repro.sim import Simulator
from repro.sim.events import SimulationError


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_same_time_is_fifo(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda lab=label: order.append(lab))
        sim.run()
        assert order == list("abcde")

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        stopped_at = sim.run(until=5.0)
        assert stopped_at == 5.0
        assert fired == []
        sim.run()
        assert fired == [True]
        assert sim.now == 10.0

    def test_run_until_advances_clock_even_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=100.0) == 100.0

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(2.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 3.0]


class TestScheduleWithArgs:
    def test_args_are_passed_positionally(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), "x", 2)
        sim.schedule(2.0, seen.append, "bare")
        sim.run()
        assert seen == [("x", 2), "bare"]

    def test_args_reach_traced_dispatch(self):
        from repro.trace.config import TraceConfig
        from repro.trace.tracer import Tracer

        sim = Simulator()
        sim.set_tracer(Tracer(TraceConfig()))
        seen = []
        sim.schedule(1.0, seen.append, 7)
        sim.run()
        assert seen == [7]


class TestRunUntilComplete:
    def test_returns_process_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(2.0)
            return "finished"

        process = sim.spawn(proc())
        assert sim.run_until_complete(process) == "finished"
        assert sim.now == 2.0

    def test_deadlock_detected(self):
        sim = Simulator()

        def proc():
            yield sim.event()  # never triggered

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(process)

    def test_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def proc():
            inner = sim.spawn(inner_proc())
            try:
                sim.run_until_complete(inner)
            except SimulationError as exc:
                errors.append(str(exc))
            yield sim.timeout(1.0)

        def inner_proc():
            yield sim.timeout(0.5)

        process = sim.spawn(proc())
        sim.run_until_complete(process)
        assert errors and "not reentrant" in errors[0]

    def test_over_limit_event_stays_queued(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(100.0)
            fired.append(sim.now)

        process = sim.spawn(proc())
        with pytest.raises(SimulationError, match="time limit"):
            sim.run_until_complete(process, limit=10.0)
        # The offending event was peeked, not popped: a later unbounded
        # run still delivers it.
        assert sim.pending_events() == 1
        assert fired == []
        sim.run()
        assert fired == [100.0]

    def test_dispatch_is_traced(self):
        from repro.trace.config import TraceConfig
        from repro.trace.tracer import Tracer

        sim = Simulator()
        tracer = Tracer(TraceConfig())
        sim.set_tracer(tracer)

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.run_until_complete(sim.spawn(proc()))
        dispatches = tracer.metrics.counter("sim.dispatches", system="sim").value
        assert dispatches >= 2

    def test_determinism_across_runs(self):
        def build_trace(seed):
            sim = Simulator(seed=seed)
            rng = sim.rng.stream("jitter")
            trace = []

            def proc(name):
                for __ in range(5):
                    yield sim.timeout(rng.uniform(0.1, 1.0))
                    trace.append((name, round(sim.now, 9)))

            sim.spawn(proc("a"))
            sim.spawn(proc("b"))
            sim.run()
            return trace

        assert build_trace(42) == build_trace(42)
        assert build_trace(42) != build_trace(43)
