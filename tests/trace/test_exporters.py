"""Unit tests for the Chrome trace-event and JSONL exporters."""

import json

from repro.trace import (
    TraceConfig,
    Tracer,
    chrome_trace,
    jsonl_lines,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def sample_tracer() -> Tracer:
    tracer = Tracer(TraceConfig())
    tracer.bind_clock(lambda: 0.0)
    tracer.record_span("tx", category="client", node="client-0",
                       start=0.5, end=1.25, status="received")
    tracer.record_span("raft.replicate", category="consensus", node="orderer0",
                       start=0.6, end=0.61, index=0)
    tracer.event("net.send", category="net", node="client-0", at=0.5,
                 dst="fabric-n0", size=256)
    tracer.metrics.counter("net.sent", system="fabric").inc(2)
    return tracer


class TestChromeTrace:
    def test_document_structure(self):
        doc = chrome_trace(sample_tracer(), process_name="test-proc")
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_spans_map_to_complete_events_in_microseconds(self):
        doc = chrome_trace(sample_tracer())
        (tx,) = [e for e in doc["traceEvents"] if e.get("name") == "tx"]
        assert tx["ph"] == "X"
        assert tx["cat"] == "client"
        assert tx["ts"] == 0.5e6
        assert tx["dur"] == 0.75e6
        assert tx["args"]["status"] == "received"

    def test_events_map_to_instants(self):
        doc = chrome_trace(sample_tracer())
        (send,) = [e for e in doc["traceEvents"] if e.get("name") == "net.send"]
        assert send["ph"] == "i"
        assert send["s"] == "t"
        assert send["ts"] == 0.5e6

    def test_one_thread_row_per_node_with_names(self):
        doc = chrome_trace(sample_tracer())
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "(global)"
        assert set(names.values()) == {"(global)", "client-0", "orderer0"}
        (tx,) = [e for e in doc["traceEvents"] if e.get("name") == "tx"]
        assert names[tx["tid"]] == "client-0"

    def test_events_sorted_by_timestamp(self):
        doc = chrome_trace(sample_tracer())
        stamps = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert stamps == sorted(stamps)

    def test_written_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(sample_tracer(), path)
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert len(doc["traceEvents"]) > 0

    def test_negative_duration_clamped(self):
        tracer = Tracer(TraceConfig())
        tracer.bind_clock(lambda: 0.0)
        tracer.record_span("odd", category="sim", start=2.0, end=1.0)
        doc = chrome_trace(tracer)
        (odd,) = [e for e in doc["traceEvents"] if e.get("name") == "odd"]
        assert odd["dur"] == 0.0


class TestJsonl:
    def test_lines_are_time_ordered_with_metrics_trailer(self):
        lines = list(jsonl_lines(sample_tracer()))
        assert lines[-1]["type"] == "metrics"
        assert lines[-1]["metrics"]["counters"]["fabric/net.sent"]["value"] == 2
        body = lines[:-1]
        stamps = [r["start"] if r["type"] == "span" else r["time"] for r in body]
        assert stamps == sorted(stamps)
        kinds = {r["type"] for r in body}
        assert kinds == {"span", "event"}

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = sample_tracer()
        write_jsonl(tracer, path)
        loaded = read_jsonl(path)
        assert len(loaded) == len(tracer.spans) + len(tracer.events) + 1
        (tx,) = [r for r in loaded if r.get("name") == "tx"]
        assert tx == {
            "type": "span", "name": "tx", "cat": "client", "node": "client-0",
            "start": 0.5, "end": 1.25, "attrs": {"status": "received"},
        }

    def test_loaded_spans_feed_tracestats(self, tmp_path):
        from repro.analysis.tracestats import span_stats

        path = tmp_path / "trace.jsonl"
        write_jsonl(sample_tracer(), path)
        stats = span_stats(read_jsonl(path))
        assert {s.name for s in stats} == {"tx", "raft.replicate"}
