"""Unit tests for the Tracer core: spans, filtering, sampling, no-op path."""

import pytest

from repro.sim import Simulator
from repro.trace import NOOP_TRACER, NoopTracer, TraceConfig, Tracer
from repro.trace.tracer import _NULL_SPAN


def make_tracer(**kwargs) -> Tracer:
    tracer = Tracer(TraceConfig(**kwargs))
    tracer.bind_clock(lambda: 0.0)
    return tracer


class TestLexicalSpans:
    def test_span_captures_simulated_time(self):
        sim = Simulator()
        tracer = Tracer(TraceConfig())
        sim.set_tracer(tracer)

        def body():
            with tracer.span("work", category="sim", step=1):
                sim._now = 2.5  # the clock is the simulator's

        sim.schedule(1.0, body)
        sim.run()
        (span,) = [s for s in tracer.spans if s.name == "work"]
        assert span.start == 1.0
        assert span.end == 2.5
        assert span.duration == pytest.approx(1.5)
        assert span.attrs["step"] == 1
        assert span.attrs["wall_us"] >= 0

    def test_span_set_attaches_attributes(self):
        tracer = make_tracer()
        with tracer.span("work", category="sim") as span:
            span.set(result="ok")
        assert tracer.spans[0].attrs["result"] == "ok"

    def test_nested_spans_both_recorded(self):
        clock = [0.0]
        tracer = Tracer(TraceConfig())
        tracer.bind_clock(lambda: clock[0])
        with tracer.span("outer", category="sim"):
            clock[0] = 1.0
            with tracer.span("inner", category="sim"):
                clock[0] = 2.0
            clock[0] = 4.0
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].duration == pytest.approx(1.0)
        assert by_name["outer"].duration == pytest.approx(4.0)
        # Inner closes first: list order is completion order.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]


class TestKeyedSpans:
    def test_begin_end_records_interval(self):
        clock = [1.0]
        tracer = Tracer(TraceConfig())
        tracer.bind_clock(lambda: clock[0])
        tracer.begin(("tx", "p1"), "tx", category="client", node="c0", phase="Set")
        clock[0] = 3.0
        tracer.end(("tx", "p1"), status="received")
        (span,) = tracer.spans
        assert (span.name, span.node, span.start, span.end) == ("tx", "c0", 1.0, 3.0)
        assert span.attrs == {"phase": "Set", "status": "received"}

    def test_end_of_unknown_key_is_noop(self):
        tracer = make_tracer()
        tracer.end(("never", "opened"))
        assert tracer.spans == []

    def test_double_begin_keeps_first_open(self):
        clock = [0.0]
        tracer = Tracer(TraceConfig())
        tracer.bind_clock(lambda: clock[0])
        tracer.begin("k", "first", category="client")
        clock[0] = 1.0
        tracer.begin("k", "second", category="client")
        clock[0] = 2.0
        tracer.end("k")
        (span,) = tracer.spans
        assert span.name == "first"
        assert span.start == 0.0

    def test_explicit_timestamps(self):
        tracer = make_tracer()
        tracer.begin("k", "s", category="net", at=5.0)
        tracer.end("k", at=7.5)
        assert tracer.spans[0].start == 5.0
        assert tracer.spans[0].end == 7.5

    def test_attrs_may_shadow_parameter_names(self):
        # Regression: stage_finality passes an attribute literally named
        # "key"; the record methods take their positional parameters
        # positional-only so such attrs cannot collide.
        tracer = make_tracer()
        tracer.begin("k", "block.finality", category="chain", key="prop1", name="x")
        tracer.end("k", key="prop2")
        (span,) = tracer.spans
        assert span.attrs["key"] == "prop2"
        assert span.attrs["name"] == "x"
        tracer.event("e", category="net", name="shadowed")
        assert tracer.events[0].attrs["name"] == "shadowed"

    def test_drain_open_closes_and_flags(self):
        tracer = make_tracer()
        tracer.begin("a", "tx", category="client")
        tracer.begin("b", "tx", category="client")
        assert tracer.open_span_count() == 2
        closed = tracer.drain_open(at=9.0, incomplete=True)
        assert closed == 2
        assert tracer.open_span_count() == 0
        assert all(s.end == 9.0 and s.attrs["incomplete"] for s in tracer.spans)


class TestFiltering:
    def test_category_filter_drops_other_categories(self):
        tracer = make_tracer(categories=frozenset({"net"}))
        tracer.event("kept", category="net")
        tracer.event("dropped", category="consensus")
        tracer.begin("k", "dropped-span", category="client")
        tracer.end("k")
        tracer.record_span("dropped-rec", category="sim", start=0.0, end=1.0)
        assert [e.name for e in tracer.events] == ["kept"]
        assert tracer.spans == []

    def test_filtered_lexical_span_returns_shared_null(self):
        tracer = make_tracer(categories=frozenset({"net"}))
        assert tracer.span("x", category="sim") is _NULL_SPAN
        assert tracer.span("y", category="client") is _NULL_SPAN

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            TraceConfig(categories=frozenset({"nope"}))

    def test_from_spec_parses_csv(self):
        config = TraceConfig.from_spec("net, consensus")
        assert config.categories == frozenset({"net", "consensus"})
        assert TraceConfig.from_spec(None).categories is None

    def test_max_records_counts_drops(self):
        tracer = Tracer(TraceConfig(max_records=2))
        tracer.bind_clock(lambda: 0.0)
        for i in range(4):
            tracer.event(f"e{i}", category="net")
            tracer.record_span(f"s{i}", category="net", start=0.0, end=1.0)
        assert len(tracer.events) == 2
        assert len(tracer.spans) == 2
        assert tracer.dropped_records == 4


class TestSampling:
    def test_sampling_is_deterministic(self):
        config = TraceConfig(sample_rate=0.5)
        keys = [f"payload-{i}" for i in range(2000)]
        first = [config.sampled(k) for k in keys]
        second = [config.sampled(k) for k in keys]
        assert first == second

    def test_sampling_rate_is_approximately_honoured(self):
        config = TraceConfig(sample_rate=0.25)
        keys = [f"payload-{i}" for i in range(4000)]
        kept = sum(config.sampled(k) for k in keys)
        assert 800 < kept < 1200

    def test_edge_rates(self):
        assert TraceConfig(sample_rate=1.0).sampled("anything")
        assert not TraceConfig(sample_rate=0.0).sampled("anything")
        with pytest.raises(ValueError):
            TraceConfig(sample_rate=1.5)


class TestNoopFastPath:
    def test_simulator_default_is_shared_noop(self):
        assert Simulator().tracer is NOOP_TRACER
        assert Simulator().tracer is Simulator().tracer

    def test_noop_is_disabled_and_filters_everything(self):
        assert NOOP_TRACER.enabled is False
        assert NOOP_TRACER.metrics is None
        assert not NOOP_TRACER.wants("net")
        assert not NOOP_TRACER.sampled("p1")

    def test_noop_methods_record_nothing_and_share_null_span(self):
        tracer = NoopTracer()
        assert tracer.span("x", category="sim") is _NULL_SPAN
        with tracer.span("x", category="sim") as span:
            span.set(ignored=True)
        tracer.begin("k", "s", category="net", key="attr")
        tracer.end("k")
        tracer.event("e", category="net")
        tracer.record_span("s", category="net", start=0.0, end=1.0)
        tracer.bind_clock(lambda: 1.0)

    def test_enabled_guard_matches_live_tracer(self):
        # The hooks all branch on `tracer.enabled`; the two classes must
        # disagree on it.
        assert Tracer(TraceConfig()).enabled is True
        assert NoopTracer().enabled is False
