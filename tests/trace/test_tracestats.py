"""Unit tests for trace span statistics (nesting and self time)."""

import pytest

from repro.analysis.tracestats import render_span_stats, span_stats
from repro.trace import SpanRecord


def span(name, start, end, node="n0", category="c"):
    return SpanRecord(name=name, category=category, node=node, start=start, end=end)


class TestSelfTime:
    def test_children_subtract_from_parent(self):
        spans = [
            span("parent", 0.0, 10.0),
            span("child", 2.0, 4.0),
            span("child", 5.0, 6.0),
        ]
        stats = {s.name: s for s in span_stats(spans)}
        assert stats["parent"].total == pytest.approx(10.0)
        assert stats["parent"].self_total == pytest.approx(7.0)
        assert stats["child"].self_total == pytest.approx(3.0)

    def test_grandchildren_charge_innermost_ancestor(self):
        spans = [
            span("outer", 0.0, 10.0),
            span("mid", 1.0, 9.0),
            span("inner", 2.0, 3.0),
        ]
        stats = {s.name: s for s in span_stats(spans)}
        assert stats["inner"].self_total == pytest.approx(1.0)
        assert stats["mid"].self_total == pytest.approx(7.0)
        assert stats["outer"].self_total == pytest.approx(2.0)

    def test_partial_overlap_is_concurrent_not_nested(self):
        # Pipelined slots on one node overlap without nesting; neither
        # may be charged against the other.
        spans = [span("a", 0.0, 5.0), span("b", 3.0, 8.0)]
        stats = {s.name: s for s in span_stats(spans)}
        assert stats["a"].self_total == pytest.approx(5.0)
        assert stats["b"].self_total == pytest.approx(5.0)

    def test_partial_overlapper_does_not_adopt_children(self):
        # c nests in a, not in the concurrent b; b's self time is intact.
        spans = [
            span("a", 0.0, 6.0),
            span("b", 3.0, 10.0),
            span("c", 4.0, 5.0),
        ]
        stats = {s.name: s for s in span_stats(spans)}
        assert stats["a"].self_total == pytest.approx(5.0)
        assert stats["b"].self_total == pytest.approx(7.0)
        assert stats["c"].self_total == pytest.approx(1.0)

    def test_nodes_are_independent(self):
        spans = [
            span("parent", 0.0, 10.0, node="n0"),
            span("other", 2.0, 4.0, node="n1"),
        ]
        stats = {s.name: s for s in span_stats(spans)}
        assert stats["parent"].self_total == pytest.approx(10.0)
        assert stats["other"].self_total == pytest.approx(2.0)


class TestAggregation:
    def test_counts_means_and_ordering(self):
        spans = [
            span("fast", 0.0, 1.0),
            span("fast", 10.0, 11.0),
            span("slow", 20.0, 29.0),
        ]
        stats = span_stats(spans)
        assert [s.name for s in stats] == ["slow", "fast"]  # by self time
        fast = stats[1]
        assert fast.count == 2
        assert fast.mean == pytest.approx(1.0)
        assert fast.max_duration == pytest.approx(1.0)

    def test_render_produces_table_and_handles_empty(self):
        table = render_span_stats([span("x", 0.0, 2.0)], top=5)
        assert "category" in table.splitlines()[0]
        assert "x" in table
        assert render_span_stats([]) == "trace: no spans recorded"
