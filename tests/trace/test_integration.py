"""End-to-end tracing tests: a traced benchmark run and the CLI flag."""

import json

import pytest

from repro.cli import main
from repro.coconut.config import BenchmarkConfig
from repro.coconut.runner import BenchmarkRunner
from repro.trace import TraceConfig, Tracer


@pytest.fixture(scope="module")
def traced_run():
    """One small traced fabric benchmark, shared by the assertions below."""
    tracer = Tracer(TraceConfig())
    runner = BenchmarkRunner(tracer=tracer)
    config = BenchmarkConfig(system="fabric", iel="KeyValue", rate_limit=20,
                             scale=0.05, seed=0, phases=("Set",), repetitions=1)
    result = runner.run(config)
    return tracer, runner, result


class TestTracedBenchmark:
    def test_tracing_does_not_change_results(self, traced_run):
        __, __, traced = traced_run
        plain = BenchmarkRunner().run(BenchmarkConfig(
            system="fabric", iel="KeyValue", rate_limit=20,
            scale=0.05, seed=0, phases=("Set",), repetitions=1,
        ))
        assert traced.phases["Set"].received.mean == plain.phases["Set"].received.mean
        assert traced.phases["Set"].mfls.mean == pytest.approx(plain.phases["Set"].mfls.mean)

    def test_consensus_spans_present(self, traced_run):
        tracer, __, __ = traced_run
        replicates = [s for s in tracer.spans if s.name == "raft.replicate"]
        assert replicates
        assert all(s.category == "consensus" and s.end >= s.start for s in replicates)

    def test_network_events_present(self, traced_run):
        tracer, __, __ = traced_run
        names = {e.name for e in tracer.events}
        assert {"net.send", "net.deliver"} <= names
        (deliver, *__) = [e for e in tracer.events if e.name == "net.deliver"]
        assert deliver.attrs["latency"] > 0

    def test_per_transaction_spans_cover_all_confirmations(self, traced_run):
        tracer, __, result = traced_run
        tx_spans = [s for s in tracer.spans if s.name == "tx"]
        received = [s for s in tx_spans if s.attrs.get("status") == "received"]
        assert len(received) == int(result.phases["Set"].received.mean)
        assert tracer.open_span_count() == 0  # everything confirmed

    def test_finality_and_bench_spans_present(self, traced_run):
        tracer, __, __ = traced_run
        names = {s.name for s in tracer.spans}
        assert "block.finality" in names
        assert "phase" in names

    def test_metrics_populated(self, traced_run):
        tracer, __, result = traced_run
        snapshot = tracer.metrics.snapshot()
        sent = sum(v["value"] for k, v in snapshot["counters"].items()
                   if k.endswith("client.sent"))
        assert sent == int(result.phases["Set"].expected.mean)
        assert any(k.endswith("sim.dispatches") for k in snapshot["counters"])
        assert any(k.endswith("net.latency") for k in snapshot["histograms"])

    def test_category_filtered_run_only_records_that_layer(self):
        tracer = Tracer(TraceConfig.from_spec("consensus"))
        BenchmarkRunner(tracer=tracer).run(BenchmarkConfig(
            system="fabric", iel="DoNothing", rate_limit=20,
            scale=0.02, seed=1, repetitions=1,
        ))
        assert tracer.spans
        assert {s.category for s in tracer.spans} == {"consensus"}
        assert {e.category for e in tracer.events} <= {"consensus"}


class TestCliTraceFlag:
    def test_chrome_trace_written(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        code = main([
            "run", "--system", "fabric", "--iel", "KeyValue",
            "--rate", "20", "--scale", "0.02", "--trace", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "chrome" in out
        doc = json.loads(path.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "raft.replicate" in names  # consensus phases
        assert "net.send" in names  # network messages
        assert "tx" in names  # per-transaction spans

    def test_jsonl_format_and_filters(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        code = main([
            "run", "--system", "fabric", "--iel", "DoNothing",
            "--rate", "20", "--scale", "0.02",
            "--trace", str(path), "--trace-format", "jsonl",
            "--trace-categories", "client", "--trace-sample", "0.5",
        ])
        assert code == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[-1]["type"] == "metrics"
        cats = {r["cat"] for r in records[:-1]}
        assert cats <= {"client"}
