"""Unit tests for trace metrics: counters, gauges, log-scale histograms."""

import pytest

from repro.trace import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_extremes_and_updates(self):
        gauge = Gauge()
        for value in (3.0, -1.0, 7.0):
            gauge.set(value)
        assert gauge.value == 7.0
        assert gauge.max_value == 7.0
        assert gauge.min_value == -1.0
        assert gauge.updates == 3

    def test_untouched_gauge_snapshots_zeros(self):
        assert Gauge().snapshot() == {"value": 0.0, "max": 0.0, "min": 0.0, "updates": 0}


class TestHistogramBucketing:
    def test_bucket_boundaries_are_inclusive_upper(self):
        # Bucket i covers (base*2^(i-1), base*2^i] with base=1.
        hist = Histogram(base=1.0, factor=2.0)
        assert hist.bucket_index(1.0) == 0
        assert hist.bucket_index(2.0) == 1
        assert hist.bucket_index(2.0001) == 2
        assert hist.bucket_index(4.0) == 2
        assert hist.bucket_index(0.5) == 0  # below base -> bucket 0
        assert hist.bucket_bound(3) == 8.0

    def test_nonpositive_values_underflow(self):
        hist = Histogram(base=1.0)
        assert hist.bucket_index(0.0) is None
        assert hist.bucket_index(-3.0) is None
        hist.record(0.0)
        hist.record(-1.0)
        assert hist.underflow == 2
        assert hist.buckets() == []

    def test_default_base_resolves_sub_millisecond_latencies(self):
        hist = Histogram()  # base 1 us, factor 2
        hist.record(0.0004)  # a typical datacenter link latency
        ((bound, count),) = hist.buckets()
        assert count == 1
        # 0.0004 s lands in the bucket bounded by ~512 us.
        assert bound == pytest.approx(512e-6)

    def test_mean_min_max(self):
        hist = Histogram(base=1.0)
        for value in (1.0, 2.0, 9.0):
            hist.record(value)
        assert hist.mean == pytest.approx(4.0)
        assert hist.min_value == 1.0
        assert hist.max_value == 9.0
        assert hist.count == 3

    def test_quantile_returns_covering_bucket_bound(self):
        hist = Histogram(base=1.0, factor=2.0)
        for __ in range(99):
            hist.record(1.5)  # bucket bound 2.0
        hist.record(100.0)  # bucket bound 128.0
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 128.0
        assert Histogram().quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram(base=0.0)
        with pytest.raises(ValueError):
            Histogram(factor=1.0)


class TestMetricsRegistry:
    def test_get_or_create_is_stable_per_key(self):
        registry = MetricsRegistry()
        a = registry.counter("net.sent", system="fabric")
        b = registry.counter("net.sent", system="fabric")
        other = registry.counter("net.sent", system="quorum")
        assert a is b
        assert a is not other
        assert len(registry) == 2

    def test_axes_separate_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x", node="n0").inc(2)
        registry.gauge("depth", system="sim").set(4)
        registry.histogram("lat", node="n1").record(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["x"]["value"] == 1
        assert snapshot["counters"]["n0/x"]["value"] == 2
        assert snapshot["gauges"]["sim/depth"]["max"] == 4
        assert snapshot["histograms"]["n1/lat"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", system="s", node="n").inc()
        registry.histogram("h").record(1.0)
        json.dumps(registry.snapshot())
