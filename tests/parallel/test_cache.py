"""Tests for the content-addressed result cache."""

import json

from repro.coconut.metrics import PhaseMetrics
from repro.coconut.results import PhaseResult, UnitResult
from repro.faults.metrics import ResilienceReport
from repro.parallel import ResultCache


def make_result(label="fabric-DoNothing-rl200"):
    metrics = PhaseMetrics(
        phase="DoNothing", repetition=0, expected=100, received=90, failed=0,
        t_first_send=1.0, t_last_receive=7.0, duration=6.0, tps=15.0, mean_fls=0.4,
    )
    return UnitResult(
        label=label, system="fabric", iel="DoNothing", aggregate_rate=200,
        params={}, scale=0.1,
        phases={"DoNothing": PhaseResult(phase="DoNothing", repetitions=[metrics])},
    )


def make_report():
    return ResilienceReport(
        fault_start=5.0, fault_end=10.0, bucket_width=1.0, timeline=[],
        timeline_start=0.0, baseline_tps=20.0, dip_tps=0.0, dip_depth=1.0,
        time_to_recover=2.0, sent_in_window=50, committed_in_window=40,
        lost_in_window=10,
    )


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("f" * 64, make_result())
        entry = cache.get("f" * 64)
        assert entry is not None
        assert entry.result.to_dict() == make_result().to_dict()
        assert cache.hits == 1 and cache.misses == 0

    def test_resilience_reports_survive(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, make_result(), {"DoNothing": make_report()})
        entry = cache.get("a" * 64)
        report = entry.resilience["DoNothing"]
        assert report.recovered
        assert report.to_dict() == make_report().to_dict()

    def test_entries_are_json_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("b" * 64, make_result())
        data = json.loads(path.read_text())
        assert data["fingerprint"] == "b" * 64
        assert data["label"] == "fabric-DoNothing-rl200"
        assert len(cache) == 1


class TestMisses:
    def test_absent_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("c" * 64).write_text("{not json")
        assert cache.get("c" * 64) is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        # An entry whose recorded fingerprint disagrees with its file
        # name (e.g. a hand-renamed file) must never be served.
        cache = ResultCache(tmp_path)
        path = cache.put("d" * 64, make_result())
        path.rename(cache.path_for("e" * 64))
        assert cache.get("e" * 64) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("1" * 64).write_text(json.dumps({"fingerprint": "1" * 64}))
        assert cache.get("1" * 64) is None

    def test_summary_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get("0" * 64)
        cache.put("f" * 64, make_result())
        cache.get("f" * 64)
        assert "1 hits" in cache.summary()
        assert "1 misses" in cache.summary()
