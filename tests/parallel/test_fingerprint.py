"""Tests for the unit-fingerprint scheme."""

from repro.coconut.config import BenchmarkConfig
from repro.faults import FaultPlan
from repro.net.latency import EUROPEAN_WAN_LATENCY
from repro.parallel import config_payload, unit_fingerprint


def config(**overrides):
    kwargs = dict(system="fabric", iel="DoNothing", rate_limit=50, scale=0.1,
                  repetitions=1, seed=7)
    kwargs.update(overrides)
    return BenchmarkConfig(**kwargs)


class TestStability:
    def test_equal_configs_equal_fingerprints(self):
        assert unit_fingerprint(config()) == unit_fingerprint(config())

    def test_param_insertion_order_is_irrelevant(self):
        forward = config(system="quorum",
                         params={"istanbul.blockperiod": 5.0, "extra": 1})
        backward = config(system="quorum",
                          params={"extra": 1, "istanbul.blockperiod": 5.0})
        assert unit_fingerprint(forward) == unit_fingerprint(backward)

    def test_payload_covers_every_config_field(self):
        import dataclasses

        payload = config_payload(config())
        assert set(payload) == {f.name for f in dataclasses.fields(BenchmarkConfig)}


class TestSensitivity:
    def test_result_determining_fields_change_the_fingerprint(self):
        base = unit_fingerprint(config())
        assert unit_fingerprint(config(seed=8)) != base
        assert unit_fingerprint(config(scale=0.2)) != base
        assert unit_fingerprint(config(repetitions=2)) != base
        assert unit_fingerprint(config(rate_limit=51)) != base
        assert unit_fingerprint(config(system="quorum")) != base

    def test_latency_model_is_part_of_the_fingerprint(self):
        assert unit_fingerprint(config(latency=EUROPEAN_WAN_LATENCY)) != unit_fingerprint(
            config()
        )

    def test_fault_plan_is_part_of_the_fingerprint(self):
        plan = FaultPlan().kill_leader(at=1.0).restart("leader", at=2.0)
        assert unit_fingerprint(config(fault_plan=plan)) != unit_fingerprint(config())

    def test_code_version_marker_invalidates(self):
        assert unit_fingerprint(config(), code_version="a") != unit_fingerprint(
            config(), code_version="b"
        )

    def test_default_marker_is_the_package_version(self):
        import repro

        assert unit_fingerprint(config()) == unit_fingerprint(
            config(), code_version=repro.__version__
        )
