"""Parallel-vs-serial equivalence: the subsystem's acceptance bar.

For any jobs count, per-unit results must be byte-identical to a serial
run — each unit owns its seeded RNG streams, so fan-out cannot change
anything. These tests assert that for raw executors, for
``Experiment.run``/``ParameterSweep.run``/``ResilienceExperiment.run``,
and across cold/warm cache passes.
"""

import pytest

from repro.coconut.config import BenchmarkConfig
from repro.coconut.runner import BenchmarkRunner
from repro.experiments.base import Case, Experiment
from repro.experiments.resilience import resilience_leader_crash
from repro.experiments.sweeps import ParameterSweep
from repro.parallel import (
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    build_executor,
)


def make_configs():
    """Three mixed-system units, cheap enough to run repeatedly."""
    return [
        BenchmarkConfig(system="fabric", iel="DoNothing", rate_limit=50,
                        scale=0.02, repetitions=1, seed=7),
        BenchmarkConfig(system="quorum", iel="DoNothing", rate_limit=50,
                        scale=0.02, repetitions=1, seed=8),
        BenchmarkConfig(system="bitshares", iel="DoNothing", rate_limit=50,
                        params={"block_interval": 1.0},
                        scale=0.02, repetitions=1, seed=9),
    ]


@pytest.fixture(scope="module")
def serial_dicts():
    """Ground truth: the direct BenchmarkRunner path."""
    runner = BenchmarkRunner(keep_last_rig=False)
    return [runner.run(config).to_dict() for config in make_configs()]


class TestEquivalence:
    def test_serial_executor_matches_direct_runner(self, serial_dicts):
        outcomes = SerialExecutor().run_units(make_configs())
        assert [o.result.to_dict() for o in outcomes] == serial_dicts

    def test_parallel_jobs2_matches_serial(self, serial_dicts):
        outcomes = ParallelExecutor(jobs=2).run_units(make_configs())
        assert [o.result.to_dict() for o in outcomes] == serial_dicts

    def test_parallel_jobs1_degenerates_in_process(self, serial_dicts):
        outcomes = ParallelExecutor(jobs=1).run_units(make_configs())
        assert [o.result.to_dict() for o in outcomes] == serial_dicts

    def test_order_is_preserved(self, serial_dicts):
        labels = [o.result.label for o in ParallelExecutor(jobs=2).run_units(make_configs())]
        assert labels == [d["label"] for d in serial_dicts]

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)


class TestCaching:
    def test_cold_then_warm(self, tmp_path, serial_dicts):
        cold = ParallelExecutor(jobs=2, cache=ResultCache(tmp_path))
        cold_dicts = [o.result.to_dict() for o in cold.run_units(make_configs())]
        assert (cold.ran, cold.from_cache) == (3, 0)
        assert cold_dicts == serial_dicts

        warm = ParallelExecutor(jobs=2, cache=ResultCache(tmp_path))
        warm_outcomes = warm.run_units(make_configs())
        assert (warm.ran, warm.from_cache) == (0, 3)
        assert all(o.cached for o in warm_outcomes)
        assert [o.result.to_dict() for o in warm_outcomes] == serial_dicts

    def test_changed_seed_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        SerialExecutor(cache=cache).run_units(make_configs()[:1])
        reseeded = make_configs()[0]
        reseeded.seed = 99
        second = SerialExecutor(cache=ResultCache(tmp_path))
        second.run_units([reseeded])
        assert (second.ran, second.from_cache) == (1, 0)

    def test_fingerprints_recorded_on_outcomes(self, tmp_path):
        outcomes = SerialExecutor(cache=ResultCache(tmp_path)).run_units(
            make_configs()[:1]
        )
        assert outcomes[0].fingerprint
        assert not outcomes[0].cached

    def test_progress_marks_cache_hits(self, tmp_path):
        cache_dir = tmp_path
        SerialExecutor(cache=ResultCache(cache_dir)).run_units(make_configs()[:2])
        lines = []
        warm = SerialExecutor(cache=ResultCache(cache_dir), progress=lines.append)
        warm.run_units(make_configs()[:2])
        assert lines[0].startswith("[1/2]") and lines[0].endswith("(cached)")
        assert lines[1].startswith("[2/2]")

    def test_summary_lines(self, tmp_path):
        executor = ParallelExecutor(jobs=2, cache=ResultCache(tmp_path))
        executor.run_units(make_configs())
        assert executor.summary().startswith("executor: 3 ran, 0 cached (jobs=2)")
        assert "cache:" in executor.summary()


class TestBuildExecutor:
    def test_jobs1_is_serial(self):
        assert type(build_executor(jobs=1)) is SerialExecutor

    def test_jobs2_is_parallel_with_cache(self, tmp_path):
        executor = build_executor(jobs=2, cache_dir=tmp_path)
        assert isinstance(executor, ParallelExecutor)
        assert executor.cache is not None


def tiny_experiment():
    return Experiment(
        "tiny", "Tiny two-case experiment",
        [
            Case("fabric-dn", dict(system="fabric", iel="DoNothing",
                                   rate_limit=50, seed=7), "DoNothing"),
            Case("quorum-dn", dict(system="quorum", iel="DoNothing",
                                   rate_limit=50, seed=8), "DoNothing"),
        ],
    )


def tiny_sweep():
    return ParameterSweep(
        sweep_id="tiny_bi", title="Tiny BitShares interval sweep",
        parameter="block_interval", values=(1.0, 2.0),
        config_kwargs=dict(system="bitshares", iel="DoNothing",
                           rate_limit=50, seed=9),
        phase="DoNothing",
    )


class TestDriverIntegration:
    def test_experiment_run_executor_matches_serial(self):
        serial = tiny_experiment().run(scale=0.02)
        fanned = tiny_experiment().run(scale=0.02, executor=ParallelExecutor(jobs=2))
        assert (
            [r.phase_result.to_dict() for r in fanned.case_results]
            == [r.phase_result.to_dict() for r in serial.case_results]
        )

    def test_sweep_run_executor_matches_serial(self):
        serial = tiny_sweep().run(scale=0.02)
        fanned = tiny_sweep().run(scale=0.02, executor=ParallelExecutor(jobs=2))
        assert (
            [p.phase_result.to_dict() for p in fanned.points]
            == [p.phase_result.to_dict() for p in serial.points]
        )

    def test_resilience_run_executor_matches_serial(self):
        experiment = resilience_leader_crash()
        serial = experiment.run(systems=["fabric"], scale=0.1)
        fanned = experiment.run(
            systems=["fabric"], scale=0.1, executor=ParallelExecutor(jobs=2)
        )
        assert [row.cells() for row in fanned.rows] == [
            row.cells() for row in serial.rows
        ]
        assert fanned.rows[0].report is not None
