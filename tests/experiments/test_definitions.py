"""Structural tests for the experiment definitions."""

import pytest

from repro.coconut.config import BenchmarkConfig
from repro.experiments import EXPERIMENT_IDS, build_experiment
from repro.experiments.base import Case, Experiment, PaperValue
from repro.experiments.figures import (
    BENCHMARK_ROWS,
    FIG4_PAPER_CELLS,
    best_config_kwargs,
    best_config_variants,
)


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        assert set(EXPERIMENT_IDS) == {
            "fig3", "fig4", "fig5",
            "table7_8", "table9_10", "table11_12", "table13_14",
            "table15_16", "table17_18", "table19_20",
            "resilience_leader_crash", "resilience_partition",
            "capacity_donothing", "capacity_keyvalue", "capacity_bankingapp",
            "skew_sweep_keyvalue", "burst_capacity", "mix_readwrite_keyvalue",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            build_experiment("table42")

    @pytest.mark.parametrize("experiment_id", [e for e in EXPERIMENT_IDS if "table" in e])
    def test_table_cases_build_valid_configs(self, experiment_id):
        experiment = build_experiment(experiment_id)
        for case in experiment.cases:
            config = case.build_config()
            assert isinstance(config, BenchmarkConfig)
            assert case.phase in config.phase_sequence

    def test_run_tables_rejects_unknown_ids(self):
        from repro.experiments.tables import run_tables

        with pytest.raises(KeyError):
            run_tables(["table42"])


class TestEnvOverrides:
    CASE = Case("c", dict(system="fabric", iel="DoNothing", rate_limit=50), "DoNothing")

    def test_malformed_scale_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        with pytest.raises(ValueError, match=r"REPRO_SCALE.*'tiny'"):
            self.CASE.build_config()

    def test_malformed_reps_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "3.5")
        with pytest.raises(ValueError, match=r"REPRO_REPS.*'3.5'"):
            self.CASE.build_config()

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_REPS", "3.5")
        config = self.CASE.build_config(scale=0.05, repetitions=2)
        assert config.scale == 0.05
        assert config.repetitions == 2


class TestTableValues:
    def test_table7_8_matches_paper(self):
        experiment = build_experiment("table7_8")
        low = experiment.cases[0]
        assert low.paper.mtps == 4.08
        assert low.paper.mfls == 151.93
        assert low.paper.expected == 6000.0
        # Table RL is the aggregate across four clients.
        assert low.build_config().aggregate_rate == 20

    def test_table15_16_encodes_the_stall(self):
        experiment = build_experiment("table15_16")
        stall = next(c for c in experiment.cases if "BP=2" in c.case_id)
        assert stall.paper.mtps == 0.0
        assert stall.paper.received == 0.0

    def test_table19_20_rates(self):
        experiment = build_experiment("table19_20")
        rates = {case.build_config().aggregate_rate for case in experiment.cases}
        assert rates == {200, 1600}


class TestFigureDefinitions:
    def test_fig4_grid_is_complete(self):
        # 6 benchmarks x 7 systems, all printed in the paper.
        assert len(FIG4_PAPER_CELLS) == 42
        phases = {phase for phase, __ in FIG4_PAPER_CELLS}
        assert phases == {p for __, p in BENCHMARK_ROWS}

    def test_best_configs_cover_all_systems(self):
        from repro.chains.registry import SYSTEM_NAMES

        for system in SYSTEM_NAMES:
            kwargs = best_config_kwargs(system)
            assert "rate_limit" in kwargs

    def test_bitshares_banking_has_two_variants(self):
        variants = best_config_variants("bitshares", "BankingApp")
        assert len(variants) == 2
        assert {v.get("ops_per_transaction") for v in variants} == {100, 1}

    def test_other_cells_have_one_variant(self):
        assert len(best_config_variants("fabric", "BankingApp")) == 1
        assert len(best_config_variants("bitshares", "KeyValue")) == 1


class TestWorkloadExperiments:
    @pytest.mark.parametrize(
        "experiment_id",
        ["skew_sweep_keyvalue", "burst_capacity", "mix_readwrite_keyvalue"],
    )
    def test_cases_build_valid_configs(self, experiment_id):
        experiment = build_experiment(experiment_id)
        ids = [case.case_id for case in experiment.cases]
        assert len(ids) == len(set(ids))
        for case in experiment.cases:
            config = case.build_config()
            assert isinstance(config, BenchmarkConfig)
            assert case.phase in config.phase_sequence
            assert config.workload is not None

    def test_skew_sweep_covers_all_access_kinds(self):
        experiment = build_experiment("skew_sweep_keyvalue")
        kinds = {c.build_config().workload.access.kind for c in experiment.cases}
        assert kinds == {"disjoint", "uniform", "zipfian", "hotspot"}

    def test_burst_covers_all_systems_both_shapes(self):
        from repro.chains.registry import SYSTEM_NAMES

        experiment = build_experiment("burst_capacity")
        assert len(experiment.cases) == 2 * len(SYSTEM_NAMES)


class TestExperimentMachinery:
    def test_duplicate_case_ids_rejected(self):
        case = Case("a", dict(system="fabric", iel="DoNothing", rate_limit=10), "DoNothing")
        other = Case("a", dict(system="fabric", iel="DoNothing", rate_limit=20), "DoNothing")
        with pytest.raises(ValueError):
            Experiment("x", "t", [case, other])

    def test_empty_experiment_rejected(self):
        with pytest.raises(ValueError):
            Experiment("x", "t", [])

    def test_scale_overrides(self, monkeypatch):
        case = Case(
            "a", dict(system="fabric", iel="DoNothing", rate_limit=10), "DoNothing",
            recommended_scale=0.3, recommended_repetitions=2,
        )
        assert case.build_config().scale == 0.3
        assert case.build_config(scale=0.07).scale == 0.07
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert case.build_config().scale == 0.5
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert case.build_config().scale == 1.0
        monkeypatch.setenv("REPRO_REPS", "5")
        assert case.build_config().repetitions == 5
        assert case.build_config(repetitions=1).repetitions == 1

    def test_paper_value_describe(self):
        assert PaperValue().describe() == "(not printed)"
        text = PaperValue(mtps=10.0, mfls=2.0, received=5, expected=10).describe()
        assert "MTPS=10.00" in text and "NoT=5/10" in text


class TestTinyRun:
    def test_table_experiment_runs_end_to_end(self):
        experiment = build_experiment("table13_14")
        run = experiment.run(
            scale=0.02, repetitions=1,
            case_filter=lambda case: case.case_id == "RL=800 MM=100",
        )
        assert len(run.case_results) == 1
        result = run.case("RL=800 MM=100")
        assert result.measured_mtps > 0
        rendered = run.render()
        assert "Paper" in rendered and "Measured" in rendered

    def test_unknown_case_lookup(self):
        experiment = build_experiment("table13_14")
        run = experiment.run(scale=0.02, repetitions=1,
                             case_filter=lambda case: case.case_id == "RL=800 MM=100")
        with pytest.raises(KeyError):
            run.case("RL=9999")
