"""Tests for the parameter-sweep experiment machinery."""

import pytest

from repro.experiments.sweeps import SWEEPS, ParameterSweep, build_sweep


class TestSweepDefinitions:
    def test_all_table56_parameters_covered(self):
        assert set(SWEEPS) == {
            "sweep_fabric_mm", "sweep_diem_bs", "sweep_bitshares_bi",
            "sweep_quorum_bp", "sweep_sawtooth_pd",
            "sweep_bitshares_ops", "sweep_sawtooth_batch",
        }

    def test_unknown_sweep(self):
        with pytest.raises(KeyError):
            build_sweep("sweep_bitcoin_difficulty")

    def test_paper_values_match_tables_5_and_6(self):
        assert tuple(build_sweep("sweep_fabric_mm").values) == (100, 500, 1000, 2000)
        assert tuple(build_sweep("sweep_diem_bs").values) == (100, 500, 1000, 2000)
        assert tuple(build_sweep("sweep_bitshares_bi").values) == (1.0, 2.0, 5.0, 10.0)
        assert tuple(build_sweep("sweep_quorum_bp").values) == (1.0, 2.0, 5.0, 10.0)
        assert tuple(build_sweep("sweep_sawtooth_pd").values) == (1.0, 2.0, 5.0, 10.0)
        assert tuple(build_sweep("sweep_bitshares_ops").values) == (1, 50, 100)
        assert tuple(build_sweep("sweep_sawtooth_batch").values) == (1, 50, 100)


class TestSweepExecution:
    def test_small_sweep_runs(self):
        sweep = ParameterSweep(
            sweep_id="mini",
            title="mini MM sweep",
            parameter="MaxMessageCount",
            values=(50, 200),
            config_kwargs=dict(system="fabric", iel="DoNothing", rate_limit=50, seed=5),
            phase="DoNothing",
        )
        run = sweep.run(scale=0.02)
        assert len(run.points) == 2
        assert all(point.phase_result.mtps.mean > 0 for point in run.points)
        assert 0.0 <= run.spread() <= 1.0
        rendered = run.render()
        assert "MaxMessageCount=50" in rendered
        assert "spread=" in rendered

    def test_config_field_sweep(self):
        sweep = ParameterSweep(
            sweep_id="mini-ops",
            title="mini ops sweep",
            parameter="ops_per_transaction",
            values=(1, 10),
            config_kwargs=dict(system="bitshares", iel="DoNothing", rate_limit=50,
                               params={"block_interval": 1.0}, seed=5),
            phase="DoNothing",
            is_system_param=False,
        )
        run = sweep.run(scale=0.02)
        assert [point.value for point in run.points] == [1, 10]

    def test_overlapping_values_dispatch_one_unit(self):
        """Duplicate grid points must collapse to one executed unit."""
        from repro.parallel.executor import SerialExecutor

        dispatched = []

        class CountingExecutor(SerialExecutor):
            def run_units(self, configs, **kwargs):
                dispatched.append(len(configs))
                return super().run_units(configs, **kwargs)

        sweep = ParameterSweep(
            sweep_id="mini-dup",
            title="mini duplicate sweep",
            parameter="block_interval",
            values=(1.0, 2.0, 1.0),
            config_kwargs=dict(system="bitshares", iel="DoNothing",
                               rate_limit=25, seed=7),
            phase="DoNothing",
        )
        run = sweep.run(executor=CountingExecutor(), scale=0.02)
        assert dispatched == [2]
        # All three points still report, and the duplicates share a result.
        assert [point.value for point in run.points] == [1.0, 2.0, 1.0]
        assert (run.points[0].phase_result.mtps.mean
                == run.points[2].phase_result.mtps.mean)

    def test_serial_path_also_dedupes(self):
        from repro.coconut.runner import BenchmarkRunner

        ran = []

        class CountingRunner(BenchmarkRunner):
            def run_many(self, configs, **kwargs):
                ran.append(len(configs))
                return super().run_many(configs, **kwargs)

        sweep = ParameterSweep(
            sweep_id="mini-dup-serial",
            title="mini duplicate sweep",
            parameter="block_interval",
            values=(1.0, 1.0),
            config_kwargs=dict(system="bitshares", iel="DoNothing",
                               rate_limit=25, seed=7),
            phase="DoNothing",
        )
        run = sweep.run(runner=CountingRunner(keep_last_rig=False), scale=0.02)
        assert ran == [1]
        assert len(run.points) == 2

    def test_spread_of_failures_is_zero_safe(self):
        from repro.coconut.metrics import PhaseMetrics
        from repro.coconut.results import PhaseResult
        from repro.experiments.sweeps import SweepPoint, SweepRun

        dead = PhaseResult(phase="x", repetitions=[PhaseMetrics(
            phase="x", repetition=0, expected=10, received=0, failed=0,
            t_first_send=0, t_last_receive=0, duration=0, tps=0, mean_fls=0,
        )])
        run = SweepRun("s", "t", "p", [SweepPoint(1, dead)])
        assert run.spread() == 0.0
