"""Tests for the fault injector against live system models."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from tests.chains.helpers import deploy


class TestCrashRestart:
    def test_crash_and_restart_by_node_index(self):
        sim, system, client = deploy("quorum")
        plan = FaultPlan().crash("n2", at=1.0).restart("n2", at=3.0)
        injector = FaultInjector(sim, system, plan)
        injector.install()
        victim = system.node_ids[2]
        sim.run(until=2.0)
        assert not system.network.endpoint_is_up(victim)
        assert system.nodes[victim].engine.stopped
        assert injector.crashed == [victim]
        sim.run(until=4.0)
        assert system.network.endpoint_is_up(victim)
        assert not system.nodes[victim].engine.stopped
        assert injector.crashed == []
        kinds = [(e["kind"], e["target"]) for e in injector.executed]
        assert kinds == [("crash", victim), ("restart", victim)]

    def test_leader_crash_resolves_live_coordinator(self):
        sim, system, client = deploy("quorum")
        # IBFT rotates the proposer, so sample the leader at the crash
        # instant: this probe is enqueued before install(), hence FIFO
        # runs it just ahead of the injector's own 2.0 event.
        observed = []
        sim.schedule(2.0, lambda: observed.append(system.leader_id()))
        injector = FaultInjector(sim, system, FaultPlan().kill_leader(at=2.0))
        injector.install(epoch=0.0)
        sim.run(until=3.0)
        assert observed[0] is not None
        assert injector.executed[0]["target"] == observed[0]
        assert not system.network.endpoint_is_up(observed[0])

    def test_restart_leader_brings_back_most_recent_crash(self):
        sim, system, client = deploy("quorum")
        plan = FaultPlan().kill_leader(at=1.0).restart("leader", at=2.0)
        injector = FaultInjector(sim, system, plan)
        injector.install()
        sim.run(until=3.0)
        crashed = injector.executed[0]["target"]
        assert injector.executed[1]["target"] == crashed
        assert system.network.endpoint_is_up(crashed)

    def test_double_crash_is_skipped_not_fatal(self):
        sim, system, client = deploy("quorum")
        plan = FaultPlan().crash("n1", at=1.0).crash("n1", at=2.0)
        injector = FaultInjector(sim, system, plan)
        injector.install()
        sim.run(until=3.0)
        assert injector.executed[1].get("skipped") is True

    def test_restart_of_running_node_is_skipped(self):
        sim, system, client = deploy("quorum")
        injector = FaultInjector(sim, system, FaultPlan().restart("n1", at=1.0))
        injector.install()
        sim.run(until=2.0)
        assert injector.executed[0].get("skipped") is True


class TestNetworkActions:
    def test_partition_and_heal_all(self):
        sim, system, client = deploy("quorum")
        half = system.node_ids
        plan = (
            FaultPlan()
            .partition(["n0", "n1"], ["n2", "n3"], at=1.0)
            .heal_all(at=2.0)
        )
        injector = FaultInjector(sim, system, plan)
        injector.install()
        sim.run(until=1.5)
        partitions = system.network.partitions
        rng = sim.rng.stream("test-probe")
        assert not partitions.allows(half[0], half[2], rng)
        assert partitions.allows(half[0], half[1], rng)
        sim.run(until=2.5)
        assert partitions.allows(half[0], half[2], rng)

    def test_isolate_and_heal(self):
        sim, system, client = deploy("quorum")
        plan = FaultPlan().isolate("n0", at=1.0).heal("n0", at=2.0)
        injector = FaultInjector(sim, system, plan)
        injector.install()
        victim = system.node_ids[0]
        rng = sim.rng.stream("test-probe")
        sim.run(until=1.5)
        assert not system.network.partitions.allows(victim, system.node_ids[1], rng)
        sim.run(until=2.5)
        assert system.network.partitions.allows(victim, system.node_ids[1], rng)

    def test_global_loss_burst_restores_previous_rate(self):
        sim, system, client = deploy("quorum")
        injector = FaultInjector(
            sim, system, FaultPlan().loss_burst(probability=0.4, duration=1.0, at=1.0)
        )
        injector.install()
        sim.run(until=1.5)
        assert system.network.partitions.drop_probability == 0.4
        sim.run(until=2.5)
        assert system.network.partitions.drop_probability == 0.0

    def test_pairwise_loss_burst_clears_after_duration(self):
        sim, system, client = deploy("quorum")
        injector = FaultInjector(
            sim,
            system,
            FaultPlan().loss_burst(
                probability=0.9, duration=1.0, at=1.0, between=("n0", "n1")
            ),
        )
        injector.install()
        a, b = system.node_ids[0], system.node_ids[1]
        sim.run(until=1.5)
        assert system.network.partitions.loss_between(a, b) == 0.9
        sim.run(until=2.5)
        assert system.network.partitions.loss_between(a, b) == 0.0

    def test_latency_surge_subsides(self):
        sim, system, client = deploy("quorum")
        injector = FaultInjector(
            sim, system, FaultPlan().latency_surge(extra_ms=80.0, duration=1.0, at=1.0)
        )
        injector.install()
        sim.run(until=1.5)
        assert system.network.extra_latency == pytest.approx(0.08)
        sim.run(until=2.5)
        assert system.network.extra_latency == 0.0


class TestInstallation:
    def test_empty_plan_never_arms_fault_mode(self):
        sim, system, client = deploy("quorum")
        injector = FaultInjector(sim, system, FaultPlan())
        injector.install()
        assert system.fault_mode is False
        assert injector.fault_window() is None

    def test_nonempty_plan_arms_fault_mode(self):
        sim, system, client = deploy("quorum")
        injector = FaultInjector(sim, system, FaultPlan().heal_all(at=1.0))
        injector.install()
        assert system.fault_mode is True

    def test_reinstall_rejected(self):
        sim, system, client = deploy("quorum")
        injector = FaultInjector(sim, system, FaultPlan().heal_all(at=1.0))
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()

    def test_epoch_offsets_the_window(self):
        sim, system, client = deploy("quorum")
        plan = FaultPlan().crash("n0", at=5.0).restart("n0", at=10.0)
        injector = FaultInjector(sim, system, plan)
        injector.install(epoch=100.0)
        assert injector.fault_window() == (105.0, 110.0)

    def test_out_of_range_index_skipped(self):
        sim, system, client = deploy("quorum")
        injector = FaultInjector(sim, system, FaultPlan().crash("n9", at=1.0))
        injector.install()
        sim.run(until=2.0)
        assert injector.executed[0].get("skipped") is True


class TestEndToEndRecovery:
    @pytest.mark.parametrize("system_name", ["fabric", "quorum", "sawtooth"])
    def test_leader_crash_restart_restores_confirmations(self, system_name):
        # Whole-stack smoke: kill whoever coordinates consensus, restart
        # it, and check clients confirm payloads again afterwards.
        sim, system, client = deploy(system_name)
        plan = FaultPlan().kill_leader(at=5.0).restart("leader", at=15.0)
        injector = FaultInjector(sim, system, plan)
        injector.install()
        if system_name == "sawtooth":
            # Sawtooth only admits batch bundles; Fabric only bare
            # transactions. Match each system's ingestion shape.
            def submit(i):
                return client.submit_batch(
                    [("Set", {"key": f"k{i}", "value": i})], iel="KeyValue")[0]
        else:
            def submit(i):
                return client.submit_payload("KeyValue", "Set", key=f"k{i}", value=i)
        payloads = []
        for i in range(60):
            sim.schedule(0.5 * i, lambda i=i: payloads.append(submit(i)))
        sim.run(until=60.0)
        assert [e["kind"] for e in injector.executed] == ["crash", "restart"]
        # Payloads submitted well after the restart confirm end-to-end.
        late = [p for p in payloads[40:] if p.payload_id in client.receipts]
        assert late, f"{system_name}: no post-restart confirmations"
