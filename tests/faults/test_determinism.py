"""Determinism guarantees of the faults subsystem.

Two invariants keep fault runs comparable and healthy runs calibrated:

* Running the same seeded config with the same fault plan twice yields
  byte-identical metrics and resilience reports.
* A run with an empty (or absent) fault plan is identical to a run of
  the faults-unaware pipeline: installing nothing perturbs nothing.
"""

from repro.coconut.config import BenchmarkConfig
from repro.coconut.runner import BenchmarkRunner
from repro.faults import FaultPlan


def run_unit(fault_plan):
    config = BenchmarkConfig(
        system="fabric",
        iel="DoNothing",
        rate_limit=50,
        scale=0.02,
        seed=7,
        fault_plan=fault_plan,
    )
    runner = BenchmarkRunner(keep_last_rig=False)
    result = runner.run(config)
    return result, runner.last_resilience


def metrics_dicts(result):
    return {
        phase: [m.to_dict() for m in pr.repetitions]
        for phase, pr in result.phases.items()
    }


class TestDeterminism:
    def test_same_plan_twice_is_identical(self):
        plan = FaultPlan().kill_leader(at=0.5).restart("leader", at=1.5)
        first, first_res = run_unit(plan)
        second, second_res = run_unit(
            FaultPlan().kill_leader(at=0.5).restart("leader", at=1.5)
        )
        assert metrics_dicts(first) == metrics_dicts(second)
        assert {p: r.to_dict() for p, r in first_res.items()} == {
            p: r.to_dict() for p, r in second_res.items()
        }
        assert first_res  # the fault run did produce reports

    def test_empty_plan_matches_no_plan(self):
        # An installed-but-empty plan must not touch the RNG, the event
        # queue, or the fault_mode flag: byte-identical healthy metrics.
        with_none, res_none = run_unit(None)
        with_empty, res_empty = run_unit(FaultPlan())
        assert metrics_dicts(with_none) == metrics_dicts(with_empty)
        assert res_none == {} and res_empty == {}

    def test_faulted_run_differs_from_healthy(self):
        # Sanity: the injector does perturb the run when armed.
        healthy, _ = run_unit(None)
        faulted, reports = run_unit(
            FaultPlan().kill_leader(at=0.5).restart("leader", at=1.5)
        )
        assert metrics_dicts(healthy) != metrics_dicts(faulted)
        assert reports
