"""Tests for fault plans: builders, validation, JSON round-trips."""

import pytest

from repro.faults import ACTION_KINDS, FaultAction, FaultPlan


class TestBuilders:
    def test_fluent_chaining(self):
        plan = (
            FaultPlan()
            .crash("n0", at=5.0)
            .restart("n0", at=10.0)
            .latency_surge(extra_ms=40.0, duration=2.0, at=12.0)
        )
        assert len(plan) == 3
        assert [a.kind for a in plan] == ["crash", "restart", "latency_surge"]

    def test_kill_leader_is_a_crash_of_leader(self):
        plan = FaultPlan().kill_leader(at=3.0)
        action = next(iter(plan))
        assert action.kind == "crash"
        assert action.target == "leader"

    def test_iteration_sorted_by_time(self):
        plan = FaultPlan().heal("n1", at=9.0).isolate("n1", at=4.0)
        assert [a.kind for a in plan] == ["isolate", "heal"]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().fault_window() is None

    def test_fault_window_spans_first_action_to_last_effect(self):
        plan = (
            FaultPlan()
            .crash("n0", at=5.0)
            .loss_burst(probability=0.5, duration=8.0, at=6.0)
        )
        assert plan.fault_window() == (5.0, 14.0)

    def test_pairwise_loss_burst_records_the_pair(self):
        plan = FaultPlan().loss_burst(
            probability=0.3, duration=2.0, at=1.0, between=("n0", "n1")
        )
        action = next(iter(plan))
        assert action.group_a == ("n0",)
        assert action.group_b == ("n1",)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultAction(kind="meteor", at=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultAction(kind="heal_all", at=-1.0)

    @pytest.mark.parametrize("kind", ["crash", "restart", "isolate", "heal"])
    def test_targeted_kinds_require_target(self, kind):
        with pytest.raises(ValueError):
            FaultAction(kind=kind, at=0.0)

    def test_partition_requires_both_groups(self):
        with pytest.raises(ValueError):
            FaultAction(kind="partition", at=0.0, group_a=("n0",))

    @pytest.mark.parametrize("probability", [0.0, 1.5, -0.2])
    def test_loss_burst_probability_bounds(self, probability):
        with pytest.raises(ValueError):
            FaultAction(
                kind="loss_burst", at=0.0, probability=probability, duration=1.0
            )

    def test_loss_burst_requires_duration(self):
        with pytest.raises(ValueError):
            FaultAction(kind="loss_burst", at=0.0, probability=0.5, duration=0.0)

    def test_latency_surge_requires_positive_extra(self):
        with pytest.raises(ValueError):
            FaultAction(kind="latency_surge", at=0.0, extra_ms=0.0, duration=1.0)

    def test_every_kind_is_constructible(self):
        # Guard against ACTION_KINDS and the validators drifting apart.
        samples = {
            "crash": dict(target="n0"),
            "restart": dict(target="n0"),
            "isolate": dict(target="n0"),
            "heal": dict(target="n0"),
            "partition": dict(group_a=("n0",), group_b=("n1",)),
            "heal_all": {},
            "loss_burst": dict(probability=0.5, duration=1.0),
            "latency_surge": dict(extra_ms=10.0, duration=1.0),
        }
        assert set(samples) == set(ACTION_KINDS)
        for kind, kwargs in samples.items():
            FaultAction(kind=kind, at=0.0, **kwargs)


class TestSerialisation:
    def round_trip(self, plan):
        return FaultPlan.from_json(plan.to_json())

    def test_round_trip_preserves_actions(self):
        plan = (
            FaultPlan()
            .kill_leader(at=2.5)
            .restart("leader", at=7.5)
            .partition(["n0", "n1"], ["n2", "n3"], at=9.0)
            .heal_all(at=12.0)
            .loss_burst(probability=0.25, duration=3.0, at=13.0, between=("n0", "n2"))
            .latency_surge(extra_ms=50.0, duration=4.0, at=14.0)
        )
        restored = self.round_trip(plan)
        assert list(restored) == list(plan)

    def test_to_dict_is_sparse(self):
        action = FaultAction(kind="heal_all", at=1.0)
        assert action.to_dict() == {"kind": "heal_all", "at": 1.0}

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            FaultAction.from_dict({"kind": "crash", "at": 0.0, "target": "n0",
                                   "blast_radius": 3})

    def test_from_json_requires_actions_key(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json('{"events": []}')
        with pytest.raises(ValueError):
            FaultPlan.from_json('{"actions": {}}')

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan().crash("n2", at=1.0).to_json())
        plan = FaultPlan.from_json_file(str(path))
        assert len(plan) == 1
        assert next(iter(plan)).target == "n2"
