"""Tests for resilience metrics arithmetic."""

import dataclasses
import typing

import pytest

from repro.faults import ResilienceReport


@dataclasses.dataclass
class Record:
    start_time: float
    end_time: typing.Optional[float]
    received: bool


def steady_records(start, end, rate=10, latency=0.2):
    """One confirmed payload every 1/rate seconds in [start, end)."""
    records = []
    step = 1.0 / rate
    t = start
    while t < end:
        records.append(Record(start_time=t, end_time=t + latency, received=True))
        t += step
    return records


class TestHappyArithmetic:
    def test_full_outage_then_recovery(self):
        # 10 tps for 10 s, nothing during the fault [10, 15], 10 tps after.
        records = steady_records(0.0, 10.0) + steady_records(15.0, 30.0)
        report = ResilienceReport.from_records(
            records, fault_start=10.0, fault_end=15.0, phase_start=0.0, phase_end=30.0
        )
        assert report.baseline_tps == pytest.approx(10.0, rel=0.1)
        assert report.dip_tps == 0.0
        assert report.dip_depth == 1.0
        assert report.recovered
        assert report.time_to_recover == pytest.approx(1.0)

    def test_partial_dip(self):
        records = steady_records(0.0, 10.0) + steady_records(10.0, 30.0, rate=5)
        report = ResilienceReport.from_records(
            records, fault_start=10.0, fault_end=15.0, phase_start=0.0, phase_end=30.0
        )
        assert 0.0 < report.dip_depth < 1.0
        assert report.recovered  # 5 tps is within 50% of the 10 tps baseline

    def test_never_recovers(self):
        records = steady_records(0.0, 10.0)
        report = ResilienceReport.from_records(
            records, fault_start=10.0, fault_end=15.0, phase_start=0.0, phase_end=30.0
        )
        assert not report.recovered
        assert report.time_to_recover is None

    def test_window_accounting(self):
        records = [
            Record(start_time=11.0, end_time=12.0, received=True),   # sent+committed in window
            Record(start_time=12.0, end_time=None, received=False),  # sent in window, lost
            Record(start_time=2.0, end_time=13.0, received=True),    # committed in window only
            Record(start_time=20.0, end_time=21.0, received=True),   # outside entirely
        ]
        report = ResilienceReport.from_records(
            records, fault_start=10.0, fault_end=15.0, phase_start=0.0, phase_end=30.0
        )
        assert report.sent_in_window == 2
        assert report.lost_in_window == 1
        assert report.committed_in_window == 2

    def test_no_baseline_means_no_dip_judgement(self):
        # Fault at phase start: there is nothing to compare against.
        records = steady_records(5.0, 10.0)
        report = ResilienceReport.from_records(
            records, fault_start=0.0, fault_end=2.0, phase_start=0.0, phase_end=10.0
        )
        assert report.baseline_tps == 0.0
        assert report.dip_depth == 0.0
        assert not report.recovered


class TestValidationAndShape:
    def test_bad_bucket_width_rejected(self):
        with pytest.raises(ValueError):
            ResilienceReport.from_records(
                [], fault_start=0, fault_end=1, phase_start=0, phase_end=10,
                bucket_width=0,
            )

    def test_empty_phase_rejected(self):
        with pytest.raises(ValueError):
            ResilienceReport.from_records(
                [], fault_start=0, fault_end=1, phase_start=5, phase_end=5
            )

    def test_to_dict_round_trips_scalars(self):
        records = steady_records(0.0, 10.0) + steady_records(15.0, 30.0)
        report = ResilienceReport.from_records(
            records, fault_start=10.0, fault_end=15.0, phase_start=0.0, phase_end=30.0
        )
        data = report.to_dict()
        assert data["recovered"] is True
        assert data["fault_start"] == 10.0
        assert data["lost_in_window"] == report.lost_in_window

    def test_render_mentions_window_and_verdict(self):
        report = ResilienceReport.from_records(
            steady_records(0.0, 10.0),
            fault_start=10.0, fault_end=15.0, phase_start=0.0, phase_end=30.0,
        )
        text = report.render()
        assert "never" in text
        assert "10.0s" in text
